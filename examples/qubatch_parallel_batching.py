"""QuBatch: process several seismic samples in one circuit execution.

Demonstrates the SIMD property of Section 3.3 of the paper: because the
ansatz acts only on the data qubits, encoding 2^N samples onto N extra batch
qubits evaluates the same parameterised unitary on every sample at once.
The script shows (1) that the batched predictions equal the per-sample
predictions of the unbatched model with identical parameters, and (2) the
qubit / circuit-execution accounting for different batch sizes (Table 1's
"extra qubits" column).

Run with::

    python examples/qubatch_parallel_batching.py
"""

from __future__ import annotations

import numpy as np

from repro.core import QuBatchVQC, QuGeoVQC
from repro.core.config import QuGeoVQCConfig
from repro.utils.tables import format_table


def main() -> None:
    rng = np.random.default_rng(7)
    samples = [rng.normal(size=64) for _ in range(4)]

    base = QuGeoVQCConfig(n_groups=1, qubits_per_group=6, n_blocks=3,
                          decoder="layer", output_shape=(6, 6))
    plain = QuGeoVQC(base, rng=11)

    print("Checking that QuBatch reproduces the unbatched predictions...")
    rows = []
    for n_batch_qubits in (1, 2):
        config = QuGeoVQCConfig(n_groups=1, qubits_per_group=6, n_blocks=3,
                                decoder="layer", output_shape=(6, 6),
                                n_batch_qubits=n_batch_qubits)
        batched = QuBatchVQC(config, rng=12)
        batched.theta.data = plain.theta.data.copy()

        batch = samples[:batched.batch_capacity]
        expected = np.stack([plain.predict(s) for s in batch])
        actual = batched.predict_batch(batch)
        max_error = float(np.abs(expected - actual).max())

        rows.append([2**n_batch_qubits, n_batch_qubits, batched.n_qubits,
                     len(batch), 1, max_error])

    print(format_table(
        ["batch size", "extra qubits", "total qubits", "samples processed",
         "circuit executions", "max |batched - unbatched|"],
        rows,
        title="QuBatch accounting (paper Table 1: batch 2 and 4 need 1 and 2 "
              "extra qubits)"))
    print("\nThe predictions agree to numerical precision: the replicated "
          "U(theta) blocks of Figure 3 in the paper are exactly what the "
          "batched register implements.  During *training*, the joint "
          "normalisation of the batched amplitudes slightly reduces each "
          "sample's dynamic range, which is the precision/qubit trade-off "
          "Table 1 quantifies.")


if __name__ == "__main__":
    main()
