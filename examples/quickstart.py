"""Quickstart: train the end-to-end QuGeo pipeline on synthetic FlatVel data.

This script mirrors the paper's workflow at a miniature scale so it finishes
in under a minute on a laptop:

1. generate a small FlatVelA-style dataset (velocity maps + forward-modelled
   seismic shot gathers),
2. scale it with the physics-guided Q-D-FW method,
3. train the layer-wise QuGeoVQC (Q-M-LY) on the scaled data,
4. report SSIM / MSE on held-out samples and predict one velocity map.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import QuGeo
from repro.core.config import (
    QuGeoConfig,
    QuGeoDataConfig,
    QuGeoVQCConfig,
    TrainingConfig,
)
from repro.data import build_flatvel_dataset, train_test_split


def main() -> None:
    print("1) Generating a synthetic FlatVelA-style dataset...")
    dataset = build_flatvel_dataset(n_samples=16, velocity_shape=(32, 32),
                                    n_time_steps=200, n_sources=2, rng=0)
    train, test = train_test_split(dataset, train_size=12, rng=0)
    print(f"   {len(train)} training / {len(test)} test samples, "
          f"seismic shape {train[0].seismic.shape}, "
          f"velocity shape {train[0].velocity.shape}")

    print("2) Configuring the QuGeo pipeline (Q-D-FW scaling, Q-M-LY decoder)...")
    config = QuGeoConfig(
        data=QuGeoDataConfig(scaled_seismic_shape=(1, 8, 8),
                             scaled_velocity_shape=(6, 6)),
        vqc=QuGeoVQCConfig(n_groups=1, qubits_per_group=6, n_blocks=4,
                           decoder="layer", output_shape=(6, 6)),
        training=TrainingConfig(epochs=25, learning_rate=0.1, batch_size=4,
                                eval_every=5, seed=0, verbose=True),
        scaling_method="forward_modeling",
    )
    pipeline = QuGeo(config, rng=0)

    print("3) Training the variational quantum circuit...")
    result = pipeline.fit(train, test)

    print("4) Results")
    summary = pipeline.summary()
    for key in ("scaling_method", "decoder", "total_qubits", "parameters",
                "test_ssim", "test_mse"):
        print(f"   {key:>16}: {summary[key]}")

    sample = test[0]
    prediction = pipeline.predict(sample)
    truth_profile = sample.velocity.mean(axis=1)
    predicted_profile = prediction.mean(axis=1)
    print("   ground-truth depth profile (m/s):",
          np.round(truth_profile[:: max(1, len(truth_profile) // 6)], 0))
    print("   predicted    depth profile (m/s):",
          np.round(predicted_profile, 0))


if __name__ == "__main__":
    main()
