"""Telemetry: profile a tiny training run and export a JSONL trace.

The observability subsystem (:mod:`repro.telemetry`) instruments the hot
paths of the whole stack — the einsum backend's caches, the batched
gradient sweeps, the acoustic propagator's per-phase loop, the dataset
store's shard/LRU traffic and the trainer's epoch loop.  This example:

1. switches the process-wide registry to ``trace`` mode (the same thing
   ``QUGEO_TELEMETRY=trace`` does from the environment),
2. trains a tiny 4-qubit QuGeoVQC for a few epochs on random data,
3. prints the ASCII profile (span tree, per-phase timers, counters), and
4. dumps every recorded span event as JSONL for offline analysis.

Run with::

    python examples/telemetry_profile.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.backends import get_backend
from repro.core import QuGeoVQC, QuGeoVQCConfig, Trainer, TrainingConfig
from repro.core.training import ArrayDataSource
from repro.telemetry import configure


def main() -> None:
    print("1) Enabling telemetry in trace mode (summary stats + span events)")
    telemetry = configure("trace", reset=True)

    config = QuGeoVQCConfig(n_groups=1, qubits_per_group=4, n_blocks=2,
                            decoder="layer", output_shape=(4, 4))
    model = QuGeoVQC(config, rng=0, backend=get_backend("einsum"))
    rng = np.random.default_rng(0)
    train = ArrayDataSource(rng.normal(size=(12, 16)),
                            rng.uniform(size=(12, 4, 4)))
    test = ArrayDataSource(rng.normal(size=(4, 16)),
                           rng.uniform(size=(4, 4, 4)))

    print("2) Training a 4-qubit QuGeoVQC for 3 epochs...")
    trainer = Trainer(TrainingConfig(epochs=3, batch_size=4, eval_every=1,
                                     learning_rate=0.05, seed=0))
    result = trainer.train(model, train, test)
    print(f"   final test SSIM: {result.final_metrics['test_ssim']:.4f}")
    print(f"   per-epoch wall seconds: "
          f"{[round(v, 4) for v in result.logger.history('epoch_seconds')]}")

    print("\n3) Profile of everything the run recorded:\n")
    print(telemetry.profile_table())

    trace_path = Path(tempfile.mkdtemp(prefix="qugeo-telemetry-")) / "run.jsonl"
    telemetry.dump_jsonl(trace_path)
    snapshot = telemetry.snapshot()
    print(f"\n4) {snapshot['trace_events']} span events dumped to {trace_path}")

    configure("off", reset=True)


if __name__ == "__main__":
    main()
