"""Compare the three QuGeoData scaling methods (the Figure 5/6 story).

The script builds a small synthetic dataset, scales one sample with
D-Sample (nearest neighbour), Q-D-FW (physics-guided forward modelling) and
Q-D-CNN (the learned compressor), and prints how faithful each scaled
waveform is to the physics-guided reference — before and after the
normalisation imposed by amplitude encoding.

Run with::

    python examples/data_scaling_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CNNScaler, DSampleScaler, ForwardModelingScaler
from repro.core.config import QuGeoDataConfig
from repro.data import build_flatvel_dataset
from repro.metrics import ssim
from repro.quantum.encoding import STEncoder
from repro.utils.tables import format_table


def main() -> None:
    print("Generating data and training the Q-D-CNN compressor...")
    dataset = build_flatvel_dataset(n_samples=14, velocity_shape=(32, 32),
                                    n_time_steps=240, n_sources=2, rng=1)
    compressor_split, evaluation_split = dataset[:10], dataset[10:]

    config = QuGeoDataConfig(scaled_seismic_shape=(1, 16, 8),
                             scaled_velocity_shape=(8, 8))
    forward_scaler = ForwardModelingScaler(config, simulation_shape=(24, 24),
                                           simulation_steps=192)
    scalers = {
        "D-Sample": DSampleScaler(config),
        "Q-D-FW": forward_scaler,
        "Q-D-CNN": CNNScaler.train(compressor_split, config=config,
                                   reference_scaler=forward_scaler,
                                   epochs=25, rng=1),
    }

    encoder = STEncoder(n_groups=1, qubits_per_group=7)
    sample = evaluation_split[0]
    n_time = config.scaled_seismic_shape[0] * config.scaled_seismic_shape[1]
    n_receivers = config.scaled_seismic_shape[2]

    reference = forward_scaler.scale_sample(sample).seismic.reshape(n_time,
                                                                    n_receivers)
    reference_norm = encoder.normalized_view(reference.reshape(-1)).reshape(
        n_time, n_receivers)

    rows = []
    for name, scaler in scalers.items():
        scaled = scaler.scale_sample(sample)
        waveform = scaled.seismic.reshape(n_time, n_receivers)
        raw_score = ssim(waveform, reference,
                         data_range=float(np.ptp(reference)) or 1.0)
        normalised = encoder.normalized_view(waveform.reshape(-1)).reshape(
            n_time, n_receivers)
        quantum_score = ssim(normalised, reference_norm,
                             data_range=float(np.ptp(reference_norm)) or 1.0)
        rows.append([name, raw_score, quantum_score,
                     float(scaled.velocity.min()), float(scaled.velocity.max())])

    print(format_table(
        ["method", "waveform SSIM vs Q-D-FW", "after quantum normalisation",
         "velocity min", "velocity max"],
        rows,
        title="Scaled-data fidelity (the paper's Figure 6 reports "
              "D-Sample 0.0597 vs Q-D-CNN 0.9255 before normalisation)"))
    print("\nInterpretation: naive nearest-neighbour decimation destroys the "
          "waveform's physical coherence, while re-simulating on the coarse "
          "velocity model (Q-D-FW) or learning that mapping (Q-D-CNN) keeps "
          "the physics the inversion needs.")


if __name__ == "__main__":
    main()
