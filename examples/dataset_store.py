"""Dataset store: build once, serve every later run from sharded cache.

Forward modelling is the most expensive step of every experiment, so the
sharded dataset store (:mod:`repro.data.store`) persists generated datasets
under a content fingerprint of ``(OpenFWIConfig, seed, physics)``:

1. ``open_or_build`` generates the dataset (here across a small worker pool
   — bit-identical to a serial build) and writes compressed ``.npz`` shards
   as chunks complete,
2. a second ``open_or_build`` with the same configuration is a pure cache
   hit: zero forward-modelling calls, the shards are just read back,
3. ``stream=True`` returns a :class:`~repro.data.store.ShardLoader` that
   feeds training and batched prediction without materializing the whole
   dataset in memory.

Run with::

    python examples/dataset_store.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data import OpenFWIConfig, open_or_build


def main() -> None:
    cache_dir = Path(tempfile.mkdtemp(prefix="qugeo-store-"))
    config = OpenFWIConfig(n_samples=12, velocity_shape=(24, 24),
                           n_sources=2, n_receivers=24, n_time_steps=120,
                           dx=700.0 / 24, boundary_width=6, chunk_size=3)

    print(f"1) Cold build into {cache_dir} (2 workers, chunked shards)...")
    start = time.perf_counter()
    dataset = open_or_build(config, seed=0, cache_dir=cache_dir, workers=2)
    cold_s = time.perf_counter() - start
    print(f"   built {len(dataset)} samples in {cold_s:.2f}s; cache now holds:")
    for entry in sorted(cache_dir.rglob("*")):
        print(f"     {entry.relative_to(cache_dir)}")

    print("2) Cached re-run (same config + seed -> same fingerprint)...")
    start = time.perf_counter()
    cached = open_or_build(config, seed=0, cache_dir=cache_dir)
    warm_s = time.perf_counter() - start
    identical = np.array_equal(dataset.seismic_array(),
                               cached.seismic_array())
    print(f"   served from shards in {warm_s:.3f}s "
          f"({cold_s / max(warm_s, 1e-9):.0f}x faster), "
          f"bit-identical: {identical}")

    print("3) Streaming access through ShardLoader (no full materialization)...")
    loader = open_or_build(config, seed=0, cache_dir=cache_dir, stream=True)
    seismic, velocity = loader.gather(np.array([0, 5, 11]))
    print(f"   gather([0, 5, 11]) -> seismic {seismic.shape}, "
          f"velocity {velocity.shape}; "
          f"fingerprint keys: {sorted(loader.fingerprint())}")

    print("Done.  Pass cache_dir= / --cache-dir (or set QUGEO_CACHE_DIR) to "
          "reuse one store across experiments and benchmarks.")


if __name__ == "__main__":
    main()
