"""Checkpoint, resume and serve: the unified training engine end to end.

This script demonstrates the three serialization capabilities the training
engine provides, at a miniature scale that finishes in well under a minute:

1. **Checkpoint** — train a QuGeo pipeline with a :class:`Checkpoint`
   callback that persists the full training state (model, Adam moments,
   scheduler position, shuffle-RNG state, metric history) every few epochs,
   and interrupt the run partway through.
2. **Resume** — restart training from the checkpoint and verify the resumed
   run's per-epoch loss history matches an uninterrupted reference run
   exactly (bit-identical trajectories, not just "close").
3. **Serve** — save the fitted pipeline with ``QuGeo.save``, load it back
   with ``QuGeo.load`` in a fresh object, and predict velocity maps from the
   saved artifact without refitting anything.

Run with::

    python examples/resume_training.py

Checkpoint artifacts land in ``checkpoints/`` (override with the
``QUGEO_CHECKPOINT_DIR`` environment variable).
"""

from __future__ import annotations

import os

import numpy as np

from repro.core import Callback, Checkpoint, QuGeo, Trainer
from repro.core.config import (
    QuGeoConfig,
    QuGeoDataConfig,
    QuGeoVQCConfig,
    TrainingConfig,
)
from repro.core.vqc_model import QuGeoVQC
from repro.data import build_flatvel_dataset, train_test_split
from repro.utils import env

CHECKPOINT_DIR = env.get_path(env.CHECKPOINT_DIR, "checkpoints")
EPOCHS = 12
INTERRUPT_AFTER = 5  # epochs completed before the simulated crash


class InterruptAfter(Callback):
    """Simulate a crash: stop the run once ``epoch`` has been logged."""

    def __init__(self, epoch: int) -> None:
        self.epoch = int(epoch)

    def on_epoch_logged(self, state) -> None:
        if state.epoch >= self.epoch - 1:
            state.stop_training = True
            state.stop_reason = "simulated interruption"


def build_config() -> QuGeoConfig:
    return QuGeoConfig(
        data=QuGeoDataConfig(scaled_seismic_shape=(1, 8, 8),
                             scaled_velocity_shape=(6, 6)),
        vqc=QuGeoVQCConfig(n_groups=1, qubits_per_group=6, n_blocks=3,
                           decoder="layer", output_shape=(6, 6)),
        training=TrainingConfig(epochs=EPOCHS, learning_rate=0.1,
                                batch_size=4, eval_every=4, seed=0),
        scaling_method="forward_modeling",
    )


def main() -> None:
    checkpoint_path = os.path.join(CHECKPOINT_DIR, "qugeo_training.ckpt")
    pipeline_path = os.path.join(CHECKPOINT_DIR, "qugeo_pipeline.qugeo")

    print("1) Generating a synthetic FlatVelA-style dataset...")
    dataset = build_flatvel_dataset(n_samples=12, velocity_shape=(24, 24),
                                    n_time_steps=120, n_sources=2, rng=0)
    train, test = train_test_split(dataset, train_size=9, rng=0)

    config = build_config()
    pipeline = QuGeo(config, rng=0)
    pipeline.build_scaler()
    scaled_train = pipeline.scaler.scale_dataset(train)
    scaled_test = pipeline.scaler.scale_dataset(test)

    print(f"2) Reference run: {EPOCHS} uninterrupted epochs...")
    reference_model = QuGeoVQC(config.vqc, rng=0)
    reference = Trainer(config.training).train(reference_model, scaled_train,
                                               scaled_test)

    print(f"3) Interrupted run: checkpoint every 5 epochs, 'crash' after "
          f"epoch {INTERRUPT_AFTER}...")
    interrupted_model = QuGeoVQC(config.vqc, rng=0)
    Trainer(config.training).train(
        interrupted_model, scaled_train, scaled_test,
        callbacks=[Checkpoint(checkpoint_path, every=5),
                   InterruptAfter(INTERRUPT_AFTER)])
    print(f"   checkpoint written to {checkpoint_path}")

    print("4) Resuming from the checkpoint...")
    resumed_model = QuGeoVQC(config.vqc, rng=0)
    resumed = Trainer(config.training).train(resumed_model, scaled_train,
                                             scaled_test,
                                             resume_from=checkpoint_path)

    reference_losses = reference.history("train_loss")
    resumed_losses = resumed.history("train_loss")
    identical = reference_losses == resumed_losses
    print(f"   reference loss history: {np.round(reference_losses, 6)}")
    print(f"   resumed   loss history: {np.round(resumed_losses, 6)}")
    print(f"   trajectories bit-identical: {identical}")
    if not identical:
        raise SystemExit("resumed trajectory diverged from the reference run")

    print("5) Saving the fitted pipeline and serving from the saved file...")
    pipeline.model = resumed_model
    pipeline.training_result = resumed
    pipeline.save(pipeline_path)
    served = QuGeo.load(pipeline_path)
    sample = test[0]
    live = pipeline.predict(sample)
    loaded = served.predict(sample)
    print(f"   pipeline saved to {pipeline_path}")
    print(f"   served prediction matches live model: "
          f"{np.array_equal(live, loaded)}")
    print(f"   final test SSIM: {served.training_result.final_metrics['test_ssim']:.4f}")
    if not np.array_equal(live, loaded):
        raise SystemExit("served prediction diverged from the live model")


if __name__ == "__main__":
    main()
