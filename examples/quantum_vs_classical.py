"""Quantum vs classical learning at a matched parameter budget (Table 2 story).

Trains the layer-wise QuGeoVQC and the CNN-LY baseline on the same
physics-guided scaled dataset and compares SSIM / MSE and parameter counts.
The paper's Table 2 reports the 576-parameter Q-M-LY beating ~620-parameter
CNNs; at this miniature scale the point is that the two model families are
trained and evaluated through the exact same harness.

Run with::

    python examples/quantum_vs_classical.py
"""

from __future__ import annotations

from repro.core import (
    ClassicalTrainer,
    ForwardModelingScaler,
    QuantumTrainer,
    QuGeoVQC,
    build_cnn_ly,
)
from repro.core.config import QuGeoDataConfig, QuGeoVQCConfig, TrainingConfig
from repro.data import build_flatvel_dataset, train_test_split
from repro.utils.tables import format_table


def main() -> None:
    print("Preparing physics-guided scaled data (Q-D-FW)...")
    dataset = build_flatvel_dataset(n_samples=20, velocity_shape=(32, 32),
                                    n_time_steps=240, n_sources=2, rng=2)
    train, test = train_test_split(dataset, train_size=15, rng=2)
    config = QuGeoDataConfig(scaled_seismic_shape=(1, 8, 8),
                             scaled_velocity_shape=(6, 6))
    scaler = ForwardModelingScaler(config, simulation_shape=(24, 24),
                                   simulation_steps=192)
    scaled_train = scaler.scale_dataset(train)
    scaled_test = scaler.scale_dataset(test)

    print("Training Q-M-LY (variational quantum circuit)...")
    quantum_model = QuGeoVQC(QuGeoVQCConfig(n_groups=1, qubits_per_group=6,
                                            n_blocks=4, decoder="layer",
                                            output_shape=(6, 6)), rng=3)
    quantum_result = QuantumTrainer(
        TrainingConfig(epochs=30, learning_rate=0.1, batch_size=5,
                       eval_every=10, seed=0)).train(quantum_model,
                                                     scaled_train, scaled_test)

    print("Training CNN-LY (classical baseline)...")
    classical_model = build_cnn_ly(config.scaled_seismic_size, (6, 6), rng=3)
    classical_result = ClassicalTrainer(
        TrainingConfig(epochs=80, learning_rate=0.01, batch_size=5,
                       eval_every=20, seed=0)).train(classical_model,
                                                     scaled_train, scaled_test)

    rows = [
        ["Q-M-LY", quantum_model.num_parameters(),
         quantum_result.final_metrics["test_ssim"],
         quantum_result.final_metrics["test_mse"]],
        ["CNN-LY", classical_model.num_parameters(),
         classical_result.final_metrics["test_ssim"],
         classical_result.final_metrics["test_mse"]],
    ]
    print(format_table(["model", "parameters", "SSIM", "MSE"], rows,
                       title="Quantum vs classical at a matched parameter "
                             "budget (paper Table 2: Q-M-LY 0.893 vs CNN-LY "
                             "0.871 SSIM on Q-D-FW)"))


if __name__ == "__main__":
    main()
