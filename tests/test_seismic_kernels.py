"""Propagator kernel layer: registry behaviour, fused-loop parity, PML.

The fused kernel in :mod:`repro.seismic.kernels.fused` degrades to plain
Python loops when numba is absent, so its parity tests run (slowly, on tiny
grids) in every environment; when numba is installed the same tests cover
the compiled code paths.  The ``"numba"`` registry entry itself is only
available when numba imports — mirroring how ``tests/test_backends.py``
treats optional engines.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.seismic import (
    AcousticSimulator2D,
    BatchedAcousticSimulator2D,
    PMLBoundary,
    SimulationConfig,
    SpongeBoundary,
    edge_reflection_energy,
    make_boundary,
    pml_profiles,
    ricker_wavelet,
    stable_time_step,
)
from repro.seismic.kernels import (
    DuplicateKernelError,
    KernelUnavailableError,
    PythonKernel,
    UnknownKernelError,
    available_kernels,
    default_kernel_name,
    get_kernel,
    kernel_available,
    register_kernel,
    resolve_kernel,
    unregister_kernel,
)
from repro.seismic.kernels.fused import HAVE_NUMBA, FusedLoopKernel
from repro.telemetry import capture
from repro.utils import env

ATOL = 1e-12


def small_setup(nz=24, nx=24, n_steps=80, boundary=None, **config_kwargs):
    """A two-layer model plus survey small enough for pure-Python loops."""
    velocity = np.full((nz, nx), 1800.0)
    velocity[nz // 2:] = 2400.0
    dt = stable_time_step(2400.0, dx=10.0, dz=10.0, spatial_order=4)
    if boundary is None:
        boundary = SpongeBoundary(width=6)
    config = SimulationConfig(dx=10.0, dz=10.0, dt=dt, n_steps=n_steps,
                              spatial_order=4, boundary=boundary,
                              **config_kwargs)
    sources = np.array([[2, nx // 4], [2, 3 * nx // 4]])
    receivers = np.stack([np.ones(nx - 4, dtype=int),
                          np.arange(2, nx - 2)], axis=1)
    wavelet = ricker_wavelet(n_steps, dt, 12.0)
    return velocity, config, sources, receivers, wavelet


# --------------------------------------------------------------------------- #
# registry behaviour
# --------------------------------------------------------------------------- #
class TestKernelRegistry:
    def test_builtin_registrations(self):
        assert set(available_kernels()) >= {"python", "numba", "cffi"}
        assert kernel_available("python")
        assert kernel_available("numba") == HAVE_NUMBA
        assert not kernel_available("cffi")  # reserved, never built here
        assert not kernel_available("no-such-kernel")

    def test_default_resolves_python(self, monkeypatch):
        monkeypatch.delenv(env.SEISMIC_KERNEL, raising=False)
        assert default_kernel_name() == "python"
        assert isinstance(get_kernel(), PythonKernel)

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(env.SEISMIC_KERNEL, "cffi")
        assert default_kernel_name() == "cffi"
        with pytest.raises(KernelUnavailableError, match="cffi"):
            get_kernel()

    def test_instances_are_cached_per_name(self):
        assert get_kernel("python") is get_kernel("python")

    def test_instance_spec_passes_through(self):
        kernel = PythonKernel()
        assert get_kernel(kernel) is kernel

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(UnknownKernelError, match="python"):
            get_kernel("fortran")

    def test_bad_spec_type_raises(self):
        with pytest.raises(TypeError, match="kernel spec"):
            get_kernel(42)

    def test_register_duplicate_and_replace(self):
        marker = PythonKernel()
        register_kernel("test-kernel", lambda: marker)
        try:
            with pytest.raises(DuplicateKernelError):
                register_kernel("test-kernel", lambda: marker)
            replacement = PythonKernel()
            register_kernel("test-kernel", lambda: replacement, replace=True)
            assert get_kernel("test-kernel") is replacement
        finally:
            unregister_kernel("test-kernel")
        with pytest.raises(UnknownKernelError):
            get_kernel("test-kernel")

    def test_resolve_degrades_unavailable_to_python(self):
        kernel, reason = resolve_kernel("cffi")
        assert isinstance(kernel, PythonKernel)
        assert "cffi" in reason

    def test_resolve_degrades_snapshot_incapable_to_python(self):
        fused = FusedLoopKernel()
        kernel, reason = resolve_kernel(fused, need_snapshots=True)
        assert isinstance(kernel, PythonKernel)
        assert "snapshots" in reason
        same, reason = resolve_kernel(fused, need_snapshots=False)
        assert same is fused and reason is None

    def test_resolve_still_raises_for_unknown_names(self):
        with pytest.raises(UnknownKernelError):
            resolve_kernel("fortran")


# --------------------------------------------------------------------------- #
# fused-loop parity (degraded pure-Python loops when numba is absent)
# --------------------------------------------------------------------------- #
class TestFusedKernelParity:
    def test_sponge_matches_python_kernel(self):
        velocity, config, sources, receivers, wavelet = small_setup()
        expected = BatchedAcousticSimulator2D(
            velocity, config, kernel="python").simulate_shots(
                sources, wavelet, receivers)
        fused = BatchedAcousticSimulator2D(
            velocity, config, kernel=FusedLoopKernel()).simulate_shots(
                sources, wavelet, receivers)
        assert np.abs(expected).max() > 1e-3  # non-trivial signal
        np.testing.assert_allclose(fused, expected, atol=ATOL, rtol=0.0)

    def test_sponge_matches_scalar_reference(self):
        velocity, config, sources, receivers, wavelet = small_setup()
        scalar = AcousticSimulator2D(velocity, config)
        expected = np.stack([
            scalar.simulate_shot(tuple(src), wavelet, receivers)
            for src in sources])
        fused = BatchedAcousticSimulator2D(
            velocity, config, kernel=FusedLoopKernel()).simulate_shots(
                sources, wavelet, receivers)
        np.testing.assert_allclose(fused, expected, atol=1e-10, rtol=0.0)

    def test_pml_matches_python_kernel(self):
        velocity, config, sources, receivers, wavelet = small_setup(
            boundary=PMLBoundary(width=6))
        expected = BatchedAcousticSimulator2D(
            velocity, config, kernel="python").simulate_shots(
                sources, wavelet, receivers)
        fused = BatchedAcousticSimulator2D(
            velocity, config, kernel=FusedLoopKernel()).simulate_shots(
                sources, wavelet, receivers)
        assert np.abs(expected).max() > 1e-3
        np.testing.assert_allclose(fused, expected, atol=ATOL, rtol=0.0)

    def test_pad_grid_pml_matches_python_kernel(self):
        velocity, config, sources, receivers, wavelet = small_setup(
            boundary=PMLBoundary(width=6, pad_grid=True))
        expected = BatchedAcousticSimulator2D(
            velocity, config, kernel="python").simulate_shots(
                sources, wavelet, receivers)
        fused = BatchedAcousticSimulator2D(
            velocity, config, kernel=FusedLoopKernel()).simulate_shots(
                sources, wavelet, receivers)
        np.testing.assert_allclose(fused, expected, atol=ATOL, rtol=0.0)

    def test_record_every_matches_python_kernel(self):
        velocity, config, sources, receivers, wavelet = small_setup(
            record_every=4)
        expected = BatchedAcousticSimulator2D(
            velocity, config, kernel="python").simulate_shots(
                sources, wavelet, receivers)
        fused = BatchedAcousticSimulator2D(
            velocity, config, kernel=FusedLoopKernel()).simulate_shots(
                sources, wavelet, receivers)
        assert expected.shape[1] == config.n_recorded
        np.testing.assert_allclose(fused, expected, atol=ATOL, rtol=0.0)

    def test_multi_model_batch_matches_python_kernel(self):
        velocity, config, sources, receivers, wavelet = small_setup()
        stack = np.stack([velocity, velocity * 0.9])
        expected = BatchedAcousticSimulator2D(
            stack, config, kernel="python").simulate_shots(
                sources, wavelet, receivers)
        fused = BatchedAcousticSimulator2D(
            stack, config, kernel=FusedLoopKernel()).simulate_shots(
                sources, wavelet, receivers)
        assert expected.shape[0] == 2
        np.testing.assert_allclose(fused, expected, atol=ATOL, rtol=0.0)

    def test_snapshot_requests_fall_back_to_python(self):
        velocity, config, sources, receivers, wavelet = small_setup(
            n_steps=20)
        simulator = BatchedAcousticSimulator2D(
            velocity, config, kernel=FusedLoopKernel())
        with capture("summary") as telemetry:
            gather, snapshots = simulator.simulate_shots(
                sources, wavelet, receivers, record_wavefield=True,
                wavefield_stride=5)
            counters = telemetry.snapshot()["counters"]
        assert counters["propagator.kernel.fallbacks"] == 1
        assert counters["propagator.kernel.python"] == 1
        assert len(snapshots) == 4
        assert snapshots[0].shape == (len(sources),) + velocity.shape

    def test_kernel_dispatch_is_counted(self):
        velocity, config, sources, receivers, wavelet = small_setup(
            n_steps=20)
        simulator = BatchedAcousticSimulator2D(
            velocity, config, kernel=FusedLoopKernel())
        with capture("summary") as telemetry:
            simulator.simulate_shots(sources, wavelet, receivers)
            counters = telemetry.snapshot()["counters"]
        assert counters["propagator.kernel.numba"] == 1
        assert "propagator.kernel.fallbacks" not in counters


# --------------------------------------------------------------------------- #
# PML boundary physics
# --------------------------------------------------------------------------- #
class TestPMLBoundary:
    def test_profiles_vanish_outside_the_pad(self):
        a, b = pml_profiles(50, 10, 10.0, 1e-3, 3000.0)
        assert np.all(a[10:40] == 0.0) and np.all(b[10:40] == 0.0)
        assert np.all(a[:10] < 0.0)  # a = sigma/(sigma+alpha) * (b-1) < 0
        assert np.all((0.0 < b[:10]) & (b[:10] < 1.0))
        np.testing.assert_allclose(a[:10], a[40:][::-1])
        np.testing.assert_allclose(b[:10], b[40:][::-1])

    def test_free_surface_skips_top_pad(self):
        boundary = PMLBoundary(width=6)
        a_x, b_x, a_z, b_z = boundary.profiles((40, 40), 10.0, 10.0,
                                               1e-3, 3000.0)
        assert np.all(a_z[:6] == 0.0)  # free surface: no top pad
        assert np.all(a_z[-6:] != 0.0)
        assert np.all(a_x[:6] != 0.0) and np.all(a_x[-6:] != 0.0)

    def test_width_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            PMLBoundary(width=1)
        with pytest.raises(ValueError, match="too large"):
            PMLBoundary(width=12).validate_grid((40, 20))

    def test_make_boundary_builds_both_kinds(self):
        assert isinstance(make_boundary("sponge", width=8), SpongeBoundary)
        pml = make_boundary("pml", width=8, pad_grid=True)
        assert isinstance(pml, PMLBoundary)
        assert pml.pad_grid
        with pytest.raises(ValueError, match="unknown boundary"):
            make_boundary("mirror", width=8)

    def test_scalar_simulator_rejects_pml(self):
        velocity, config, _, _, _ = small_setup(
            boundary=PMLBoundary(width=6))
        with pytest.raises(ValueError, match="SpongeBoundary"):
            AcousticSimulator2D(velocity, config)

    def test_scalar_simulator_rejects_pad_grid(self):
        velocity, config, _, _, _ = small_setup(
            boundary=SpongeBoundary(width=6, pad_grid=True))
        with pytest.raises(ValueError, match="pad_grid"):
            AcousticSimulator2D(velocity, config)

    def test_pml_wavefield_stays_bounded(self):
        velocity, config, sources, receivers, wavelet = small_setup(
            boundary=PMLBoundary(width=6), n_steps=400)
        gather = BatchedAcousticSimulator2D(
            velocity, config).simulate_shots(sources, wavelet, receivers)
        assert np.isfinite(gather).all()
        # After the source rings down, the PML must have drained the energy:
        # the late-time coda is far weaker than the direct arrivals.
        peak = np.abs(gather).max()
        late = np.abs(gather[:, -40:, :]).max()
        assert late < 0.05 * peak

    def test_pml_reflects_less_than_sponge_at_equal_width(self):
        pml = edge_reflection_energy(PMLBoundary(width=12))
        sponge = edge_reflection_energy(SpongeBoundary(width=12))
        assert pml < 0.1 * sponge

    def test_thin_pml_beats_default_sponge(self):
        # The headline claim: 12 PML cells absorb better than the 20-cell
        # sponge default, so padded grids shrink at equal-or-better quality.
        pml = edge_reflection_energy(PMLBoundary(width=12))
        sponge = edge_reflection_energy(SpongeBoundary(width=20))
        assert pml <= sponge
        assert pml < 1e-3  # absolute quality floor


# --------------------------------------------------------------------------- #
# pad_grid geometry
# --------------------------------------------------------------------------- #
class TestPaddedGrid:
    def test_padded_shape_and_cells(self):
        velocity, config, _, _, _ = small_setup(
            boundary=SpongeBoundary(width=6, pad_grid=True))
        simulator = BatchedAcousticSimulator2D(velocity, config)
        assert simulator.grid_shape == (24, 24)
        assert simulator.padded_grid_shape == (30, 36)  # free surface: no top
        assert simulator.padded_cells == 30 * 36
        no_pad = BatchedAcousticSimulator2D(
            velocity, dataclasses.replace(
                config, boundary=SpongeBoundary(width=6)))
        assert no_pad.padded_grid_shape == (24, 24)

    def test_pad_grid_equals_manually_padded_model(self):
        # pad_grid=True must be exactly the interior-damping run on a model
        # edge-padded by hand, with sources/receivers shifted into pad
        # coordinates — same mask, same medium, bit-identical gathers.
        width = 6
        velocity, config, sources, receivers, wavelet = small_setup(
            boundary=SpongeBoundary(width=width, pad_grid=True))
        padded = BatchedAcousticSimulator2D(
            velocity, config).simulate_shots(sources, wavelet, receivers)
        manual_model = np.pad(velocity, ((0, width), (width, width)),
                              mode="edge")  # free surface: no top pad
        shift = np.array([0, width])
        manual = BatchedAcousticSimulator2D(
            manual_model, dataclasses.replace(
                config, boundary=SpongeBoundary(width=width))
        ).simulate_shots(sources + shift, wavelet, receivers + shift)
        assert padded.shape == manual.shape
        np.testing.assert_array_equal(padded, manual)

    def test_positions_validated_against_model_grid(self):
        velocity, config, sources, receivers, wavelet = small_setup(
            boundary=SpongeBoundary(width=6, pad_grid=True))
        simulator = BatchedAcousticSimulator2D(velocity, config)
        with pytest.raises(ValueError, match="source"):
            simulator.simulate_shots([[2, 24]], wavelet, receivers)
