"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        seed = np.int64(7)
        a = ensure_rng(seed).random(3)
        b = ensure_rng(7).random(3)
        np.testing.assert_array_equal(a, b)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].random(10)
        b = children[1].random(10)
        assert not np.allclose(a, b)

    def test_deterministic_given_seed(self):
        first = [g.random(3) for g in spawn_rngs(5, 3)]
        second = [g.random(3) for g in spawn_rngs(5, 3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
