"""Tests for trainers, the experiment harness and the end-to-end QuGeo pipeline.

These are integration tests: they train tiny models for a handful of epochs
on the session-scoped fixture datasets, checking that the training machinery
improves the objective and that the harness reports coherent results.
"""

import numpy as np
import pytest

from repro.core import (
    ClassicalTrainer,
    QuantumTrainer,
    QuGeo,
    QuGeoConfig,
    QuGeoVQC,
    QuBatchVQC,
    build_cnn_ly,
    build_cnn_px,
    evaluate_model,
)
from repro.core.config import QuGeoDataConfig, QuGeoVQCConfig, TrainingConfig
from repro.core.experiment import (
    ExperimentResult,
    count_interface_matches,
    results_table,
    vertical_profile,
)
from repro.core.training import TrainingResult, evaluate_predictions
from repro.data.dataset import train_test_split


def _vqc_config(decoder="layer", n_batch_qubits=0):
    return QuGeoVQCConfig(n_groups=1, qubits_per_group=6, n_blocks=2,
                          decoder=decoder, output_shape=(6, 6),
                          n_batch_qubits=n_batch_qubits)


def _training_config(epochs=6):
    return TrainingConfig(epochs=epochs, learning_rate=0.1, batch_size=3,
                          eval_every=3, seed=0)


class TestEvaluatePredictions:
    def test_perfect_prediction(self):
        maps = np.random.default_rng(0).random((4, 6, 6))
        metrics = evaluate_predictions(maps, maps)
        assert metrics["ssim"] == pytest.approx(1.0)
        assert metrics["mse"] == pytest.approx(0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            evaluate_predictions(np.zeros((2, 4, 4)), np.zeros((3, 4, 4)))


class TestQuantumTrainer:
    def test_training_reduces_loss(self, tiny_scaled_dataset):
        model = QuGeoVQC(_vqc_config("layer"), rng=0)
        trainer = QuantumTrainer(_training_config(epochs=8))
        result = trainer.train(model, tiny_scaled_dataset, tiny_scaled_dataset)
        losses = result.history("train_loss")
        assert losses[-1] < losses[0]

    def test_result_contains_metrics(self, tiny_scaled_dataset):
        model = QuGeoVQC(_vqc_config("layer"), rng=0)
        result = QuantumTrainer(_training_config(epochs=4)).train(
            model, tiny_scaled_dataset, tiny_scaled_dataset)
        assert isinstance(result, TrainingResult)
        assert 0.0 <= result.final_metrics["test_ssim"] <= 1.0
        assert result.final_metrics["test_mse"] >= 0.0

    def test_learning_rate_follows_cosine_schedule(self, tiny_scaled_dataset):
        model = QuGeoVQC(_vqc_config("layer"), rng=0)
        result = QuantumTrainer(_training_config(epochs=6)).train(
            model, tiny_scaled_dataset)
        lrs = result.history("lr")
        assert lrs[0] > lrs[-1]

    def test_logged_lr_is_the_rate_used_that_epoch(self, tiny_scaled_dataset):
        """Regression: epoch 0 must log the base LR, not the post-step rate."""
        config = _training_config(epochs=3)
        model = QuGeoVQC(_vqc_config("layer"), rng=0)
        result = QuantumTrainer(config).train(model, tiny_scaled_dataset)
        lrs = result.history("lr")
        assert lrs[0] == pytest.approx(config.learning_rate)
        # Each subsequent epoch uses the rate the scheduler set after the
        # previous one, so the history is strictly decreasing under cosine.
        assert all(a > b for a, b in zip(lrs, lrs[1:]))

    def test_final_metrics_labeled_train_without_test_set(self, tiny_scaled_dataset):
        model = QuGeoVQC(_vqc_config("layer"), rng=0)
        result = QuantumTrainer(_training_config(epochs=2)).train(
            model, tiny_scaled_dataset)
        assert set(result.final_metrics) == {"train_ssim", "train_mse"}

    def test_final_metrics_labeled_test_with_test_set(self, tiny_scaled_dataset):
        model = QuGeoVQC(_vqc_config("layer"), rng=0)
        result = QuantumTrainer(_training_config(epochs=2)).train(
            model, tiny_scaled_dataset, tiny_scaled_dataset)
        assert set(result.final_metrics) == {"test_ssim", "test_mse"}

    def test_trains_pixel_decoder(self, tiny_scaled_dataset):
        model = QuGeoVQC(_vqc_config("pixel"), rng=0)
        result = QuantumTrainer(_training_config(epochs=4)).train(
            model, tiny_scaled_dataset, tiny_scaled_dataset)
        assert np.isfinite(result.final_metrics["test_mse"])

    def test_trains_qubatch_model(self, tiny_scaled_dataset):
        model = QuBatchVQC(_vqc_config("layer", n_batch_qubits=1), rng=0)
        result = QuantumTrainer(_training_config(epochs=4)).train(
            model, tiny_scaled_dataset, tiny_scaled_dataset)
        losses = result.history("train_loss")
        assert losses[-1] <= losses[0]

    def test_deterministic_given_seed(self, tiny_scaled_dataset):
        results = []
        for _ in range(2):
            model = QuGeoVQC(_vqc_config("layer"), rng=0)
            result = QuantumTrainer(_training_config(epochs=3)).train(
                model, tiny_scaled_dataset, tiny_scaled_dataset)
            results.append(result.final_metrics["test_mse"])
        assert results[0] == pytest.approx(results[1])


class TestClassicalTrainer:
    def test_training_reduces_loss(self, tiny_scaled_dataset):
        model = build_cnn_ly(64, (6, 6), rng=0)
        config = TrainingConfig(epochs=15, learning_rate=0.01, batch_size=3,
                                eval_every=5, seed=0)
        result = ClassicalTrainer(config).train(model, tiny_scaled_dataset,
                                                tiny_scaled_dataset)
        losses = result.history("train_loss")
        assert losses[-1] < losses[0]

    def test_pixel_variant(self, tiny_scaled_dataset):
        model = build_cnn_px(64, (6, 6), rng=0)
        config = TrainingConfig(epochs=5, learning_rate=0.01, batch_size=3,
                                eval_every=5, seed=0)
        result = ClassicalTrainer(config).train(model, tiny_scaled_dataset,
                                                tiny_scaled_dataset)
        assert np.isfinite(result.final_metrics["test_mse"])

    def test_logged_lr_is_the_rate_used_that_epoch(self, tiny_scaled_dataset):
        """Regression: epoch 0 must log the base LR, not the post-step rate."""
        model = build_cnn_ly(64, (6, 6), rng=0)
        config = TrainingConfig(epochs=3, learning_rate=0.01, batch_size=3,
                                eval_every=5, seed=0)
        result = ClassicalTrainer(config).train(model, tiny_scaled_dataset)
        lrs = result.history("lr")
        assert lrs[0] == pytest.approx(config.learning_rate)
        assert all(a > b for a, b in zip(lrs, lrs[1:]))

    def test_final_metrics_labeled_train_without_test_set(self, tiny_scaled_dataset):
        model = build_cnn_ly(64, (6, 6), rng=0)
        config = TrainingConfig(epochs=2, learning_rate=0.01, batch_size=3,
                                eval_every=5, seed=0)
        result = ClassicalTrainer(config).train(model, tiny_scaled_dataset)
        assert set(result.final_metrics) == {"train_ssim", "train_mse"}


class TestEvaluateModel:
    def test_quantum_and_classical_interfaces(self, tiny_scaled_dataset):
        quantum = QuGeoVQC(_vqc_config("layer"), rng=0)
        classical = build_cnn_ly(64, (6, 6), rng=0)
        for model in (quantum, classical):
            metrics = evaluate_model(model, tiny_scaled_dataset)
            assert set(metrics) == {"ssim", "mse"}
            assert metrics["mse"] >= 0.0

    def test_qubatch_interface(self, tiny_scaled_dataset):
        model = QuBatchVQC(_vqc_config("layer", n_batch_qubits=1), rng=0)
        metrics = evaluate_model(model, tiny_scaled_dataset)
        assert np.isfinite(metrics["mse"])


class TestExperimentHelpers:
    def test_final_metric_reads_either_split(self):
        from repro.core.experiment import final_metric
        from repro.utils.logging import RunLogger

        tested = TrainingResult(model=None, logger=RunLogger(),
                                final_metrics={"test_ssim": 0.9, "test_mse": 1e-3})
        trained = TrainingResult(model=None, logger=RunLogger(),
                                 final_metrics={"train_ssim": 0.5, "train_mse": 0.1})
        assert final_metric(tested, "ssim") == pytest.approx(0.9)
        assert final_metric(trained, "mse") == pytest.approx(0.1)
        with pytest.raises(KeyError):
            final_metric(trained, "missing")

    def test_experiment_result_metric_access(self):
        result = ExperimentResult(model="Q-M-LY", dataset="Q-D-FW",
                                  metrics={"ssim": 0.9})
        assert result.metric("ssim") == pytest.approx(0.9)
        assert np.isnan(result.metric("missing"))

    def test_results_table_rendering(self):
        rows = [ExperimentResult("Q-M-LY", "Q-D-FW", {"ssim": 0.9, "mse": 3e-4}),
                ExperimentResult("CNN-PX", "D-Sample", {"ssim": 0.8, "mse": 8e-4})]
        table = results_table(rows, title="Table 2")
        assert "Q-M-LY" in table and "CNN-PX" in table
        assert "Table 2" in table

    def test_vertical_profile(self):
        velocity_map = np.arange(16.0).reshape(4, 4)
        profile = vertical_profile(velocity_map, column=1)
        np.testing.assert_allclose(profile, [1.0, 5.0, 9.0, 13.0])
        default = vertical_profile(velocity_map)
        np.testing.assert_allclose(default, velocity_map[:, 2])

    def test_vertical_profile_validation(self):
        with pytest.raises(ValueError):
            vertical_profile(np.zeros((4, 4)), column=10)
        with pytest.raises(ValueError):
            vertical_profile(np.zeros(4))

    def test_count_interface_matches_perfect(self):
        truth = np.array([0.2, 0.2, 0.6, 0.6, 0.9])
        matched, total = count_interface_matches(truth, truth)
        assert total == 2
        assert matched == 2

    def test_count_interface_matches_missed(self):
        truth = np.array([0.2, 0.2, 0.6, 0.6, 0.9])
        flat = np.full(5, 0.5)
        matched, total = count_interface_matches(flat, truth)
        assert total == 2
        assert matched == 0

    def test_count_interface_matches_validation(self):
        with pytest.raises(ValueError):
            count_interface_matches(np.zeros(3), np.zeros(4))


class TestQuGeoFramework:
    @pytest.fixture(scope="class")
    def framework_config(self):
        data = QuGeoDataConfig(scaled_seismic_shape=(1, 8, 8),
                               scaled_velocity_shape=(6, 6))
        vqc = QuGeoVQCConfig(n_groups=1, qubits_per_group=6, n_blocks=2,
                             decoder="layer", output_shape=(6, 6))
        training = TrainingConfig(epochs=4, learning_rate=0.1, batch_size=3,
                                  eval_every=2, seed=0)
        return QuGeoConfig(data=data, vqc=vqc, training=training,
                           scaling_method="forward_modeling")

    def test_fit_and_predict(self, framework_config, tiny_dataset):
        train, test = train_test_split(tiny_dataset, train_size=4, rng=0)
        pipeline = QuGeo(framework_config, rng=0)
        result = pipeline.fit(train, test)
        assert isinstance(result, TrainingResult)
        prediction = pipeline.predict(test[0])
        assert prediction.shape == framework_config.data.scaled_velocity_shape
        assert prediction.min() >= 1000.0  # physical units after denormalisation
        normalized = pipeline.predict(test[0], denormalize=False)
        assert normalized.max() <= 1.5

    def test_predict_before_fit_raises(self, framework_config, tiny_dataset):
        pipeline = QuGeo(framework_config, rng=0)
        with pytest.raises(RuntimeError):
            pipeline.predict(tiny_dataset[0])

    def test_summary_contents(self, framework_config, tiny_dataset):
        train, test = train_test_split(tiny_dataset, train_size=4, rng=0)
        pipeline = QuGeo(framework_config, rng=0)
        pipeline.fit(train, test)
        summary = pipeline.summary()
        assert summary["scaling_method"] == "Q-D-FW"
        assert summary["decoder"] == "Q-M-LY"
        assert summary["total_qubits"] <= 16
        assert "test_ssim" in summary

    def test_d_sample_pipeline(self, tiny_dataset):
        data = QuGeoDataConfig(scaled_seismic_shape=(1, 8, 8),
                               scaled_velocity_shape=(6, 6))
        vqc = QuGeoVQCConfig(n_groups=1, qubits_per_group=6, n_blocks=1,
                             decoder="layer", output_shape=(6, 6))
        training = TrainingConfig(epochs=2, learning_rate=0.1, batch_size=3,
                                  eval_every=2, seed=0)
        config = QuGeoConfig(data=data, vqc=vqc, training=training,
                             scaling_method="d_sample")
        pipeline = QuGeo(config, rng=0)
        pipeline.fit(tiny_dataset[:4], tiny_dataset[4:])
        assert pipeline.summary()["scaling_method"] == "D-Sample"

    def test_cnn_scaling_requires_compressor_data(self, tiny_dataset):
        data = QuGeoDataConfig(scaled_seismic_shape=(1, 8, 8),
                               scaled_velocity_shape=(6, 6))
        vqc = QuGeoVQCConfig(n_groups=1, qubits_per_group=6, n_blocks=1,
                             decoder="layer", output_shape=(6, 6))
        config = QuGeoConfig(data=data, vqc=vqc,
                             training=TrainingConfig(epochs=1),
                             scaling_method="cnn")
        pipeline = QuGeo(config, rng=0)
        with pytest.raises(ValueError):
            pipeline.build_scaler()

    def test_qubatch_pipeline(self, tiny_dataset):
        data = QuGeoDataConfig(scaled_seismic_shape=(1, 8, 8),
                               scaled_velocity_shape=(6, 6))
        vqc = QuGeoVQCConfig(n_groups=1, qubits_per_group=6, n_blocks=1,
                             decoder="layer", output_shape=(6, 6),
                             n_batch_qubits=1)
        training = TrainingConfig(epochs=2, learning_rate=0.1, batch_size=2,
                                  eval_every=2, seed=0)
        config = QuGeoConfig(data=data, vqc=vqc, training=training)
        pipeline = QuGeo(config, rng=0)
        pipeline.fit(tiny_dataset[:4], tiny_dataset[4:])
        assert isinstance(pipeline.model, QuBatchVQC)
