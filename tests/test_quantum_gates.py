"""Tests for repro.quantum.gates and repro.quantum.parametric."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.gates import GATES, apply_matrix, is_unitary
from repro.quantum.parametric import (
    PARAMETRIC_GATES,
    cu3_matrix,
    rx_matrix,
    ry_matrix,
    rz_matrix,
    u3_matrix,
)


def _random_state(n_qubits, seed=0):
    rng = np.random.default_rng(seed)
    state = rng.normal(size=2**n_qubits) + 1j * rng.normal(size=2**n_qubits)
    return state / np.linalg.norm(state)


def _embed_gate(matrix, targets, n_qubits):
    """Build the full 2^n x 2^n matrix of a gate on ``targets`` (reference)."""
    dim = 2**n_qubits
    k = len(targets)
    full = np.zeros((dim, dim), dtype=complex)
    for column in range(dim):
        bits = [(column >> (n_qubits - 1 - q)) & 1 for q in range(n_qubits)]
        gate_in = 0
        for position, qubit in enumerate(targets):
            gate_in |= bits[qubit] << (k - 1 - position)
        for gate_out in range(2**k):
            new_bits = list(bits)
            for position, qubit in enumerate(targets):
                new_bits[qubit] = (gate_out >> (k - 1 - position)) & 1
            row = sum(bit << (n_qubits - 1 - q) for q, bit in enumerate(new_bits))
            full[row, column] += matrix[gate_out, gate_in]
    return full


class TestFixedGates:
    def test_all_registered_gates_are_unitary(self):
        for name, matrix in GATES.items():
            assert is_unitary(matrix), name

    def test_is_unitary_rejects_non_square(self):
        assert not is_unitary(np.ones((2, 3)))

    def test_is_unitary_rejects_non_unitary(self):
        assert not is_unitary(np.array([[1.0, 1.0], [0.0, 1.0]]))

    def test_hadamard_creates_superposition(self):
        state = np.array([1.0, 0.0], dtype=complex)
        out = apply_matrix(state, GATES["H"], (0,), 1)
        np.testing.assert_allclose(np.abs(out) ** 2, [0.5, 0.5])

    def test_x_flips_basis_state(self):
        state = np.array([1.0, 0.0], dtype=complex)
        out = apply_matrix(state, GATES["X"], (0,), 1)
        np.testing.assert_allclose(out, [0.0, 1.0])

    def test_cnot_entangles(self):
        # H on control then CNOT gives a Bell state.
        state = np.zeros(4, dtype=complex)
        state[0] = 1.0
        state = apply_matrix(state, GATES["H"], (0,), 2)
        state = apply_matrix(state, GATES["CNOT"], (0, 1), 2)
        expected = np.array([1.0, 0.0, 0.0, 1.0]) / np.sqrt(2)
        np.testing.assert_allclose(state, expected, atol=1e-12)

    def test_swap_exchanges_qubits(self):
        # |01> -> |10>
        state = np.zeros(4, dtype=complex)
        state[1] = 1.0
        out = apply_matrix(state, GATES["SWAP"], (0, 1), 2)
        expected = np.zeros(4)
        expected[2] = 1.0
        np.testing.assert_allclose(out, expected)


class TestApplyMatrix:
    @pytest.mark.parametrize("name", ["H", "X", "Y", "Z", "S", "T"])
    def test_single_qubit_matches_full_matrix(self, name):
        n = 4
        state = _random_state(n, seed=3)
        for qubit in range(n):
            fast = apply_matrix(state, GATES[name], (qubit,), n)
            reference = _embed_gate(GATES[name], (qubit,), n) @ state
            np.testing.assert_allclose(fast, reference, atol=1e-12)

    @pytest.mark.parametrize("name", ["CNOT", "CZ", "SWAP"])
    def test_two_qubit_matches_full_matrix(self, name):
        n = 4
        state = _random_state(n, seed=4)
        for control, target in itertools.permutations(range(n), 2):
            fast = apply_matrix(state, GATES[name], (control, target), n)
            reference = _embed_gate(GATES[name], (control, target), n) @ state
            np.testing.assert_allclose(fast, reference, atol=1e-12)

    def test_norm_preserved(self):
        state = _random_state(5, seed=5)
        out = apply_matrix(state, GATES["H"], (2,), 5)
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_input_not_modified(self):
        state = _random_state(3, seed=6)
        original = state.copy()
        apply_matrix(state, GATES["X"], (1,), 3)
        np.testing.assert_array_equal(state, original)

    def test_duplicate_targets_raise(self):
        with pytest.raises(ValueError):
            apply_matrix(_random_state(3), GATES["CNOT"], (1, 1), 3)

    def test_out_of_range_target_raises(self):
        with pytest.raises(ValueError):
            apply_matrix(_random_state(2), GATES["X"], (5,), 2)

    def test_wrong_matrix_size_raises(self):
        with pytest.raises(ValueError):
            apply_matrix(_random_state(2), GATES["CNOT"], (0,), 2)

    def test_wrong_state_size_raises(self):
        with pytest.raises(ValueError):
            apply_matrix(np.ones(3, dtype=complex), GATES["X"], (0,), 2)


class TestParametricGates:
    @settings(max_examples=30, deadline=None)
    @given(theta=st.floats(-6.0, 6.0), phi=st.floats(-6.0, 6.0),
           lam=st.floats(-6.0, 6.0))
    def test_u3_is_unitary(self, theta, phi, lam):
        assert is_unitary(u3_matrix([theta, phi, lam]))

    @settings(max_examples=30, deadline=None)
    @given(theta=st.floats(-6.0, 6.0), phi=st.floats(-6.0, 6.0),
           lam=st.floats(-6.0, 6.0))
    def test_cu3_is_unitary(self, theta, phi, lam):
        assert is_unitary(cu3_matrix([theta, phi, lam]))

    @settings(max_examples=30, deadline=None)
    @given(theta=st.floats(-6.0, 6.0))
    def test_rotations_are_unitary(self, theta):
        for matrix_fn in (rx_matrix, ry_matrix, rz_matrix):
            assert is_unitary(matrix_fn([theta]))

    def test_u3_identity_at_zero(self):
        np.testing.assert_allclose(u3_matrix([0.0, 0.0, 0.0]), np.eye(2), atol=1e-12)

    def test_cu3_controls_identity_block(self):
        matrix = cu3_matrix([0.3, 0.2, 0.1])
        np.testing.assert_allclose(matrix[:2, :2], np.eye(2))
        np.testing.assert_allclose(matrix[:2, 2:], 0.0)

    def test_u3_reduces_to_ry(self):
        theta = 0.7
        np.testing.assert_allclose(u3_matrix([theta, 0.0, 0.0]),
                                   ry_matrix([theta]), atol=1e-12)

    @pytest.mark.parametrize("name", sorted(PARAMETRIC_GATES))
    def test_derivatives_match_finite_differences(self, name):
        spec = PARAMETRIC_GATES[name]
        rng = np.random.default_rng(11)
        params = rng.uniform(-np.pi, np.pi, size=spec.n_params)
        analytic = spec.derivatives(params)
        epsilon = 1e-6
        for index in range(spec.n_params):
            shifted_plus = params.copy()
            shifted_plus[index] += epsilon
            shifted_minus = params.copy()
            shifted_minus[index] -= epsilon
            numeric = (spec.matrix(shifted_plus) - spec.matrix(shifted_minus)) / (2 * epsilon)
            np.testing.assert_allclose(analytic[index], numeric, atol=1e-6)

    def test_wrong_parameter_count_raises(self):
        with pytest.raises(ValueError):
            PARAMETRIC_GATES["U3"].matrix([0.1])
        with pytest.raises(ValueError):
            PARAMETRIC_GATES["RX"].derivatives([0.1, 0.2])
