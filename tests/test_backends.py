"""Backend subsystem tests: engine parity, registry behaviour, model plumbing.

The vectorised :class:`EinsumBatchBackend` must agree with the bit-exact
:class:`NumpyLoopBackend` to 1e-10 on random circuits over 1-6 qubits,
including the fixed two-qubit gates (CNOT/CZ/SWAP) and the parameterised
U3/CU3 family, in every execution mode (single state, batched states,
batched parameters, adjoint intermediates).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    BACKEND_ENV_VAR,
    DuplicateBackendError,
    EinsumBatchBackend,
    NumpyLoopBackend,
    UnknownBackendError,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.core.config import QuGeoVQCConfig
from repro.core.qubatch import QuBatchVQC
from repro.core.vqc_model import QuGeoVQC
from repro.quantum.autodiff import (
    circuit_gradients,
    finite_difference_gradients,
    parameter_shift_gradients,
)
from repro.quantum.circuit import ParameterizedCircuit

ATOL = 1e-10

FIXED_SINGLE = ("H", "X", "Y", "Z", "S", "T")
FIXED_DOUBLE = ("CNOT", "CZ", "SWAP")
PARAM_SINGLE = ("RX", "RY", "RZ", "U3")
PARAM_DOUBLE = ("CU3", "CRX")


def random_circuit(n_qubits: int, n_ops: int, rng) -> ParameterizedCircuit:
    """A random mix of fixed and parameterised one/two-qubit gates."""
    circuit = ParameterizedCircuit(n_qubits)
    for _ in range(n_ops):
        two_qubit = n_qubits >= 2 and rng.random() < 0.4
        parametric = rng.random() < 0.5
        if two_qubit:
            name = rng.choice(PARAM_DOUBLE if parametric else FIXED_DOUBLE)
            qubits = rng.choice(n_qubits, size=2, replace=False)
        else:
            name = rng.choice(PARAM_SINGLE if parametric else FIXED_SINGLE)
            qubits = [rng.integers(n_qubits)]
        if parametric:
            circuit.add_parametric_gate(str(name), [int(q) for q in qubits])
        else:
            circuit.add_gate(str(name), [int(q) for q in qubits])
    return circuit


def random_states(n_qubits: int, batch: int, rng) -> np.ndarray:
    states = (rng.normal(size=(batch, 2**n_qubits))
              + 1j * rng.normal(size=(batch, 2**n_qubits)))
    return states / np.linalg.norm(states, axis=1, keepdims=True)


@pytest.fixture(scope="module")
def loop():
    return get_backend("numpy")


@pytest.fixture(scope="module")
def einsum():
    return get_backend("einsum")


# --------------------------------------------------------------------------- #
# engine parity
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("n_qubits", [1, 2, 3, 4, 5, 6])
def test_single_state_parity_random_circuits(n_qubits, loop, einsum):
    rng = np.random.default_rng(100 + n_qubits)
    for _ in range(4):
        circuit = random_circuit(n_qubits, n_ops=18, rng=rng)
        params = rng.normal(size=circuit.n_params)
        state = random_states(n_qubits, 1, rng)[0]
        expected = loop.run(circuit, state, params)
        actual = einsum.run(circuit, state, params)
        np.testing.assert_allclose(actual, expected, atol=ATOL)


@pytest.mark.parametrize("n_qubits", [1, 3, 6])
@pytest.mark.parametrize("batch", [1, 5, 8])
def test_batched_state_parity(n_qubits, batch, loop, einsum):
    rng = np.random.default_rng(200 + 10 * n_qubits + batch)
    circuit = random_circuit(n_qubits, n_ops=15, rng=rng)
    params = rng.normal(size=circuit.n_params)
    states = random_states(n_qubits, batch, rng)
    expected = loop.run_batched(circuit, states, params)
    actual = einsum.run_batched(circuit, states, params)
    assert actual.shape == (batch, 2**n_qubits)
    np.testing.assert_allclose(actual, expected, atol=ATOL)


@pytest.mark.parametrize("n_qubits", [2, 4, 6])
def test_batched_params_parity(n_qubits, loop, einsum):
    rng = np.random.default_rng(300 + n_qubits)
    circuit = random_circuit(n_qubits, n_ops=12, rng=rng)
    batch = 6
    states = random_states(n_qubits, batch, rng)
    param_matrix = rng.normal(size=(batch, circuit.n_params))
    expected = np.stack([loop.run(circuit, state, row)
                         for state, row in zip(states, param_matrix)])
    actual = einsum.run_batched(circuit, states, param_matrix)
    np.testing.assert_allclose(actual, expected, atol=ATOL)


def test_fusion_of_adjacent_single_qubit_gates(loop, einsum):
    """Chains of single-qubit gates on one wire are fused but still correct."""
    rng = np.random.default_rng(7)
    circuit = ParameterizedCircuit(3)
    for name in ("H", "S", "T"):
        circuit.add_gate(name, [0])
    for name in ("RX", "RY", "RZ", "U3"):
        circuit.add_parametric_gate(name, [1])
    circuit.add_gate("CNOT", [0, 1])
    for name in ("U3", "U3"):
        circuit.add_parametric_gate(name, [2])
    params = rng.normal(size=circuit.n_params)
    state = random_states(3, 1, rng)[0]
    np.testing.assert_allclose(einsum.run(circuit, state, params),
                               loop.run(circuit, state, params), atol=ATOL)


def test_fusion_can_be_disabled():
    backend = EinsumBatchBackend(fuse_single_qubit_gates=False)
    rng = np.random.default_rng(8)
    circuit = random_circuit(3, n_ops=10, rng=rng)
    params = rng.normal(size=circuit.n_params)
    state = random_states(3, 1, rng)[0]
    np.testing.assert_allclose(backend.run(circuit, state, params),
                               get_backend("numpy").run(circuit, state, params),
                               atol=ATOL)


def test_intermediates_accept_single_row_param_matrix(loop, einsum):
    """A (1, n_params) matrix is valid everywhere, incl. the adjoint path."""
    rng = np.random.default_rng(19)
    circuit = random_circuit(3, n_ops=8, rng=rng)
    params = rng.normal(size=(1, circuit.n_params))
    state = random_states(3, 1, rng)[0]
    out_a, inter_a = loop.run(circuit, state, params[0],
                              return_intermediate=True)
    out_b, inter_b = einsum.run(circuit, state, params,
                                return_intermediate=True)
    np.testing.assert_allclose(out_b, out_a, atol=ATOL)
    np.testing.assert_allclose(inter_b[-1], inter_a[-1], atol=ATOL)


def test_matrix_stack_fallback_loop_matches_vectorised():
    """ParametricGate.matrix_stack without stack_fn (per-row loop) agrees."""
    from dataclasses import replace

    from repro.quantum.parametric import PARAMETRIC_GATES

    rng = np.random.default_rng(20)
    for name in ("RZ", "U3", "CU3"):
        gate = PARAMETRIC_GATES[name]
        columns = tuple(rng.normal(size=5) for _ in range(gate.n_params))
        vectorised = gate.matrix_stack(columns)
        fallback = replace(gate, stack_fn=None).matrix_stack(columns)
        np.testing.assert_allclose(vectorised, fallback, atol=ATOL)


def test_intermediate_states_parity(loop, einsum):
    rng = np.random.default_rng(9)
    circuit = random_circuit(4, n_ops=12, rng=rng)
    params = rng.normal(size=circuit.n_params)
    state = random_states(4, 1, rng)[0]
    out_a, inter_a = loop.run(circuit, state, params, return_intermediate=True)
    out_b, inter_b = einsum.run(circuit, state, params, return_intermediate=True)
    np.testing.assert_allclose(out_b, out_a, atol=ATOL)
    assert len(inter_a) == len(inter_b) == len(circuit.ops)
    for a, b in zip(inter_a, inter_b):
        np.testing.assert_allclose(b, a, atol=ATOL)


def test_expectation_parity(loop, einsum):
    rng = np.random.default_rng(10)
    circuit = random_circuit(4, n_ops=10, rng=rng)
    params = rng.normal(size=circuit.n_params)
    states = random_states(4, 5, rng)
    expected = loop.expectation_batched(circuit, states, params, qubits=(0, 2))
    actual = einsum.expectation_batched(circuit, states, params, qubits=(0, 2))
    np.testing.assert_allclose(actual, expected, atol=ATOL)
    np.testing.assert_allclose(einsum.expectation(circuit, states[0], params),
                               loop.expectation(circuit, states[0], params),
                               atol=ATOL)


def test_circuit_run_accepts_backend_name():
    rng = np.random.default_rng(11)
    circuit = random_circuit(3, n_ops=8, rng=rng)
    params = rng.normal(size=circuit.n_params)
    state = random_states(3, 1, rng)[0]
    np.testing.assert_allclose(circuit.run(state, params, backend="einsum"),
                               circuit.run(state, params, backend="numpy"),
                               atol=ATOL)
    states = random_states(3, 4, rng)
    np.testing.assert_allclose(circuit.run_batched(states, params,
                                                   backend="einsum"),
                               circuit.run_batched(states, params,
                                                   backend="numpy"),
                               atol=ATOL)


def test_einsum_rejects_bad_shapes(einsum):
    circuit = ParameterizedCircuit(2)
    circuit.add_parametric_gate("U3", [0])
    states = random_states(2, 3, np.random.default_rng(0))
    with pytest.raises(ValueError):
        einsum.run_batched(circuit, states[0])  # not 2-D
    with pytest.raises(ValueError):
        einsum.run_batched(circuit, states, np.zeros((2, circuit.n_params)))
    with pytest.raises(ValueError):
        einsum.run_batched(circuit, states, np.zeros((3, circuit.n_params + 1)))
    with pytest.raises(ValueError):
        einsum.run(circuit, np.zeros(3))


# --------------------------------------------------------------------------- #
# gradient parity
# --------------------------------------------------------------------------- #
def _z0_loss_head(n_qubits):
    signs = 1.0 - 2.0 * ((np.arange(2**n_qubits) >> (n_qubits - 1)) & 1)

    def loss_head(psi):
        loss = float(np.dot(signs, np.abs(psi) ** 2))
        return loss, signs * psi

    return loss_head


def test_adjoint_gradients_match_across_backends():
    rng = np.random.default_rng(12)
    circuit = random_circuit(4, n_ops=12, rng=rng)
    params = rng.normal(size=circuit.n_params)
    state = random_states(4, 1, rng)[0]
    loss_head = _z0_loss_head(4)
    loss_a, grads_a = circuit_gradients(circuit, params, state, loss_head,
                                        backend="numpy")
    loss_b, grads_b = circuit_gradients(circuit, params, state, loss_head,
                                        backend="einsum")
    assert abs(loss_a - loss_b) < ATOL
    np.testing.assert_allclose(grads_b, grads_a, atol=ATOL)
    _, grads_fd = finite_difference_gradients(circuit, params, state, loss_head)
    np.testing.assert_allclose(grads_b, grads_fd, atol=1e-5)


def test_parameter_shift_chunked_sweep_matches_loop(monkeypatch):
    """The stacked sweep stays correct when forced into tiny memory chunks."""
    import repro.quantum.autodiff as autodiff

    rng = np.random.default_rng(16)
    circuit = ParameterizedCircuit(3)
    for q in range(3):
        circuit.add_parametric_gate("RY", [q])
    params = rng.normal(size=circuit.n_params)
    state = random_states(3, 1, rng)[0]
    loss_head = _z0_loss_head(3)
    _, grads_whole = parameter_shift_gradients(circuit, params, state,
                                               loss_head, backend="einsum")
    monkeypatch.setattr(autodiff, "_SHIFT_SWEEP_MAX_ELEMENTS", 1)
    _, grads_chunked = parameter_shift_gradients(circuit, params, state,
                                                 loss_head, backend="einsum")
    np.testing.assert_allclose(grads_chunked, grads_whole, atol=ATOL)


def test_adjoint_capability_enforced():
    class NoAdjoint(NumpyLoopBackend):
        name = "no-adjoint-test"
        capabilities = NumpyLoopBackend.capabilities.__class__(adjoint=False)

    rng = np.random.default_rng(17)
    circuit = ParameterizedCircuit(2)
    circuit.add_parametric_gate("RY", [0])
    params = rng.normal(size=circuit.n_params)
    state = random_states(2, 1, rng)[0]
    with pytest.raises(ValueError, match="adjoint"):
        circuit_gradients(circuit, params, state, _z0_loss_head(2),
                          backend=NoAdjoint())


def test_parameter_shift_stacked_sweep_matches_loop():
    rng = np.random.default_rng(13)
    circuit = ParameterizedCircuit(3)
    for q in range(3):
        circuit.add_parametric_gate("RY", [q])
    circuit.add_gate("CNOT", [0, 1])
    circuit.add_parametric_gate("RX", [2])
    params = rng.normal(size=circuit.n_params)
    state = random_states(3, 1, rng)[0]
    loss_head = _z0_loss_head(3)
    loss_a, grads_a = parameter_shift_gradients(circuit, params, state,
                                                loss_head, backend="numpy")
    loss_b, grads_b = parameter_shift_gradients(circuit, params, state,
                                                loss_head, backend="einsum")
    assert abs(loss_a - loss_b) < ATOL
    np.testing.assert_allclose(grads_b, grads_a, atol=ATOL)


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
def test_known_backends_registered():
    names = available_backends()
    assert "numpy" in names and "einsum" in names
    assert isinstance(get_backend("numpy"), NumpyLoopBackend)
    assert isinstance(get_backend("einsum"), EinsumBatchBackend)


def test_get_backend_unknown_name():
    with pytest.raises(UnknownBackendError) as excinfo:
        get_backend("definitely-not-a-backend")
    message = str(excinfo.value)
    assert "definitely-not-a-backend" in message
    assert "numpy" in message  # the error lists what *is* registered


def test_duplicate_registration_rejected():
    with pytest.raises(DuplicateBackendError):
        register_backend("numpy", NumpyLoopBackend)
    # replace=True is the explicit override escape hatch.
    register_backend("numpy", NumpyLoopBackend, replace=True)
    assert isinstance(get_backend("numpy"), NumpyLoopBackend)


def test_register_and_unregister_custom_backend():
    class Custom(NumpyLoopBackend):
        name = "custom-test"

    register_backend("custom-test", Custom)
    try:
        assert isinstance(get_backend("custom-test"), Custom)
        # Instances are cached per name.
        assert get_backend("custom-test") is get_backend("custom-test")
    finally:
        unregister_backend("custom-test")
    with pytest.raises(UnknownBackendError):
        get_backend("custom-test")
    with pytest.raises(UnknownBackendError):
        unregister_backend("custom-test")


def test_register_rejects_bad_inputs():
    with pytest.raises(ValueError):
        register_backend("", NumpyLoopBackend)
    with pytest.raises(TypeError):
        register_backend("not-callable", object())


def test_get_backend_passthrough_and_bad_spec():
    instance = EinsumBatchBackend()
    assert get_backend(instance) is instance
    with pytest.raises(TypeError):
        get_backend(123)


def test_env_var_selects_default(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "einsum")
    assert default_backend_name() == "einsum"
    assert isinstance(get_backend(None), EinsumBatchBackend)
    monkeypatch.delenv(BACKEND_ENV_VAR)
    assert default_backend_name() == "numpy"
    assert isinstance(get_backend(None), NumpyLoopBackend)


# --------------------------------------------------------------------------- #
# array-module engines (torch / cupy) — exercised only where the package
# (and for cupy, a GPU) is present; the registration itself is always tested.
# --------------------------------------------------------------------------- #
ARRAY_MODULE_ENGINES = ("torch", "cupy")


def _engine_or_skip(name):
    from repro.xm import array_module_available

    if not array_module_available(name):
        pytest.skip(f"array module {name!r} is not available here")
    return get_backend(name)


@pytest.mark.parametrize("engine", ARRAY_MODULE_ENGINES)
def test_array_module_engines_registered_and_guarded(engine):
    assert engine in available_backends()
    from repro.xm import array_module_available

    if array_module_available(engine):
        backend = get_backend(engine)
        assert backend.name == engine
        assert backend.xm.name == engine
    else:
        # The name resolves, but building the engine reports the missing
        # package instead of crashing deep inside the math.
        with pytest.raises(ImportError, match=engine):
            get_backend(engine)


@pytest.mark.parametrize("engine", ARRAY_MODULE_ENGINES)
@pytest.mark.parametrize("n_qubits", [1, 3, 5])
def test_array_module_single_state_parity(engine, n_qubits, loop):
    backend = _engine_or_skip(engine)
    rng = np.random.default_rng(400 + n_qubits)
    for _ in range(2):
        circuit = random_circuit(n_qubits, n_ops=15, rng=rng)
        params = rng.normal(size=circuit.n_params)
        state = random_states(n_qubits, 1, rng)[0]
        expected = loop.run(circuit, state, params)
        actual = backend.run(circuit, state, params)
        assert isinstance(actual, np.ndarray)
        np.testing.assert_allclose(actual, expected, atol=ATOL)


@pytest.mark.parametrize("engine", ARRAY_MODULE_ENGINES)
@pytest.mark.parametrize("n_qubits,batch", [(2, 4), (4, 6)])
def test_array_module_batched_parity(engine, n_qubits, batch, loop):
    backend = _engine_or_skip(engine)
    rng = np.random.default_rng(500 + 10 * n_qubits + batch)
    circuit = random_circuit(n_qubits, n_ops=12, rng=rng)
    states = random_states(n_qubits, batch, rng)
    params = rng.normal(size=circuit.n_params)
    np.testing.assert_allclose(backend.run_batched(circuit, states, params),
                               loop.run_batched(circuit, states, params),
                               atol=ATOL)
    param_matrix = rng.normal(size=(batch, circuit.n_params))
    expected = np.stack([loop.run(circuit, state, row)
                         for state, row in zip(states, param_matrix)])
    np.testing.assert_allclose(
        backend.run_batched(circuit, states, param_matrix), expected,
        atol=ATOL)


@pytest.mark.parametrize("engine", ARRAY_MODULE_ENGINES)
def test_array_module_adjoint_gradient_parity(engine):
    backend = _engine_or_skip(engine)
    rng = np.random.default_rng(600)
    circuit = random_circuit(4, n_ops=10, rng=rng)
    params = rng.normal(size=circuit.n_params)
    state = random_states(4, 1, rng)[0]
    loss_head = _z0_loss_head(4)
    loss_a, grads_a = circuit_gradients(circuit, params, state, loss_head,
                                        backend="numpy")
    loss_b, grads_b = circuit_gradients(circuit, params, state, loss_head,
                                        backend=backend)
    assert abs(loss_a - loss_b) < ATOL
    np.testing.assert_allclose(grads_b, grads_a, atol=ATOL)


# --------------------------------------------------------------------------- #
# model plumbing
# --------------------------------------------------------------------------- #
def _small_config(**kwargs) -> QuGeoVQCConfig:
    return QuGeoVQCConfig(n_groups=1, qubits_per_group=4, n_blocks=2,
                          decoder="layer", output_shape=(4, 4), **kwargs)


def test_qugeovqc_backend_parity():
    rng = np.random.default_rng(14)
    seismic = [rng.normal(size=16) for _ in range(3)]
    model_loop = QuGeoVQC(_small_config(backend="numpy"), rng=3)
    model_einsum = QuGeoVQC(_small_config(backend="einsum"), rng=3)
    assert isinstance(model_loop.backend, NumpyLoopBackend)
    assert isinstance(model_einsum.backend, EinsumBatchBackend)
    for sample in seismic:
        np.testing.assert_allclose(model_einsum.predict(sample),
                                   model_loop.predict(sample), atol=ATOL)
    # The batched prediction path (one stacked contraction) agrees too.
    np.testing.assert_allclose(model_einsum.predict_batch(seismic),
                               model_loop.predict_batch(seismic), atol=ATOL)
    target = rng.normal(size=(4, 4))
    loss_a, grads_a = model_loop.loss_and_gradients(seismic[0], target)
    loss_b, grads_b = model_einsum.loss_and_gradients(seismic[0], target)
    assert abs(loss_a - loss_b) < ATOL
    np.testing.assert_allclose(grads_b["theta"], grads_a["theta"], atol=ATOL)


def test_qubatchvqc_backend_parity():
    rng = np.random.default_rng(15)
    config_kwargs = dict(n_batch_qubits=1)
    seismic = [rng.normal(size=16) for _ in range(2)]
    targets = [rng.normal(size=(4, 4)) for _ in range(2)]
    model_loop = QuBatchVQC(_small_config(backend="numpy", **config_kwargs),
                            rng=4)
    model_einsum = QuBatchVQC(_small_config(backend="einsum", **config_kwargs),
                              rng=4)
    np.testing.assert_allclose(model_einsum.predict_batch(seismic),
                               model_loop.predict_batch(seismic), atol=ATOL)
    loss_a, grads_a = model_loop.loss_and_gradients(seismic, targets)
    loss_b, grads_b = model_einsum.loss_and_gradients(seismic, targets)
    assert abs(loss_a - loss_b) < ATOL
    np.testing.assert_allclose(grads_b["theta"], grads_a["theta"], atol=ATOL)


def test_explicit_backend_argument_overrides_config():
    model = QuGeoVQC(_small_config(backend="numpy"), rng=5, backend="einsum")
    assert isinstance(model.backend, EinsumBatchBackend)


def test_config_rejects_non_string_backend():
    with pytest.raises(ValueError):
        _small_config(backend=123)


def test_unknown_config_backend_fails_at_model_build():
    with pytest.raises(UnknownBackendError):
        QuGeoVQC(_small_config(backend="no-such-engine"), rng=0)
