"""Tests for the project-invariant linter (``repro.analysis``).

Each rule gets a positive fixture (a tiny project tree that must trigger
it), a negative fixture (the compliant spelling), and a suppression fixture
(the violation silenced by a same-line ``qugeo-lint: disable=`` comment).
The final test lints the real repository tree and requires zero findings —
the same gate CI runs.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    DuplicateRuleError,
    Finding,
    Rule,
    UnknownRuleError,
    available_rules,
    get_rule,
    lint_paths,
    register_rule,
    resolve_rules,
    unregister_rule,
)
from repro.analysis.baselines import FingerprintBaseline
from repro.analysis.base import Project, parse_suppressions, scan_comments
from repro.analysis.cli import main as cli_main
from repro.analysis.rules.qg007_fingerprint import FingerprintHygieneRule

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_project(tmp_path, files):
    """Materialize a throwaway project tree with a pyproject.toml root."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'fixture'\n")
    for rel, content in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    return tmp_path


def lint_fixture(root, rule, paths=("src",)):
    """Lint the fixture tree with one rule selected."""
    return lint_paths([root / p for p in paths], select=[rule],
                      project_root=root)


def codes(result):
    return [finding.rule for finding in result.findings]


# --------------------------------------------------------------------------- #
# QG001 — env access outside the waist
# --------------------------------------------------------------------------- #
def test_qg001_flags_direct_environ(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/foo.py": """\
            import os
            os.environ["QUGEO_BACKEND"] = "torch"
            value = os.getenv("QUGEO_DTYPE")
        """,
    })
    result = lint_fixture(root, "QG001")
    assert codes(result) == ["QG001", "QG001"]


def test_qg001_allows_env_module_and_from_import_flagged(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/utils/env.py": """\
            import os
            os.environ["QUGEO_BACKEND"] = "numpy"
        """,
        "src/repro/bar.py": """\
            from os import getenv
        """,
    })
    result = lint_fixture(root, "QG001")
    assert [(f.rule, f.path) for f in result.findings] == \
        [("QG001", "src/repro/bar.py")]


def test_qg001_suppression(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/foo.py": """\
            import os
            os.environ["X"] = "y"  # qugeo-lint: disable=QG001 -- fixture
        """,
    })
    assert codes(lint_fixture(root, "QG001")) == []


# --------------------------------------------------------------------------- #
# QG002 — unseeded RNG
# --------------------------------------------------------------------------- #
def test_qg002_flags_unseeded_and_global_rng(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/foo.py": """\
            import numpy as np
            rng = np.random.default_rng()
            x = np.random.rand(3)
        """,
    })
    assert codes(lint_fixture(root, "QG002")) == ["QG002", "QG002"]


def test_qg002_allows_seeded_and_rng_module(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/foo.py": """\
            import numpy as np
            rng = np.random.default_rng(np.random.SeedSequence(7))
            other = np.random.default_rng(123)
        """,
        "src/repro/utils/rng.py": """\
            import numpy as np
            fresh = np.random.default_rng()
        """,
    })
    assert codes(lint_fixture(root, "QG002")) == []


def test_qg002_suppression(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/foo.py": """\
            import numpy as np
            rng = np.random.default_rng()  # qugeo-lint: disable=QG002 -- fixture
        """,
    })
    assert codes(lint_fixture(root, "QG002")) == []


# --------------------------------------------------------------------------- #
# QG003 — raw numpy in xm-seamed modules
# --------------------------------------------------------------------------- #
def test_qg003_flags_raw_einsum_in_seamed_module(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/backends/fast.py": """\
            import numpy as np
            def contract(a, b):
                return np.einsum("ij,jk->ik", a, b)
        """,
    })
    assert codes(lint_fixture(root, "QG003")) == ["QG003"]


def test_qg003_ignores_unseamed_modules_and_xm_calls(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/metrics/foo.py": """\
            import numpy as np
            def contract(a, b):
                return np.einsum("ij,jk->ik", a, b)
        """,
        "src/repro/backends/good.py": """\
            def contract(xm, a, b):
                return xm.einsum("ij,jk->ik", a, b)
        """,
    })
    assert codes(lint_fixture(root, "QG003")) == []


def test_qg003_suppression(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/quantum/sim.py": """\
            import numpy as np
            def f(a, b):
                return np.matmul(a, b)  # qugeo-lint: disable=QG003 -- fixture
        """,
    })
    assert codes(lint_fixture(root, "QG003")) == []


# --------------------------------------------------------------------------- #
# QG004 — wall-clock in src
# --------------------------------------------------------------------------- #
def test_qg004_flags_wall_clock(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/foo.py": """\
            import time
            from datetime import datetime
            start = time.time()
            stamp = datetime.utcnow()
        """,
    })
    assert codes(lint_fixture(root, "QG004")) == ["QG004", "QG004"]


def test_qg004_allows_monotonic_and_tz_aware(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/foo.py": """\
            import time
            from datetime import datetime, timezone
            start = time.perf_counter()
            stamp = datetime.now(timezone.utc)
        """,
    })
    assert codes(lint_fixture(root, "QG004")) == []


def test_qg004_suppression(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/foo.py": """\
            import time
            start = time.time()  # qugeo-lint: disable=QG004 -- fixture
        """,
    })
    assert codes(lint_fixture(root, "QG004")) == []


# --------------------------------------------------------------------------- #
# QG005 — swallowed exceptions in fault-tolerance paths
# --------------------------------------------------------------------------- #
def test_qg005_flags_bare_and_pass_handlers(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/robustness/faults.py": """\
            def f():
                try:
                    risky()
                except:
                    recover()
                try:
                    risky()
                except OSError:
                    pass
        """,
    })
    assert codes(lint_fixture(root, "QG005")) == ["QG005", "QG005"]


def test_qg005_ignores_handled_and_out_of_scope(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/robustness/faults.py": """\
            def f(log):
                try:
                    risky()
                except OSError as exc:
                    log.warning("retrying: %s", exc)
        """,
        "src/repro/metrics/foo.py": """\
            def f():
                try:
                    risky()
                except ValueError:
                    pass
        """,
    })
    assert codes(lint_fixture(root, "QG005")) == []


def test_qg005_suppression(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/robustness/faults.py": """\
            def f():
                try:
                    risky()
                except OSError:  # qugeo-lint: disable=QG005 -- fixture
                    pass
        """,
    })
    assert codes(lint_fixture(root, "QG005")) == []


# --------------------------------------------------------------------------- #
# QG006 — registry / parity-test lockstep
# --------------------------------------------------------------------------- #
QG006_REGISTRATIONS = """\
    def register_backend(name, factory):
        pass
    register_backend("numpy", object)
    register_backend("torch", object)
"""


def test_qg006_flags_uncovered_registration(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/backends/__init__.py": QG006_REGISTRATIONS,
        "tests/test_backends.py": """\
            import pytest
            @pytest.mark.parametrize("name", ["numpy"])
            def test_parity(name):
                pass
        """,
    })
    result = lint_fixture(root, "QG006")
    assert codes(result) == ["QG006"]
    assert "torch" in result.findings[0].message


def test_qg006_dynamic_parametrize_covers_all(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/backends/__init__.py": QG006_REGISTRATIONS,
        "tests/test_backends.py": """\
            import pytest
            from repro.backends import available_backends
            @pytest.mark.parametrize("name", available_backends())
            def test_parity(name):
                pass
        """,
    })
    assert codes(lint_fixture(root, "QG006")) == []


def test_qg006_resolver_literal_and_keyword_cover(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/backends/__init__.py": QG006_REGISTRATIONS,
        "tests/test_backends.py": """\
            from repro.backends import get_backend
            def test_numpy():
                get_backend("numpy")
            def test_torch(run):
                run(backend="torch")
        """,
    })
    assert codes(lint_fixture(root, "QG006")) == []


def test_qg006_placeholder_marker_exempts(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/backends/__init__.py": """\
            def register_backend(name, factory):
                pass
            register_backend("numpy", object)
            register_backend("cuda", object)  # qugeo-lint: placeholder -- fixture
        """,
        "tests/test_backends.py": """\
            from repro.backends import get_backend
            def test_numpy():
                get_backend("numpy")
        """,
    })
    assert codes(lint_fixture(root, "QG006")) == []


# --------------------------------------------------------------------------- #
# QG007 — fingerprint hygiene
# --------------------------------------------------------------------------- #
def _qg007_project(tmp_path, *, fields=("alpha", "beta"), version=1):
    field_lines = "\n".join(f"    {name}: int = 0" for name in fields)
    return make_project(tmp_path, {
        "src/repro/data/cfg.py": (
            "from dataclasses import dataclass\n"
            f"FORMAT_VERSION = {version}\n"
            "@dataclass\n"
            "class Config:\n"
            f"{field_lines}\n"
        ),
    })


def _qg007_rule():
    return FingerprintHygieneRule(baselines=(FingerprintBaseline(
        config_class="Config",
        config_module="src/repro/data/cfg.py",
        version_const="FORMAT_VERSION",
        version_module="src/repro/data/cfg.py",
        pinned_version=1,
        pinned_fields=("alpha", "beta"),
    ),))


def test_qg007_clean_when_pin_matches(tmp_path):
    root = _qg007_project(tmp_path)
    assert list(_qg007_rule().check_project(Project(root=root))) == []


def test_qg007_flags_field_change_without_bump(tmp_path):
    root = _qg007_project(tmp_path, fields=("alpha", "beta", "gamma"))
    findings = list(_qg007_rule().check_project(Project(root=root)))
    assert [f.rule for f in findings] == ["QG007"]
    assert "gamma" in findings[0].message
    assert "FORMAT_VERSION" in findings[0].message


def test_qg007_flags_stale_pin_after_bump(tmp_path):
    root = _qg007_project(tmp_path, fields=("alpha", "beta", "gamma"),
                          version=2)
    findings = list(_qg007_rule().check_project(Project(root=root)))
    assert [f.rule for f in findings] == ["QG007"]
    assert "refresh" in findings[0].message


def test_qg007_flags_missing_class(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/data/cfg.py": "FORMAT_VERSION = 1\n",
    })
    findings = list(_qg007_rule().check_project(Project(root=root)))
    assert [f.rule for f in findings] == ["QG007"]
    assert "not found" in findings[0].message


# --------------------------------------------------------------------------- #
# engine / CLI / registry behaviour
# --------------------------------------------------------------------------- #
def test_parse_error_reported_as_qg000(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/foo.py": "def broken(:\n",
    })
    result = lint_paths([root / "src"], project_root=root, select=["QG001"])
    assert codes(result) == ["QG000"]


def test_suppression_parser_rationale_and_all():
    comments = scan_comments(
        'x = 1  # qugeo-lint: disable=QG001,QG003 -- why\n'
        'y = 2  # qugeo-lint: disable=all\n'
        's = "# qugeo-lint: disable=QG001"\n')
    suppressions = parse_suppressions(comments)
    assert suppressions == {1: {"QG001", "QG003"}, 2: {"ALL"}}


def test_select_and_ignore(tmp_path):
    root = make_project(tmp_path, {
        "src/repro/foo.py": """\
            import os
            import time
            os.environ["X"] = "y"
            start = time.time()
        """,
    })
    assert codes(lint_paths([root / "src"], project_root=root,
                            select=["QG001"])) == ["QG001"]
    assert codes(lint_paths([root / "src"], project_root=root,
                            select=["QG001", "QG004"],
                            ignore=["env-access"])) == ["QG004"]


def test_unknown_rule_raises():
    with pytest.raises(UnknownRuleError):
        resolve_rules(["QG999"], None)


def test_registry_register_unregister():
    class FixtureRule(Rule):
        code = "ZZ901"
        name = "fixture-rule"
        description = "fixture"

    register_rule(FixtureRule())
    try:
        assert "ZZ901" in available_rules()
        assert get_rule("fixture-rule").code == "ZZ901"
        with pytest.raises(DuplicateRuleError):
            register_rule(FixtureRule())
    finally:
        unregister_rule("ZZ901")
    assert "ZZ901" not in available_rules()


def test_cli_json_schema(tmp_path, capsys):
    root = make_project(tmp_path, {
        "src/repro/foo.py": """\
            import os
            os.environ["X"] = "y"
        """,
    })
    exit_code = cli_main([str(root / "src"), "--project-root", str(root),
                          "--select", "QG001", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    assert set(payload["summary"]) == {"findings", "by_rule"}
    assert payload["summary"]["by_rule"] == {"QG001": 1}
    (finding,) = payload["findings"]
    assert set(finding) == {"path", "line", "col", "rule", "message"}
    assert finding["rule"] == "QG001"
    assert finding["path"] == "src/repro/foo.py"


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    root = make_project(tmp_path, {"src/repro/foo.py": "x = 1\n"})
    exit_code = cli_main([str(root / "src"), "--project-root", str(root),
                          "--ignore", "QG007"])
    assert exit_code == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_unknown_rule_exits_two(tmp_path, capsys):
    root = make_project(tmp_path, {"src/repro/foo.py": "x = 1\n"})
    exit_code = cli_main([str(root / "src"), "--select", "QG999",
                          "--project-root", str(root)])
    assert exit_code == 2
    assert "QG999" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("QG001", "QG007"):
        assert code in out


def test_findings_sort_and_format():
    a = Finding(path="a.py", line=2, col=0, rule="QG001", message="m")
    b = Finding(path="a.py", line=10, col=0, rule="QG002", message="m")
    assert sorted([b, a]) == [a, b]
    assert a.format() == "a.py:2:0: QG001 m"


# --------------------------------------------------------------------------- #
# the real tree must lint clean — the same gate CI enforces
# --------------------------------------------------------------------------- #
def test_repository_tree_has_zero_findings():
    result = lint_paths(project_root=REPO_ROOT)
    assert result.findings == [], "\n".join(
        finding.format() for finding in result.findings)
    assert len(result.files) > 100
    assert result.rules == [
        "QG001", "QG002", "QG003", "QG004", "QG005", "QG006", "QG007"]
