"""Tests for the unified training engine.

Covers the engine's pluggable pieces (step-strategy selection, callbacks),
checkpoint/resume bit-identity for all three model families, state_dict
round trips for optimisers, schedulers, scalers and the logger, bounded
evaluation chunking, and pipeline save/load serving.
"""

import numpy as np
import pytest

from repro.core import (
    BestModelTracker,
    Callback,
    Checkpoint,
    EarlyStopping,
    EvalCallback,
    QuBatchVQC,
    QuGeo,
    QuGeoConfig,
    QuGeoVQC,
    Trainer,
    build_cnn_ly,
    predict_in_batches,
    select_step_strategy,
)
from repro.core.config import (
    QuGeoDataConfig,
    QuGeoVQCConfig,
    TrainingConfig,
    config_from_dict,
    config_to_dict,
)
from repro.core.data_scaling import (
    CNNScaler,
    DSampleScaler,
    ForwardModelingScaler,
    scaler_from_state,
    scaler_state,
)
from repro.core.training import (
    ClassicalAutogradStep,
    QuantumBatchedAdjointStep,
    QuantumPerSampleStep,
    QuBatchStep,
)
from repro.data.dataset import train_test_split
from repro.nn import SGD, Adam, CosineAnnealingLR, Linear, ReLU, Sequential, Tensor
from repro.utils.logging import RunLogger
from repro.utils.serialization import load_checkpoint, save_checkpoint


def _vqc_config(decoder="layer", n_batch_qubits=0):
    return QuGeoVQCConfig(n_groups=1, qubits_per_group=6, n_blocks=2,
                          decoder=decoder, output_shape=(6, 6),
                          n_batch_qubits=n_batch_qubits)


def _training_config(epochs=6, **overrides):
    defaults = dict(epochs=epochs, learning_rate=0.1, batch_size=3,
                    eval_every=3, seed=0)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


MODEL_BUILDERS = {
    "quantum": lambda: QuGeoVQC(_vqc_config("layer"), rng=0),
    "qubatch": lambda: QuBatchVQC(_vqc_config("layer", n_batch_qubits=1), rng=0),
    "classical": lambda: build_cnn_ly(64, (6, 6), rng=0),
}


class StopAfter(Callback):
    """Deterministically interrupt a run after a given epoch (for tests)."""

    def __init__(self, epoch):
        self.epoch = int(epoch)

    def on_epoch_logged(self, state):
        if state.epoch >= self.epoch:
            state.stop_training = True
            state.stop_reason = "test interruption"


class TestStrategySelection:
    def test_families_map_to_strategies(self):
        assert isinstance(select_step_strategy(MODEL_BUILDERS["qubatch"]()),
                          QuBatchStep)
        assert isinstance(select_step_strategy(MODEL_BUILDERS["classical"]()),
                          ClassicalAutogradStep)
        quantum = MODEL_BUILDERS["quantum"]()
        strategy = select_step_strategy(quantum)
        if quantum.backend.capabilities.batched_adjoint:
            assert isinstance(strategy, QuantumBatchedAdjointStep)
        else:
            assert isinstance(strategy, QuantumPerSampleStep)

    def test_unknown_model_rejected_with_clear_error(self):
        class ProtocolOnlyModel:
            def parameter_tensors(self):
                return (Tensor(np.zeros(3), requires_grad=True),)

            def predict_batch(self, seismic_batch):
                return np.zeros((len(seismic_batch), 6, 6))

            def state_dict(self):
                return {}

            def load_state_dict(self, state):
                pass

        with pytest.raises(TypeError, match="no step strategy"):
            select_step_strategy(ProtocolOnlyModel())

    def test_per_sample_strategy_matches_batched(self, tiny_scaled_dataset):
        """The engine produces the same trajectory under either quantum path."""
        results = []
        for strategy in (None, QuantumPerSampleStep()):
            model = MODEL_BUILDERS["quantum"]()
            trainer = Trainer(_training_config(epochs=3), strategy=strategy)
            results.append(trainer.train(model, tiny_scaled_dataset))
        np.testing.assert_allclose(results[0].history("train_loss"),
                                   results[1].history("train_loss"),
                                   rtol=1e-8)


@pytest.mark.parametrize("family", sorted(MODEL_BUILDERS))
class TestCheckpointResume:
    def test_resumed_trajectory_matches_uninterrupted(self, family,
                                                      tiny_scaled_dataset,
                                                      tmp_path):
        """Save at epoch k, resume, and reproduce the full run exactly."""
        build = MODEL_BUILDERS[family]
        config = _training_config(epochs=6)
        path = str(tmp_path / f"{family}.ckpt")

        reference = build()
        full = Trainer(config).train(reference, tiny_scaled_dataset,
                                     tiny_scaled_dataset)

        interrupted = build()
        Trainer(config).train(interrupted, tiny_scaled_dataset,
                              tiny_scaled_dataset,
                              callbacks=[Checkpoint(path, every=3),
                                         StopAfter(2)])

        resumed_model = build()
        resumed = Trainer(config).train(resumed_model, tiny_scaled_dataset,
                                        tiny_scaled_dataset,
                                        resume_from=path)

        # Exact (not approximate) equality: the checkpoint restores model,
        # optimiser moments, scheduler position and the shuffle generator.
        assert resumed.history("train_loss") == full.history("train_loss")
        assert resumed.history("lr") == full.history("lr")
        assert resumed.final_metrics == full.final_metrics
        for reference_param, resumed_param in zip(
                reference.parameter_tensors(),
                resumed_model.parameter_tensors()):
            np.testing.assert_array_equal(reference_param.data,
                                          resumed_param.data)

    def test_model_state_roundtrip(self, family, tiny_scaled_dataset):
        build = MODEL_BUILDERS[family]
        trained = build()
        Trainer(_training_config(epochs=2)).train(trained, tiny_scaled_dataset)
        fresh = build()
        fresh.load_state_dict(trained.state_dict())
        seismic = np.stack([sample.seismic.reshape(-1)
                            for sample in tiny_scaled_dataset])
        np.testing.assert_array_equal(predict_in_batches(trained, seismic),
                                      predict_in_batches(fresh, seismic))


class TestCheckpointValidation:
    def test_wrong_model_class_rejected(self, tiny_scaled_dataset, tmp_path):
        path = str(tmp_path / "quantum.ckpt")
        model = MODEL_BUILDERS["quantum"]()
        Trainer(_training_config(epochs=3)).train(
            model, tiny_scaled_dataset, callbacks=[Checkpoint(path, every=3)])
        with pytest.raises(ValueError, match="cannot resume"):
            Trainer(_training_config(epochs=3)).train(
                MODEL_BUILDERS["classical"](), tiny_scaled_dataset,
                resume_from=path)

    def test_mismatched_training_config_rejected(self, tiny_scaled_dataset,
                                                 tmp_path):
        path = str(tmp_path / "quantum.ckpt")
        model = MODEL_BUILDERS["quantum"]()
        Trainer(_training_config(epochs=6)).train(
            model, tiny_scaled_dataset,
            callbacks=[Checkpoint(path, every=3), StopAfter(2)])
        with pytest.raises(ValueError, match="seed"):
            Trainer(_training_config(epochs=6, seed=123)).train(
                MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
                resume_from=path)

    def test_unknown_version_rejected(self, tiny_scaled_dataset, tmp_path):
        path = str(tmp_path / "bad.ckpt")
        save_checkpoint(path, {"version": 999})
        with pytest.raises(ValueError, match="version"):
            Trainer(_training_config(epochs=2)).train(
                MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
                resume_from=path)

    def test_mismatched_dataset_size_rejected(self, tiny_scaled_dataset,
                                              tmp_path):
        path = str(tmp_path / "quantum.ckpt")
        config = _training_config(epochs=6)
        Trainer(config).train(MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
                              callbacks=[Checkpoint(path, every=3),
                                         StopAfter(2)])
        with pytest.raises(ValueError, match="training samples"):
            Trainer(config).train(MODEL_BUILDERS["quantum"](),
                                  tiny_scaled_dataset[:4], resume_from=path)

    def test_reordered_training_samples_rejected(self, tiny_scaled_dataset,
                                                 tmp_path):
        """Same samples in a different order change what the restored
        shuffle indices select — the fingerprint must catch that too."""
        from repro.data.dataset import FWIDataset

        path = str(tmp_path / "ordered.ckpt")
        config = _training_config(epochs=6)
        Trainer(config).train(MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
                              callbacks=[Checkpoint(path, every=3),
                                         StopAfter(2)])
        reordered = FWIDataset(list(tiny_scaled_dataset)[::-1],
                               name="reordered")
        with pytest.raises(ValueError, match="training samples"):
            Trainer(config).train(MODEL_BUILDERS["quantum"](), reordered,
                                  resume_from=path)

    def test_changed_callback_tunables_warn(self, tiny_scaled_dataset,
                                            tmp_path):
        """A resumed EarlyStopping with a different patience must not
        silently claim the old counter state."""
        path = str(tmp_path / "tunables.ckpt")
        config = _training_config(epochs=6)
        Trainer(config).train(
            MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
            callbacks=[EarlyStopping(monitor="train_loss", patience=50),
                       Checkpoint(path, every=3), StopAfter(2)])
        relaxed = EarlyStopping(monitor="train_loss", patience=2)
        with pytest.warns(UserWarning, match="EarlyStopping"):
            Trainer(config).train(MODEL_BUILDERS["quantum"](),
                                  tiny_scaled_dataset, callbacks=[relaxed],
                                  resume_from=path)

    def test_train_end_save_skipped_after_best_restore(self,
                                                       tiny_scaled_dataset,
                                                       tmp_path):
        """A best-restored model mixed with final-epoch optimiser state is
        not a trajectory point and must not be written as resumable."""
        path = tmp_path / "mixed.ckpt"
        tracker = BestModelTracker(monitor="train_loss", restore_best=True)
        Trainer(_training_config(epochs=4)).train(
            MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
            callbacks=[tracker,
                       Checkpoint(str(path), every=100,
                                  save_on_train_end=True)])
        assert not path.exists()

    def test_eval_callback_validates_arguments(self):
        with pytest.raises(ValueError):
            EvalCallback(every=0)
        with pytest.raises(ValueError):
            EvalCallback(batch_size=0)

    def test_zero_epoch_resume_does_not_rewind_checkpoint(
            self, tiny_scaled_dataset, tmp_path):
        """Regression: resuming a finished run with save_on_train_end must
        re-record the restored epoch, not rewind the file to epoch 1."""
        path = str(tmp_path / "finished.ckpt")
        config = _training_config(epochs=3)
        model = MODEL_BUILDERS["quantum"]()
        Trainer(config).train(model, tiny_scaled_dataset,
                              callbacks=[Checkpoint(path, every=1)])
        assert load_checkpoint(path)["epoch"] == 3
        resumed = Trainer(config).train(
            MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
            callbacks=[Checkpoint(path, save_on_train_end=True)],
            resume_from=path)
        assert load_checkpoint(path)["epoch"] == 3
        assert len(resumed.history("train_loss")) == 3

    def test_checkpoint_file_roundtrip(self, tmp_path):
        payload = {"version": 1, "array": np.arange(4.0), "nested": {"x": 2}}
        path = tmp_path / "deep" / "file.ckpt"
        save_checkpoint(path, payload)
        loaded = load_checkpoint(path)
        assert loaded["nested"] == {"x": 2}
        np.testing.assert_array_equal(loaded["array"], payload["array"])


class NanAfter(ClassicalAutogradStep):
    """Step strategy that poisons one batch's loss (for the NaN guard)."""

    def __init__(self, fail_on_call, value=float("nan")):
        super().__init__()
        self.fail_on_call = int(fail_on_call)
        self.value = value
        self.calls = 0

    def step(self, model, seismic, velocity):
        self.calls += 1
        if self.calls == self.fail_on_call:
            return self.value
        return super().step(model, seismic, velocity)


class TestNanLossGuard:
    def test_stop_policy_halts_with_nan_loss_flag(self, tiny_scaled_dataset):
        model = MODEL_BUILDERS["classical"]()
        result = Trainer(_training_config(epochs=6),
                         strategy=NanAfter(fail_on_call=3)).train(
            model, tiny_scaled_dataset)
        # the run ends in the epoch that produced the NaN, not at epochs=6
        train_loss = result.history("train_loss")
        assert len(train_loss) < 6
        assert np.isnan(train_loss[-1])
        assert result.history("nan_loss") == [1.0]
        # final metrics still describe a usable (finite) model: the guard
        # fires before the poisoned optimiser update
        assert all(np.isfinite(tensor.data).all()
                   for tensor in model.parameter_tensors())

    def test_inf_loss_also_trips_the_guard(self, tiny_scaled_dataset):
        result = Trainer(_training_config(epochs=4),
                         strategy=NanAfter(1, value=float("inf"))).train(
            MODEL_BUILDERS["classical"](), tiny_scaled_dataset)
        assert result.history("nan_loss") == [1.0]
        assert len(result.history("train_loss")) == 1

    def test_raise_policy_surfaces_the_batch(self, tiny_scaled_dataset):
        config = _training_config(epochs=4, nan_policy="raise")
        with pytest.raises(FloatingPointError, match="non-finite loss"):
            Trainer(config, strategy=NanAfter(2)).train(
                MODEL_BUILDERS["classical"](), tiny_scaled_dataset)

    def test_clean_run_has_no_nan_loss_history(self, tiny_scaled_dataset):
        result = Trainer(_training_config(epochs=2)).train(
            MODEL_BUILDERS["classical"](), tiny_scaled_dataset)
        assert result.history("nan_loss") == []
        assert all(np.isfinite(v) for v in result.history("train_loss"))

    def test_invalid_nan_policy_rejected(self):
        with pytest.raises(ValueError, match="nan_policy"):
            _training_config(nan_policy="ignore")


class TestCheckpointCorruptionRecovery:
    """A damaged checkpoint costs retraining time, never a crash."""

    def _interrupted_run(self, tiny_scaled_dataset, tmp_path, every=2):
        path = str(tmp_path / "run.ckpt")
        config = _training_config(epochs=6)
        Trainer(config).train(MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
                              callbacks=[Checkpoint(path, every=every),
                                         StopAfter(3)])
        return path, config

    def test_backup_rotated_next_to_checkpoint(self, tiny_scaled_dataset,
                                               tmp_path):
        import os
        path, _ = self._interrupted_run(tiny_scaled_dataset, tmp_path)
        assert os.path.exists(path)
        assert os.path.exists(path + ".bak")
        # primary holds epoch 4 (saved after epoch index 3), backup epoch 2
        assert load_checkpoint(path)["epoch"] == 4
        assert load_checkpoint(path + ".bak")["epoch"] == 2

    def test_truncated_checkpoint_falls_back_to_last_good(
            self, tiny_scaled_dataset, tmp_path):
        from pathlib import Path
        path, config = self._interrupted_run(tiny_scaled_dataset, tmp_path)
        full = Trainer(config).train(MODEL_BUILDERS["quantum"](),
                                     tiny_scaled_dataset)
        file = Path(path)
        file.write_bytes(file.read_bytes()[:20])
        with pytest.warns(UserWarning, match="resuming from last-good"):
            resumed = Trainer(config).train(MODEL_BUILDERS["quantum"](),
                                            tiny_scaled_dataset,
                                            resume_from=path)
        # the .bak snapshot restores exactly, so the trajectory still
        # matches the uninterrupted run bit for bit
        assert resumed.history("train_loss") == full.history("train_loss")

    def test_digest_mismatch_falls_back_to_last_good(self,
                                                     tiny_scaled_dataset,
                                                     tmp_path):
        import pickle
        from pathlib import Path
        path, config = self._interrupted_run(tiny_scaled_dataset, tmp_path)
        full = Trainer(config).train(MODEL_BUILDERS["quantum"](),
                                     tiny_scaled_dataset)
        file = Path(path)
        envelope = pickle.loads(file.read_bytes())
        envelope["payload"] = envelope["payload"][:-1] + bytes(
            [envelope["payload"][-1] ^ 0xFF])
        file.write_bytes(pickle.dumps(envelope))
        with pytest.raises(Exception, match="integrity digest"):
            load_checkpoint(path)
        with pytest.warns(UserWarning, match="resuming from last-good"):
            resumed = Trainer(config).train(MODEL_BUILDERS["quantum"](),
                                            tiny_scaled_dataset,
                                            resume_from=path)
        assert resumed.history("train_loss") == full.history("train_loss")

    def test_missing_checkpoint_starts_fresh_with_warning(
            self, tiny_scaled_dataset, tmp_path):
        config = _training_config(epochs=3)
        fresh = Trainer(config).train(MODEL_BUILDERS["quantum"](),
                                      tiny_scaled_dataset)
        with pytest.warns(UserWarning, match="starting fresh"):
            recovered = Trainer(config).train(
                MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
                resume_from=str(tmp_path / "never-written.ckpt"))
        assert recovered.history("train_loss") == fresh.history("train_loss")

    def test_both_candidates_damaged_starts_fresh(self, tiny_scaled_dataset,
                                                  tmp_path):
        from pathlib import Path
        path, config = self._interrupted_run(tiny_scaled_dataset, tmp_path)
        fresh = Trainer(config).train(MODEL_BUILDERS["quantum"](),
                                      tiny_scaled_dataset)
        Path(path).write_bytes(b"garbage")
        Path(path + ".bak").write_bytes(b"")
        with pytest.warns(UserWarning, match="starting fresh"):
            recovered = Trainer(config).train(
                MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
                resume_from=path)
        assert recovered.history("train_loss") == fresh.history("train_loss")

    def test_legacy_raw_pickle_checkpoint_still_loads(self, tmp_path):
        import pickle
        path = tmp_path / "legacy.ckpt"
        payload = {"version": 1, "epoch": 2}
        path.write_bytes(pickle.dumps(payload))
        assert load_checkpoint(path) == payload


class TestCallbacks:
    def test_final_epoch_evaluates_once(self, tiny_scaled_dataset):
        """Regression: final_metrics must reuse the last epoch's evaluation."""
        model = MODEL_BUILDERS["quantum"]()
        calls = {"count": 0}
        original = model.predict_batch

        def counting_predict(batch):
            calls["count"] += 1
            return original(batch)

        model.predict_batch = counting_predict
        config = _training_config(epochs=4, eval_every=2, eval_batch_size=None)
        Trainer(config).train(model, tiny_scaled_dataset, tiny_scaled_dataset)
        # Evaluations: epoch 1 (cadence) and epoch 3 (final) — the final
        # metrics reuse the epoch-3 evaluation instead of a third pass.
        assert calls["count"] == 2

    def test_early_stopping_halts_training(self, tiny_scaled_dataset):
        model = MODEL_BUILDERS["quantum"]()
        stopper = EarlyStopping(monitor="train_loss", patience=1,
                                min_delta=10.0)  # nothing can improve by 10
        result = Trainer(_training_config(epochs=10)).train(
            model, tiny_scaled_dataset, callbacks=[stopper])
        assert stopper.stopped_epoch is not None
        assert len(result.history("train_loss")) < 10

    def test_best_model_tracker_restores_best(self, tiny_scaled_dataset):
        model = MODEL_BUILDERS["quantum"]()
        tracker = BestModelTracker(monitor="train_loss", restore_best=True)
        result = Trainer(_training_config(epochs=4)).train(
            model, tiny_scaled_dataset, callbacks=[tracker])
        losses = result.history("train_loss")
        assert tracker.best_epoch == int(np.argmin(losses))
        assert tracker.best_value == pytest.approx(min(losses))
        np.testing.assert_array_equal(model.theta.data,
                                      tracker.best_state["theta"])

    def test_eval_cadence_controls_metric_history(self, tiny_scaled_dataset):
        model = MODEL_BUILDERS["quantum"]()
        result = Trainer(_training_config(epochs=6, eval_every=3)).train(
            model, tiny_scaled_dataset, tiny_scaled_dataset)
        # Epochs 2 and 5 hit the cadence; epoch 5 is also the final epoch.
        assert result.logger.steps("test_ssim") == [2, 5]

    def test_custom_eval_callback_cadence_wins(self, tiny_scaled_dataset):
        model = MODEL_BUILDERS["quantum"]()
        result = Trainer(_training_config(epochs=4, eval_every=1)).train(
            model, tiny_scaled_dataset, tiny_scaled_dataset,
            callbacks=[EvalCallback(every=2)])
        assert result.logger.steps("test_ssim") == [1, 3]

    def test_callbacks_reset_between_runs(self, tiny_scaled_dataset):
        """Reusing one callback list across runs must not leak state."""
        stopper = EarlyStopping(monitor="train_loss", patience=1,
                                min_delta=10.0)
        tracker = BestModelTracker(monitor="train_loss")
        evaluator = EvalCallback()
        callbacks = [evaluator, stopper, tracker]
        histories = []
        for _ in range(2):
            model = MODEL_BUILDERS["quantum"]()
            result = Trainer(_training_config(epochs=4)).train(
                model, tiny_scaled_dataset, tiny_scaled_dataset,
                callbacks=callbacks)
            histories.append(result.history("train_loss"))
        # Identical seeds + a clean reset -> the two runs behave identically
        # (a stale EarlyStopping counter would truncate the second run).
        assert histories[0] == histories[1]
        assert tracker.best_epoch is not None

    def test_stateful_callbacks_resume_from_checkpoint(self,
                                                       tiny_scaled_dataset,
                                                       tmp_path):
        """Patience counters and best-model state survive a resume."""
        path = str(tmp_path / "cb.ckpt")
        config = _training_config(epochs=6)

        def callbacks():
            return [EarlyStopping(monitor="train_loss", patience=50),
                    BestModelTracker(monitor="train_loss")]

        full_model = MODEL_BUILDERS["quantum"]()
        full_callbacks = callbacks()
        Trainer(config).train(full_model, tiny_scaled_dataset,
                              callbacks=full_callbacks)

        interrupted = callbacks()
        Trainer(config).train(MODEL_BUILDERS["quantum"](),
                              tiny_scaled_dataset,
                              callbacks=interrupted + [Checkpoint(path, every=3),
                                                       StopAfter(2)])
        resumed = callbacks()
        Trainer(config).train(MODEL_BUILDERS["quantum"](),
                              tiny_scaled_dataset,
                              callbacks=resumed, resume_from=path)
        assert resumed[1].best_epoch == full_callbacks[1].best_epoch
        assert resumed[1].best_value == full_callbacks[1].best_value
        assert resumed[0].best == full_callbacks[0].best
        assert resumed[0].wait == full_callbacks[0].wait

    def test_checkpoint_listed_first_still_saves_fresh_callback_state(
            self, tiny_scaled_dataset, tmp_path):
        """Regression: Checkpoint hooks run after other callbacks, so the
        snapshot holds this epoch's patience counter even when the caller
        lists Checkpoint first."""
        path = str(tmp_path / "order.ckpt")
        config = _training_config(epochs=8)

        def stopper():
            # min_delta too large to ever improve -> wait grows every epoch.
            return EarlyStopping(monitor="train_loss", patience=4,
                                 min_delta=10.0)

        full_stopper = stopper()
        full = Trainer(config).train(MODEL_BUILDERS["quantum"](),
                                     tiny_scaled_dataset,
                                     callbacks=[full_stopper])

        interrupted = stopper()
        Trainer(config).train(
            MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
            callbacks=[Checkpoint(path, every=1), interrupted, StopAfter(1)])
        resumed_stopper = stopper()
        resumed = Trainer(config).train(
            MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
            callbacks=[Checkpoint(str(tmp_path / "unused.ckpt"), every=1),
                       resumed_stopper],
            resume_from=path)
        assert resumed.history("train_loss") == full.history("train_loss")
        assert resumed_stopper.stopped_epoch == full_stopper.stopped_epoch

    def test_resume_from_stopped_run_stays_stopped(self, tiny_scaled_dataset,
                                                   tmp_path):
        """Regression: a checkpoint written at an early-stop epoch must not
        train further on resume."""
        path = str(tmp_path / "stopped.ckpt")
        config = _training_config(epochs=8)

        def stopper():
            return EarlyStopping(monitor="train_loss", patience=1,
                                 min_delta=10.0)

        reference_model = MODEL_BUILDERS["quantum"]()
        reference = Trainer(config).train(
            reference_model, tiny_scaled_dataset, callbacks=[stopper()])

        stopped_model = MODEL_BUILDERS["quantum"]()
        Trainer(config).train(stopped_model, tiny_scaled_dataset,
                              callbacks=[stopper(),
                                         Checkpoint(path, every=1)])
        resumed_model = MODEL_BUILDERS["quantum"]()
        resumed = Trainer(config).train(resumed_model, tiny_scaled_dataset,
                                        callbacks=[stopper()],
                                        resume_from=path)
        assert resumed.history("train_loss") == reference.history("train_loss")
        np.testing.assert_array_equal(resumed_model.theta.data,
                                      reference_model.theta.data)

    def test_callback_state_resumes_across_reordering(self,
                                                      tiny_scaled_dataset,
                                                      tmp_path):
        """Saved callback state pairs by class, not list position."""
        path = str(tmp_path / "reorder.ckpt")
        config = _training_config(epochs=6)
        stopper = EarlyStopping(monitor="train_loss", patience=50)
        Trainer(config).train(MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
                              callbacks=[stopper, Checkpoint(path, every=3),
                                         StopAfter(2)])
        resumed_stopper = EarlyStopping(monitor="train_loss", patience=50)
        Trainer(config).train(
            MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
            callbacks=[Checkpoint(str(tmp_path / "other.ckpt"), every=3),
                       resumed_stopper],
            resume_from=path)
        # The stopper claimed its saved state although its position moved.
        assert resumed_stopper.best is not None

    def test_same_class_callbacks_pair_by_monitor(self, tiny_scaled_dataset,
                                                  tmp_path):
        """Two EarlyStopping instances must reclaim their own state after a
        reorder, not swap patience counters."""
        path = str(tmp_path / "two-stoppers.ckpt")
        config = _training_config(epochs=6, eval_every=1)

        def stoppers():
            return {"loss": EarlyStopping(monitor="train_loss", patience=50),
                    "ssim": EarlyStopping(monitor="test_ssim", mode="max",
                                          patience=50)}

        original = stoppers()
        Trainer(config).train(
            MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
            tiny_scaled_dataset,
            callbacks=[original["loss"], original["ssim"],
                       Checkpoint(path, every=3), StopAfter(2)])
        resumed = stoppers()
        Trainer(config).train(
            MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
            tiny_scaled_dataset,
            callbacks=[resumed["ssim"], resumed["loss"]],  # reversed order
            resume_from=path)
        # train_loss decreases (min mode) while test_ssim grows (max mode);
        # crossed state would hand each stopper the other's best value.
        full = stoppers()
        Trainer(config).train(MODEL_BUILDERS["quantum"](),
                              tiny_scaled_dataset, tiny_scaled_dataset,
                              callbacks=[full["loss"], full["ssim"]])
        assert resumed["loss"].best == full["loss"].best
        assert resumed["ssim"].best == full["ssim"].best

    def test_resume_finished_run_rescoring_new_test_set(self,
                                                        tiny_scaled_dataset,
                                                        tmp_path):
        """Resuming a finished run against a different test split must not
        serve the old split's cached metrics."""
        from repro.core import evaluate_model

        path = str(tmp_path / "finished-eval.ckpt")
        config = _training_config(epochs=3)
        model = MODEL_BUILDERS["quantum"]()
        Trainer(config).train(model, tiny_scaled_dataset, tiny_scaled_dataset,
                              callbacks=[Checkpoint(path, every=1)])
        other_split = tiny_scaled_dataset[:3]
        rescored = Trainer(config).train(
            MODEL_BUILDERS["quantum"](), tiny_scaled_dataset, other_split,
            resume_from=path)
        expected = evaluate_model(model, other_split)
        assert rescored.final_metrics["test_ssim"] == pytest.approx(
            expected["ssim"])
        assert rescored.final_metrics["test_mse"] == pytest.approx(
            expected["mse"])

    def test_orphaned_callback_state_warns(self, tiny_scaled_dataset,
                                           tmp_path):
        path = str(tmp_path / "orphan.ckpt")
        config = _training_config(epochs=6)
        Trainer(config).train(
            MODEL_BUILDERS["quantum"](), tiny_scaled_dataset,
            callbacks=[EarlyStopping(monitor="train_loss", patience=50),
                       Checkpoint(path, every=3), StopAfter(2)])
        with pytest.warns(UserWarning, match="EarlyStopping"):
            Trainer(config).train(MODEL_BUILDERS["quantum"](),
                                  tiny_scaled_dataset, resume_from=path)

    def test_restore_best_final_metrics_describe_returned_model(
            self, tiny_scaled_dataset):
        """Regression: final_metrics must score the restored-best weights."""
        from repro.core import evaluate_model

        tracker = BestModelTracker(monitor="train_loss", restore_best=True)
        model = MODEL_BUILDERS["quantum"]()
        result = Trainer(_training_config(epochs=4)).train(
            model, tiny_scaled_dataset, tiny_scaled_dataset,
            callbacks=[tracker])
        rescored = evaluate_model(model, tiny_scaled_dataset)
        assert result.final_metrics["test_ssim"] == pytest.approx(
            rescored["ssim"])
        assert result.final_metrics["test_mse"] == pytest.approx(
            rescored["mse"])


class TestEvaluationChunking:
    def test_eval_batch_size_does_not_change_metrics(self, tiny_scaled_dataset):
        results = []
        for eval_batch_size in (None, 2):
            model = MODEL_BUILDERS["quantum"]()
            config = _training_config(epochs=2,
                                      eval_batch_size=eval_batch_size)
            results.append(Trainer(config).train(
                model, tiny_scaled_dataset, tiny_scaled_dataset).final_metrics)
        assert results[0] == pytest.approx(results[1])

    def test_predict_in_batches_matches_single_pass(self, tiny_scaled_dataset):
        seismic = np.stack([sample.seismic.reshape(-1)
                            for sample in tiny_scaled_dataset])
        for family in sorted(MODEL_BUILDERS):
            model = MODEL_BUILDERS[family]()
            full = predict_in_batches(model, seismic)
            chunked = predict_in_batches(model, seismic, batch_size=2)
            np.testing.assert_allclose(chunked, full, atol=1e-12)

    def test_empty_evaluation_rejected(self):
        with pytest.raises(ValueError):
            predict_in_batches(MODEL_BUILDERS["classical"](), np.zeros((0, 64)))


class TestOptimizerSchedulerState:
    def _network(self):
        return Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))

    def _train_steps(self, network, optimizer, steps, rng_seed=3):
        rng = np.random.default_rng(rng_seed)
        for _ in range(steps):
            optimizer.zero_grad()
            inputs = Tensor(rng.normal(size=(5, 4)))
            loss = (network(inputs) ** 2).sum()
            loss.backward()
            optimizer.step()

    @pytest.mark.parametrize("optimizer_cls", [Adam, SGD])
    def test_optimizer_state_roundtrip_continues_identically(self,
                                                             optimizer_cls):
        kwargs = {"momentum": 0.9} if optimizer_cls is SGD else {}
        network_a = self._network()
        optimizer_a = optimizer_cls(network_a.parameters(), lr=0.05, **kwargs)
        self._train_steps(network_a, optimizer_a, steps=3)

        network_b = self._network()
        network_b.load_state_dict(network_a.state_dict())
        optimizer_b = optimizer_cls(network_b.parameters(), lr=0.05, **kwargs)
        optimizer_b.load_state_dict(optimizer_a.state_dict())

        # Same data stream from here on -> identical updates only if the
        # moment buffers and step counts were restored exactly.
        self._train_steps(network_a, optimizer_a, steps=2, rng_seed=11)
        self._train_steps(network_b, optimizer_b, steps=2, rng_seed=11)
        for name, param in network_a.named_parameters():
            np.testing.assert_array_equal(
                param.data, dict(network_b.named_parameters())[name].data)

    def test_optimizer_rejects_mismatched_state(self):
        network = self._network()
        optimizer = Adam(network.parameters(), lr=0.05)
        state = optimizer.state_dict()
        state["m"] = state["m"][:-1]
        with pytest.raises(ValueError):
            optimizer.load_state_dict(state)

    def test_scheduler_state_roundtrip(self):
        network = self._network()
        optimizer = Adam(network.parameters(), lr=0.1)
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=1e-3)
        for _ in range(4):
            scheduler.step()
        resumed_optimizer = Adam(self._network().parameters(), lr=0.1)
        resumed_optimizer.load_state_dict(optimizer.state_dict())
        resumed = CosineAnnealingLR(resumed_optimizer, t_max=10, eta_min=1e-3)
        resumed.load_state_dict(scheduler.state_dict())
        assert resumed.step() == scheduler.step()
        assert resumed.last_epoch == scheduler.last_epoch


class TestLoggerState:
    def test_history_roundtrip(self):
        logger = RunLogger(name="run-a")
        logger.log(0, train_loss=1.0, lr=0.1)
        logger.log(1, train_loss=0.5, lr=0.09, test_ssim=0.8)
        clone = RunLogger(name="other")
        clone.load_state_dict(logger.state_dict())
        assert clone.name == "run-a"
        assert clone.as_dict() == logger.as_dict()
        assert clone.steps("test_ssim") == [1]


class TestScalerState:
    def test_dsample_roundtrip(self, small_data_config, tiny_dataset):
        scaler = DSampleScaler(small_data_config)
        rebuilt = scaler_from_state(scaler_state(scaler), small_data_config)
        np.testing.assert_array_equal(
            rebuilt.scale_sample(tiny_dataset[0]).seismic,
            scaler.scale_sample(tiny_dataset[0]).seismic)

    def test_forward_modeling_roundtrip(self, small_data_config, tiny_dataset):
        scaler = ForwardModelingScaler(small_data_config,
                                       simulation_shape=(16, 16),
                                       simulation_steps=64)
        rebuilt = scaler_from_state(scaler_state(scaler), small_data_config)
        assert rebuilt.simulation_shape == (16, 16)
        assert rebuilt.simulation_steps == 64
        np.testing.assert_array_equal(
            rebuilt.scale_sample(tiny_dataset[0]).seismic,
            scaler.scale_sample(tiny_dataset[0]).seismic)

    def test_cnn_scaler_roundtrip(self, small_data_config, tiny_dataset):
        reference = ForwardModelingScaler(small_data_config,
                                          simulation_shape=(16, 16),
                                          simulation_steps=64)
        scaler = CNNScaler.train(tiny_dataset[:3], config=small_data_config,
                                 reference_scaler=reference, epochs=2, rng=0)
        rebuilt = scaler_from_state(scaler_state(scaler), small_data_config)
        np.testing.assert_array_equal(
            rebuilt.scale_sample(tiny_dataset[0]).seismic,
            scaler.scale_sample(tiny_dataset[0]).seismic)

    def test_unknown_method_rejected(self, small_data_config):
        with pytest.raises(ValueError):
            scaler_from_state({"method": "bogus", "state": {}},
                              small_data_config)


class TestConfigSerialization:
    def test_roundtrip(self):
        config = QuGeoConfig(
            data=QuGeoDataConfig(scaled_seismic_shape=(1, 8, 8),
                                 scaled_velocity_shape=(6, 6)),
            vqc=QuGeoVQCConfig(n_groups=1, qubits_per_group=6, n_blocks=2,
                               decoder="layer", output_shape=(6, 6)),
            training=TrainingConfig(epochs=4, eval_batch_size=32),
            scaling_method="d_sample")
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config


class TestPipelineSaveLoad:
    @pytest.fixture(scope="class")
    def fitted_pipeline(self, tiny_dataset):
        config = QuGeoConfig(
            data=QuGeoDataConfig(scaled_seismic_shape=(1, 8, 8),
                                 scaled_velocity_shape=(6, 6)),
            vqc=QuGeoVQCConfig(n_groups=1, qubits_per_group=6, n_blocks=2,
                               decoder="layer", output_shape=(6, 6)),
            training=TrainingConfig(epochs=3, learning_rate=0.1, batch_size=3,
                                    eval_every=2, seed=0),
            scaling_method="forward_modeling")
        pipeline = QuGeo(config, rng=0)
        train, test = train_test_split(tiny_dataset, train_size=4, rng=0)
        pipeline.fit(train, test)
        return pipeline, test

    def test_predictions_roundtrip_exactly(self, fitted_pipeline, tmp_path):
        pipeline, test = fitted_pipeline
        path = str(tmp_path / "pipeline.qugeo")
        pipeline.save(path)
        served = QuGeo.load(path)
        np.testing.assert_array_equal(served.predict_dataset(test),
                                      pipeline.predict_dataset(test))

    def test_loaded_pipeline_keeps_history_and_metrics(self, fitted_pipeline,
                                                       tmp_path):
        pipeline, _ = fitted_pipeline
        path = str(tmp_path / "pipeline.qugeo")
        pipeline.save(path)
        served = QuGeo.load(path)
        assert (served.training_result.final_metrics
                == pipeline.training_result.final_metrics)
        assert (served.training_result.history("train_loss")
                == pipeline.training_result.history("train_loss"))
        assert "test_ssim" in served.summary()

    def test_save_before_fit_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            QuGeo().save(str(tmp_path / "nothing.qugeo"))
