"""Tests for repro.metrics (SSIM and error metrics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import mae, mse, psnr, relative_improvement, rmse, ssim, ssim_map


def _random_image(seed, shape=(16, 16)):
    return np.random.default_rng(seed).random(shape)


class TestMSE:
    def test_zero_for_identical(self):
        image = _random_image(0)
        assert mse(image, image) == 0.0

    def test_known_value(self):
        assert mse([1.0, 2.0], [0.0, 0.0]) == pytest.approx(2.5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_symmetric(self):
        a, b = _random_image(1), _random_image(2)
        assert mse(a, b) == pytest.approx(mse(b, a))


class TestMAEAndRMSE:
    def test_mae_known_value(self):
        assert mae([1.0, -1.0], [0.0, 0.0]) == pytest.approx(1.0)

    def test_rmse_is_sqrt_mse(self):
        a, b = _random_image(3), _random_image(4)
        assert rmse(a, b) == pytest.approx(np.sqrt(mse(a, b)))

    def test_mae_lower_or_equal_rmse(self):
        a, b = _random_image(5), _random_image(6)
        assert mae(a, b) <= rmse(a, b) + 1e-12


class TestPSNR:
    def test_identical_is_infinite(self):
        image = _random_image(7)
        assert psnr(image, image) == float("inf")

    def test_larger_error_lower_psnr(self):
        target = _random_image(8)
        small = target + 0.01
        large = target + 0.1
        assert psnr(small, target, data_range=1.0) > psnr(large, target, data_range=1.0)

    def test_invalid_data_range(self):
        with pytest.raises(ValueError):
            psnr(np.ones((4, 4)), np.ones((4, 4)), data_range=0.0)


class TestRelativeImprovement:
    def test_positive_when_error_drops(self):
        assert relative_improvement(0.001, 0.0005) == pytest.approx(0.5)

    def test_negative_when_error_grows(self):
        assert relative_improvement(0.001, 0.002) == pytest.approx(-1.0)

    def test_zero_baseline_raises(self):
        with pytest.raises(ValueError):
            relative_improvement(0.0, 1.0)


class TestSSIM:
    def test_identical_images_score_one(self):
        image = _random_image(9)
        assert ssim(image, image) == pytest.approx(1.0)

    def test_range_bounded(self):
        a, b = _random_image(10), _random_image(11)
        value = ssim(a, b, data_range=1.0)
        assert -1.0 <= value <= 1.0

    def test_noise_lowers_ssim(self):
        image = _random_image(12)
        noisy = image + 0.5 * _random_image(13)
        assert ssim(noisy, image, data_range=1.0) < 0.99

    def test_more_noise_scores_lower(self):
        image = _random_image(14)
        rng = np.random.default_rng(15)
        noise = rng.normal(size=image.shape)
        slight = image + 0.05 * noise
        heavy = image + 0.5 * noise
        assert ssim(slight, image, data_range=1.0) > ssim(heavy, image, data_range=1.0)

    def test_small_images_supported(self):
        """8x8 velocity maps (the paper's output size) must work."""
        image = _random_image(16, shape=(8, 8))
        assert ssim(image, image) == pytest.approx(1.0)

    def test_uniform_window_variant(self):
        a, b = _random_image(17), _random_image(18)
        value = ssim(a, b, gaussian=False, data_range=1.0)
        assert -1.0 <= value <= 1.0

    def test_constant_reference_uses_unit_range(self):
        constant = np.full((8, 8), 0.5)
        assert ssim(constant, constant) == pytest.approx(1.0)

    def test_map_shape_matches_input(self):
        a, b = _random_image(19), _random_image(20)
        assert ssim_map(a, b).shape == a.shape

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((5, 5)))

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            ssim(np.zeros(16), np.zeros(16))

    def test_shifted_structure_scores_below_identical(self):
        image = np.zeros((16, 16))
        image[4:8, :] = 1.0
        shifted = np.roll(image, 4, axis=0)
        assert ssim(shifted, image, data_range=1.0) < 0.95


class TestSSIMProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_self_similarity_is_one(self, seed):
        image = np.random.default_rng(seed).random((12, 12))
        assert ssim(image, image) == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), scale=st.floats(0.05, 0.5))
    def test_symmetry(self, seed, scale):
        rng = np.random.default_rng(seed)
        a = rng.random((10, 10))
        b = a + scale * rng.normal(size=a.shape)
        forward = ssim(a, b, data_range=1.0)
        backward = ssim(b, a, data_range=1.0)
        assert forward == pytest.approx(backward, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_mse_non_negative(self, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.random((6, 6)), rng.random((6, 6))
        assert mse(a, b) >= 0.0
