"""Tests of the centralised ``QUGEO_*`` environment-variable parsing.

``repro.utils.env`` is the single place that knows the variable names,
defaults and coercions; these tests pin that contract and check that the
subsystems which used to parse their variables inline now resolve through
it.
"""

from __future__ import annotations

import pytest

from repro.utils import env


# --------------------------------------------------------------------------- #
# parsing primitives
# --------------------------------------------------------------------------- #
def test_get_str_unset_and_empty_fall_back(monkeypatch):
    monkeypatch.delenv(env.BACKEND, raising=False)
    assert env.get_str(env.BACKEND, "numpy") == "numpy"
    assert env.get_str(env.BACKEND) is None
    monkeypatch.setenv(env.BACKEND, "")
    assert env.get_str(env.BACKEND, "numpy") == "numpy"
    monkeypatch.setenv(env.BACKEND, "einsum")
    assert env.get_str(env.BACKEND, "numpy") == "einsum"


def test_get_choice_normalises_and_validates(monkeypatch):
    monkeypatch.setenv(env.BENCH_SCALE, "  MEDIUM ")
    assert env.get_choice(env.BENCH_SCALE, "small",
                          ("small", "medium", "full")) == "medium"
    monkeypatch.setenv(env.BENCH_SCALE, "galactic")
    with pytest.raises(ValueError, match="QUGEO_BENCH_SCALE"):
        env.get_choice(env.BENCH_SCALE, "small", ("small", "medium", "full"))


def test_get_int_parses_and_bounds(monkeypatch):
    monkeypatch.delenv(env.DATAGEN_WORKERS, raising=False)
    assert env.get_int(env.DATAGEN_WORKERS) is None
    assert env.get_int(env.DATAGEN_WORKERS, 4) == 4
    monkeypatch.setenv(env.DATAGEN_WORKERS, "8")
    assert env.get_int(env.DATAGEN_WORKERS, minimum=1) == 8
    monkeypatch.setenv(env.DATAGEN_WORKERS, "0")
    with pytest.raises(ValueError, match=">= 1"):
        env.get_int(env.DATAGEN_WORKERS, minimum=1)
    monkeypatch.setenv(env.DATAGEN_WORKERS, "many")
    with pytest.raises(ValueError, match="integer"):
        env.get_int(env.DATAGEN_WORKERS)


def test_known_vars_documented_and_prefixed():
    names = [var.name for var in env.KNOWN_VARS]
    assert len(names) == len(set(names))
    for var in env.KNOWN_VARS:
        assert var.name.startswith(env.ENV_PREFIX)
        assert var.description
    # The canonical constants all appear in the documentation table.
    for name in (env.BACKEND, env.PROPAGATOR, env.ARRAY_MODULE, env.DTYPE,
                 env.TELEMETRY, env.BENCH_SCALE, env.CACHE_DIR,
                 env.DATAGEN_WORKERS, env.CHECKPOINT_DIR,
                 env.SEISMIC_KERNEL, env.SEISMIC_BOUNDARY):
        assert name in names


def test_describe_reports_current_values(monkeypatch):
    monkeypatch.setenv(env.BACKEND, "einsum")
    monkeypatch.delenv(env.CACHE_DIR, raising=False)
    table = env.describe()
    assert table[env.BACKEND]["value"] == "einsum"
    assert table[env.BACKEND]["default"] == "numpy"
    assert table[env.CACHE_DIR]["value"] is None


# --------------------------------------------------------------------------- #
# the subsystems resolve through the central module
# --------------------------------------------------------------------------- #
def test_backend_default_resolves_via_env(monkeypatch):
    from repro.backends import default_backend_name

    monkeypatch.setenv(env.BACKEND, "einsum")
    assert default_backend_name() == "einsum"
    monkeypatch.delenv(env.BACKEND)
    assert default_backend_name() == "numpy"


def test_propagator_default_resolves_via_env(monkeypatch):
    from repro.seismic.propagators import default_propagator_name

    monkeypatch.setenv(env.PROPAGATOR, "scalar")
    assert default_propagator_name() == "scalar"
    monkeypatch.delenv(env.PROPAGATOR)
    assert default_propagator_name() == "batched"


def test_telemetry_mode_resolves_via_env(monkeypatch):
    from repro.telemetry.core import _resolve_mode

    monkeypatch.setenv(env.TELEMETRY, "summary")
    assert _resolve_mode(None) == "summary"
    monkeypatch.setenv(env.TELEMETRY, "")
    assert _resolve_mode(None) == "off"
    monkeypatch.setenv(env.TELEMETRY, "nonsense")
    with pytest.raises(ValueError):
        _resolve_mode(None)


def test_seismic_kernel_default_resolves_via_env(monkeypatch):
    from repro.seismic.kernels import default_kernel_name

    monkeypatch.setenv(env.SEISMIC_KERNEL, "numba")
    assert default_kernel_name() == "numba"
    monkeypatch.delenv(env.SEISMIC_KERNEL)
    assert default_kernel_name() == "python"
    assert env.describe()[env.SEISMIC_KERNEL]["default"] == "python"


def test_seismic_boundary_default_resolves_via_env(monkeypatch):
    from repro.seismic.boundary import default_boundary_name

    monkeypatch.setenv(env.SEISMIC_BOUNDARY, "pml")
    assert default_boundary_name() == "pml"
    monkeypatch.setenv(env.SEISMIC_BOUNDARY, "mirror")
    with pytest.raises(ValueError, match="QUGEO_SEISMIC_BOUNDARY"):
        default_boundary_name()
    monkeypatch.delenv(env.SEISMIC_BOUNDARY)
    assert default_boundary_name() == "sponge"
    assert env.describe()[env.SEISMIC_BOUNDARY]["default"] == "sponge"


def test_array_module_and_dtype_resolve_via_env(monkeypatch):
    from repro.xm import default_array_module_name, default_policy_name

    monkeypatch.setenv(env.ARRAY_MODULE, "torch")
    assert default_array_module_name() == "torch"
    monkeypatch.delenv(env.ARRAY_MODULE)
    assert default_array_module_name() == "numpy"
    monkeypatch.setenv(env.DTYPE, "float32")
    assert default_policy_name() == "float32"
    monkeypatch.delenv(env.DTYPE)
    assert default_policy_name() == "float64"
