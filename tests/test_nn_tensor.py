"""Tests for the autograd Tensor (repro.nn.tensor)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, as_tensor


def numerical_gradient(fn, array, epsilon=1e-6):
    """Central finite differences of a scalar function of one array."""
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = fn()
        flat[i] = original - epsilon
        minus = fn()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * epsilon)
    return grad


class TestTensorBasics:
    def test_data_is_float64(self):
        assert Tensor([1, 2, 3]).data.dtype == np.float64

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_array(self):
        t = as_tensor(np.ones(3))
        assert isinstance(t, Tensor)

    def test_backward_on_non_scalar_without_grad_raises(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()


class TestArithmeticGradients:
    def test_add_gradients(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_gradients(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_sub_and_neg(self):
        a = Tensor([5.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a - b).backward()
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_div_gradients(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.5])

    def test_pow_gradient(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_scalar_broadcast(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (2.0 * a + 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 2.0])

    def test_broadcast_unbroadcast(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones((1, 2)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 2)
        assert b.grad.shape == (1, 2)
        np.testing.assert_allclose(b.grad, [[3.0, 3.0]])

    def test_matmul_gradients_match_numerical(self):
        rng = np.random.default_rng(0)
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 2))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a @ b).sum().backward()

        num_a = numerical_gradient(lambda: (a_data @ b_data).sum(), a_data)
        num_b = numerical_gradient(lambda: (a_data @ b_data).sum(), b_data)
        np.testing.assert_allclose(a.grad, num_a, atol=1e-6)
        np.testing.assert_allclose(b.grad, num_b, atol=1e-6)

    def test_reused_tensor_accumulates(self):
        a = Tensor([2.0], requires_grad=True)
        ((a * a) + a).backward()
        np.testing.assert_allclose(a.grad, [5.0])  # 2a + 1


class TestShapeOps:
    def test_reshape_gradient(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_transpose_gradient(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        scale = Tensor(np.arange(6.0).reshape(3, 2))
        (a.transpose() * scale).sum().backward()
        np.testing.assert_allclose(a.grad, np.arange(6.0).reshape(3, 2).T)

    def test_getitem_gradient(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        a[1:3].sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 1.0, 0.0])

    def test_mean_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, 0.25 * np.ones((2, 2)))

    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))


class TestNonlinearities:
    def test_relu_gradient(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        a.relu().sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])

    def test_sigmoid_gradient(self):
        a = Tensor([0.0], requires_grad=True)
        a.sigmoid().backward()
        np.testing.assert_allclose(a.grad, [0.25])

    def test_tanh_gradient(self):
        a = Tensor([0.0], requires_grad=True)
        a.tanh().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_exp_log_inverse(self):
        a = Tensor([0.7], requires_grad=True)
        a.exp().log().backward()
        np.testing.assert_allclose(a.grad, [1.0], atol=1e-12)

    def test_abs_gradient(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        a.abs().sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, 1.0])


class TestGradientProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_composite_expression_matches_numerical(self, seed):
        rng = np.random.default_rng(seed)
        x_data = rng.normal(size=(4, 3))
        w_data = rng.normal(size=(3, 2))

        def value():
            hidden = np.maximum(x_data @ w_data, 0.0)
            return float((hidden ** 2).mean())

        x = Tensor(x_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        ((x @ w).relu() ** 2).mean().backward()

        np.testing.assert_allclose(w.grad, numerical_gradient(value, w_data),
                                   atol=1e-5)
        np.testing.assert_allclose(x.grad, numerical_gradient(value, x_data),
                                   atol=1e-5)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_grad_accumulates_across_backward_calls(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=3)
        a = Tensor(data, requires_grad=True)
        (a * 2).sum().backward()
        first = a.grad.copy()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * first)

    def test_zero_grad_resets(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 3).backward()
        a.zero_grad()
        assert a.grad is None
