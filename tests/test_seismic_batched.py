"""Tests for the batched multi-shot acoustic propagator and its registry.

The batched engine must reproduce the scalar reference bit-for-bit (well
inside the 1e-10 acceptance tolerance) on random layered models across every
supported spatial order, with and without wavefield recording, and on the
multi-velocity-model path used by dataset generation.
"""

import dataclasses

import numpy as np
import pytest

from repro.seismic import (
    AcousticSimulator2D,
    BatchedAcousticSimulator2D,
    ForwardModel,
    SimulationConfig,
    SpongeBoundary,
    SurveyGeometry,
    VelocityModelConfig,
    available_propagators,
    default_propagator_name,
    flat_layer_model,
    forward_model_shot_gather,
    get_propagator,
    normalize_per_shot,
    nyquist_record_stride,
    register_propagator,
    ricker_wavelet,
    set_default_propagator,
    stable_time_step,
    unregister_propagator,
)
from repro.seismic.kernels import available_kernels, kernel_available
from repro.seismic.propagators import (
    DuplicatePropagatorError,
    UnknownPropagatorError,
)


def _layered_velocity(seed, shape=(24, 24)):
    config = VelocityModelConfig(shape=shape, min_velocity=1500.0,
                                 max_velocity=3500.0)
    return flat_layer_model(config, rng=seed)


def _config(n_steps=60, order=4, dx=10.0):
    dt = stable_time_step(3500.0, dx=dx, spatial_order=order)
    return SimulationConfig(dx=dx, dz=dx, dt=dt, n_steps=n_steps,
                            spatial_order=order,
                            boundary=SpongeBoundary(width=4))


SOURCES = [(1, 3), (1, 12), (1, 20)]
RECEIVERS = [(1, c) for c in range(0, 24, 3)]


def _forward_model(propagator=None, normalize=True):
    survey = SurveyGeometry(n_sources=3, n_receivers=12, nx=24)
    return ForwardModel(survey=survey, config=_config(n_steps=50),
                        normalize=normalize, propagator=propagator)


class TestBatchedScalarParity:
    @pytest.mark.parametrize("order", [2, 4, 8])
    def test_gathers_match_scalar_reference(self, order):
        velocity = _layered_velocity(seed=order, shape=(24, 24))
        config = _config(order=order)
        wavelet = ricker_wavelet(config.n_steps, config.dt, 12.0)
        scalar = AcousticSimulator2D(velocity, config)
        batched = BatchedAcousticSimulator2D(velocity, config)
        reference = scalar.simulate_shots(SOURCES, wavelet, RECEIVERS)
        result = batched.simulate_shots(SOURCES, wavelet, RECEIVERS)
        assert result.shape == (len(SOURCES), config.n_steps, len(RECEIVERS))
        np.testing.assert_allclose(result, reference, atol=1e-10, rtol=0)

    @pytest.mark.parametrize("order", [2, 4, 8])
    def test_wavefield_snapshots_match(self, order):
        velocity = _layered_velocity(seed=10 + order)
        config = _config(n_steps=40, order=order)
        wavelet = ricker_wavelet(config.n_steps, config.dt, 12.0)
        ref_gather, ref_snaps = AcousticSimulator2D(velocity, config).simulate_shots(
            SOURCES, wavelet, RECEIVERS, record_wavefield=True, wavefield_stride=10)
        gather, snaps = BatchedAcousticSimulator2D(velocity, config).simulate_shots(
            SOURCES, wavelet, RECEIVERS, record_wavefield=True, wavefield_stride=10)
        np.testing.assert_allclose(gather, ref_gather, atol=1e-10, rtol=0)
        assert len(snaps) == len(ref_snaps) == 4
        for snap, ref in zip(snaps, ref_snaps):
            assert snap.shape == (len(SOURCES), 24, 24)
            np.testing.assert_allclose(snap, ref, atol=1e-10, rtol=0)

    def test_multi_model_batch_matches_per_map_scalar(self):
        velocities = np.stack([_layered_velocity(seed) for seed in (3, 5, 7)])
        config = _config(n_steps=50)
        wavelet = ricker_wavelet(config.n_steps, config.dt, 12.0)
        batched = BatchedAcousticSimulator2D(velocities, config)
        assert batched.n_models == 3
        result = batched.simulate_shots(SOURCES, wavelet, RECEIVERS)
        assert result.shape == (3, len(SOURCES), config.n_steps, len(RECEIVERS))
        for m, velocity in enumerate(velocities):
            reference = AcousticSimulator2D(velocity, config).simulate_shots(
                SOURCES, wavelet, RECEIVERS)
            np.testing.assert_allclose(result[m], reference, atol=1e-10, rtol=0)

    def test_per_shot_wavelets(self):
        velocity = _layered_velocity(seed=2)
        config = _config(n_steps=50)
        base = ricker_wavelet(config.n_steps, config.dt, 12.0)
        wavelets = np.stack([base, 2.0 * base, 0.5 * base])
        batched = BatchedAcousticSimulator2D(velocity, config).simulate_shots(
            SOURCES, wavelets, RECEIVERS)
        scalar_sim = AcousticSimulator2D(velocity, config)
        for s, (source, wavelet) in enumerate(zip(SOURCES, wavelets)):
            reference = scalar_sim.simulate_shot(source, wavelet, RECEIVERS)
            np.testing.assert_allclose(batched[s], reference, atol=1e-10, rtol=0)

    def test_matmul_fallback_matches_scalar(self, monkeypatch):
        """Without SciPy the banded-matmul Laplacian must hold parity too."""
        import repro.seismic.acoustic2d as acoustic2d

        monkeypatch.setattr(acoustic2d, "_correlate1d", None)
        monkeypatch.setattr(acoustic2d, "_daxpy", None)
        velocity = _layered_velocity(seed=6)
        config = _config(n_steps=50)
        wavelet = ricker_wavelet(config.n_steps, config.dt, 12.0)
        batched = BatchedAcousticSimulator2D(velocity, config)
        assert not batched._use_ndimage
        result = batched.simulate_shots(SOURCES, wavelet, RECEIVERS)
        reference = AcousticSimulator2D(velocity, config).simulate_shots(
            SOURCES, wavelet, RECEIVERS)
        np.testing.assert_allclose(result, reference, atol=1e-10, rtol=0)

    def test_rejects_bad_inputs(self):
        config = _config(n_steps=5)
        with pytest.raises(ValueError):
            BatchedAcousticSimulator2D(np.ones(10), config)
        with pytest.raises(ValueError):
            BatchedAcousticSimulator2D(np.full((24, 24), -1.0), config)
        simulator = BatchedAcousticSimulator2D(_layered_velocity(1), config)
        wavelet = ricker_wavelet(5, config.dt, 12.0)
        with pytest.raises(ValueError):
            simulator.simulate_shots([(100, 0)], wavelet, RECEIVERS)
        with pytest.raises(ValueError):
            simulator.simulate_shots(SOURCES, wavelet, [(100, 0)])
        with pytest.raises(ValueError):
            simulator.simulate_shots([], wavelet, RECEIVERS)
        with pytest.raises(ValueError):
            simulator.simulate_shots(SOURCES, np.zeros((2, 5)), RECEIVERS)


class TestPropagatorRegistry:
    def test_builtin_engines_registered(self):
        names = available_propagators()
        assert "scalar" in names
        assert "batched" in names

    def test_default_is_batched(self):
        assert default_propagator_name() == "batched"
        assert get_propagator() is BatchedAcousticSimulator2D

    def test_resolve_by_name_and_factory(self):
        assert get_propagator("scalar") is AcousticSimulator2D
        assert get_propagator(AcousticSimulator2D) is AcousticSimulator2D

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv("QUGEO_PROPAGATOR", "scalar")
        assert default_propagator_name() == "scalar"
        assert get_propagator() is AcousticSimulator2D

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownPropagatorError):
            get_propagator("bogus")
        with pytest.raises(TypeError):
            get_propagator(123)

    def test_register_unregister_roundtrip(self):
        register_propagator("parity-test", AcousticSimulator2D)
        try:
            with pytest.raises(DuplicatePropagatorError):
                register_propagator("parity-test", AcousticSimulator2D)
            register_propagator("parity-test", BatchedAcousticSimulator2D,
                                replace=True)
            assert get_propagator("parity-test") is BatchedAcousticSimulator2D
        finally:
            unregister_propagator("parity-test")
        assert "parity-test" not in available_propagators()

    def test_set_default_roundtrip(self):
        original = default_propagator_name()
        set_default_propagator("scalar")
        try:
            assert default_propagator_name() == "scalar"
        finally:
            set_default_propagator(original)


class TestForwardModelBatched:
    def test_scalar_and_batched_engines_agree(self):
        velocity = _layered_velocity(seed=9)
        scalar = _forward_model(propagator="scalar").model_shots(velocity)
        batched = _forward_model(propagator="batched").model_shots(velocity)
        np.testing.assert_allclose(batched, scalar, atol=1e-10, rtol=0)

    def test_model_shots_batch_matches_per_map(self):
        velocities = np.stack([_layered_velocity(seed) for seed in (11, 13, 17, 19)])
        model = _forward_model()
        per_map = np.stack([model.model_shots(v) for v in velocities])
        stacked = model.model_shots_batch(velocities)
        chunked = model.model_shots_batch(velocities, chunk_size=3)
        assert stacked.shape == (4, 3, 50, 12)
        np.testing.assert_allclose(stacked, per_map, atol=1e-10, rtol=0)
        np.testing.assert_allclose(chunked, per_map, atol=1e-10, rtol=0)

    def test_model_shots_batch_scalar_fallback(self):
        velocities = np.stack([_layered_velocity(seed) for seed in (11, 13)])
        batched = _forward_model().model_shots_batch(velocities)
        fallback = _forward_model(propagator="scalar").model_shots_batch(velocities)
        np.testing.assert_allclose(fallback, batched, atol=1e-10, rtol=0)

    def test_model_shots_batch_rejects_2d(self):
        with pytest.raises(ValueError):
            _forward_model().model_shots_batch(_layered_velocity(1))

    def test_model_shots_batch_rejects_empty_stack(self):
        with pytest.raises(ValueError, match="at least one model"):
            _forward_model().model_shots_batch(np.empty((0, 24, 24)))


class TestPerShotNormalization:
    def test_every_shot_normalised_to_unit_peak(self):
        """Regression: shots of different amplitudes each peak at 1."""
        velocity = _layered_velocity(seed=21)
        data = _forward_model().model_shots(velocity)
        peaks = np.max(np.abs(data), axis=(1, 2))
        np.testing.assert_allclose(peaks, np.ones(data.shape[0]), atol=1e-12)

    def test_normalize_per_shot_scales_each_shot(self):
        data = np.zeros((3, 4, 5))
        data[0, 1, 2] = 2.0
        data[1, 0, 0] = -8.0
        # shot 2 stays all-zero
        result = normalize_per_shot(data)
        assert result[0, 1, 2] == pytest.approx(1.0)
        assert result[1, 0, 0] == pytest.approx(-1.0)
        np.testing.assert_array_equal(result[2], np.zeros((4, 5)))
        assert np.all(np.isfinite(result))

    def test_normalize_per_shot_batched_layout(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(2, 3, 6, 4)) * rng.uniform(0.1, 10.0, size=(2, 3, 1, 1))
        result = normalize_per_shot(data)
        peaks = np.max(np.abs(result), axis=(-2, -1))
        np.testing.assert_allclose(peaks, np.ones((2, 3)), atol=1e-12)

    def test_normalize_per_shot_rejects_scalars(self):
        with pytest.raises(ValueError):
            normalize_per_shot(np.zeros(4))


class TestSpongeMaskBroadcast:
    def test_batched_shape_builds_trailing_grid_mask(self):
        boundary = SpongeBoundary(width=5)
        flat = boundary.build_mask((40, 40))
        batched = boundary.build_mask((3, 40, 40))
        stacked = boundary.build_mask((2, 3, 40, 40))
        assert batched.shape == (40, 40)
        assert stacked.shape == (40, 40)
        np.testing.assert_array_equal(batched, flat)

    def test_apply_broadcasts_over_batch_axis(self):
        boundary = SpongeBoundary(width=5)
        mask = boundary.build_mask((3, 40, 40))
        fields = np.random.default_rng(1).normal(size=(3, 40, 40))
        expected = np.stack([f * mask for f in fields])
        damped = boundary.apply(fields.copy(), mask)
        np.testing.assert_allclose(damped, expected)

    def test_rejects_sub_2d_shape(self):
        with pytest.raises(ValueError):
            SpongeBoundary(width=2).build_mask((40,))


class TestCflUpFront:
    def test_unstable_user_dt_raises_before_simulation(self):
        velocity = np.full((20, 20), 4000.0)
        with pytest.raises(ValueError, match="CFL"):
            forward_model_shot_gather(velocity, n_sources=1, n_steps=10,
                                      dx=1.0, dt=0.01)

    def test_stable_time_step_matches_config_helper(self):
        config = SimulationConfig(dx=10.0, dz=10.0, n_steps=10)
        assert stable_time_step(4500.0, dx=10.0) == pytest.approx(
            config.stable_dt(4500.0))

    def test_stable_time_step_validation(self):
        with pytest.raises(ValueError):
            stable_time_step(4500.0, dx=10.0, spatial_order=3)
        with pytest.raises(ValueError):
            stable_time_step(-1.0, dx=10.0)


class TestKernelParityMatrix:
    """Every registered time-loop kernel x dtype agrees with the scalar
    reference (kernels whose optional dependency is missing are skipped,
    mirroring the optional-engine treatment in tests/test_backends.py)."""

    F32_ATOL = 1e-4

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("kernel", available_kernels())
    def test_kernel_matches_scalar_reference(self, kernel, dtype):
        if not kernel_available(kernel):
            pytest.skip(f"kernel {kernel!r} is unavailable here")
        velocity = _layered_velocity(7)
        config = _config(n_steps=60)
        wavelet = ricker_wavelet(60, config.dt, 12.0)
        scalar = AcousticSimulator2D(velocity, config)
        reference = np.stack([
            scalar.simulate_shot(src, wavelet, RECEIVERS) for src in SOURCES])
        gather = BatchedAcousticSimulator2D(
            velocity, config, policy=dtype, kernel=kernel).simulate_shots(
                SOURCES, wavelet, RECEIVERS)
        atol = 1e-10 if dtype == "float64" else self.F32_ATOL
        assert np.abs(reference).max() > 1e-3
        np.testing.assert_allclose(gather, reference, atol=atol, rtol=0.0)

    def test_forward_model_threads_kernel_selection(self):
        survey = SurveyGeometry(n_sources=2, n_receivers=12, nx=24)
        velocity = _layered_velocity(3)
        base = ForwardModel(survey=survey, config=_config(n_steps=50))
        explicit = ForwardModel(survey=survey, config=_config(n_steps=50),
                                kernel="python")
        np.testing.assert_array_equal(base.model_shots(velocity),
                                      explicit.model_shots(velocity))

    def test_forward_model_rejects_kernel_on_scalar_engine(self):
        survey = SurveyGeometry(n_sources=1, n_receivers=12, nx=24)
        model = ForwardModel(survey=survey, config=_config(n_steps=20),
                             propagator="scalar", kernel="python")
        with pytest.raises(ValueError, match="kernel"):
            model.model_shots(_layered_velocity(3))


class TestRecordEveryDecimation:
    def test_decimated_gather_is_a_stride_of_the_full_gather(self):
        velocity = _layered_velocity(11)
        full_config = _config(n_steps=60)
        wavelet = ricker_wavelet(60, full_config.dt, 12.0)
        full = BatchedAcousticSimulator2D(
            velocity, full_config).simulate_shots(SOURCES, wavelet, RECEIVERS)
        decimated_config = dataclasses.replace(full_config, record_every=5)
        assert decimated_config.n_recorded == 12
        assert decimated_config.effective_dt == pytest.approx(
            5 * full_config.dt)
        decimated = BatchedAcousticSimulator2D(
            velocity, decimated_config).simulate_shots(SOURCES, wavelet,
                                                       RECEIVERS)
        assert decimated.shape == (3, 12, len(RECEIVERS))
        np.testing.assert_array_equal(decimated, full[:, ::5, :])

    def test_scalar_engine_decimates_identically(self):
        velocity = _layered_velocity(11)
        config = dataclasses.replace(_config(n_steps=60), record_every=4)
        wavelet = ricker_wavelet(60, config.dt, 12.0)
        scalar = AcousticSimulator2D(velocity, config)
        reference = np.stack([
            scalar.simulate_shot(src, wavelet, RECEIVERS) for src in SOURCES])
        batched = BatchedAcousticSimulator2D(
            velocity, config).simulate_shots(SOURCES, wavelet, RECEIVERS)
        assert reference.shape == (3, 15, len(RECEIVERS))
        np.testing.assert_allclose(batched, reference, atol=1e-10, rtol=0.0)

    def test_record_every_validation(self):
        with pytest.raises(ValueError, match="record_every"):
            SimulationConfig(n_steps=10, record_every=0)
        with pytest.raises(ValueError, match="record_every"):
            SimulationConfig(n_steps=10, record_every=1.5)

    def test_nyquist_stride_bounds(self):
        config = _config(n_steps=60)
        stride = nyquist_record_stride(config.dt, 15.0)
        assert stride >= 1
        # The stride must keep the sampling rate above the oversampled
        # band-edge Nyquist rate.
        assert 1.0 / (config.dt * stride) >= 2 * 2.0 * 3.0 * 15.0
        assert nyquist_record_stride(1e-3, 15.0) == 5
        assert nyquist_record_stride(0.5, 15.0) == 1  # never below 1
