"""Tests for finite-shot (sampled) measurement estimates."""

import numpy as np
import pytest

from repro.quantum.measurement import (
    marginal_probabilities,
    marginal_probabilities_from_probabilities,
    sample_counts,
    sampled_marginal_probabilities,
    sampled_probabilities,
    sampled_z_expectations,
    z_expectations,
    z_expectations_from_probabilities,
)


def _random_state(n_qubits, seed=0):
    rng = np.random.default_rng(seed)
    state = rng.normal(size=2**n_qubits) + 1j * rng.normal(size=2**n_qubits)
    return state / np.linalg.norm(state)


class TestSampling:
    def test_counts_sum_to_shots(self):
        counts = sample_counts(_random_state(3), n_shots=500, rng=0)
        assert counts.sum() == 500
        assert counts.size == 8

    def test_deterministic_state_always_same_outcome(self):
        state = np.zeros(4, dtype=complex)
        state[2] = 1.0
        counts = sample_counts(state, n_shots=100, rng=1)
        assert counts[2] == 100

    def test_invalid_shots(self):
        with pytest.raises(ValueError):
            sample_counts(_random_state(2), n_shots=0)

    def test_sampled_probabilities_converge(self):
        state = _random_state(3, seed=2)
        exact = np.abs(state) ** 2
        estimate = sampled_probabilities(state, n_shots=20_000, rng=3)
        assert np.abs(estimate - exact).max() < 0.02

    def test_sampled_z_expectations_converge(self):
        state = _random_state(4, seed=4)
        exact = z_expectations(state, range(4), 4)
        estimate = sampled_z_expectations(state, range(4), 4, n_shots=20_000, rng=5)
        np.testing.assert_allclose(estimate, exact, atol=0.03)

    def test_sampled_z_bounds(self):
        values = sampled_z_expectations(_random_state(3, 6), range(3), 3,
                                        n_shots=100, rng=7)
        assert np.all(np.abs(values) <= 1.0)

    def test_sampled_z_validates_inputs(self):
        with pytest.raises(ValueError):
            sampled_z_expectations(_random_state(2), [5], 2, n_shots=10)
        with pytest.raises(ValueError):
            sampled_z_expectations(np.ones(3, dtype=complex), [0], 2, n_shots=10)

    def test_reproducible_with_seed(self):
        state = _random_state(3, seed=8)
        a = sample_counts(state, 200, rng=9)
        b = sample_counts(state, 200, rng=9)
        np.testing.assert_array_equal(a, b)


class TestSeededDeterminism:
    """The documented contract: same (state, n_shots, seed) -> same bits."""

    def test_sample_counts_accepts_seed_sequence(self):
        state = _random_state(3, seed=8)
        seq = np.random.SeedSequence(11, spawn_key=(4,))
        a = sample_counts(state, 200, rng=seq)
        b = sample_counts(state, 200,
                          rng=np.random.SeedSequence(11, spawn_key=(4,)))
        np.testing.assert_array_equal(a, b)

    def test_seed_int_and_equivalent_generator_agree(self):
        state = _random_state(4, seed=10)
        from_int = sample_counts(state, 300, rng=12)
        from_gen = sample_counts(state, 300, rng=np.random.default_rng(12))
        np.testing.assert_array_equal(from_int, from_gen)

    def test_sampled_helpers_bit_identical_under_fixed_seed(self):
        state = _random_state(4, seed=13)
        for draw in (lambda rng: sampled_probabilities(state, 500, rng=rng),
                     lambda rng: sampled_z_expectations(
                         state, range(4), 4, n_shots=500, rng=rng),
                     lambda rng: sampled_marginal_probabilities(
                         state, [0, 2], 4, n_shots=500, rng=rng)):
            np.testing.assert_array_equal(draw(14), draw(14))

    def test_spawned_streams_are_independent(self):
        state = _random_state(3, seed=15)
        root = np.random.SeedSequence(16)
        a = sample_counts(state, 500,
                          rng=np.random.SeedSequence(16, spawn_key=(0,)))
        b = sample_counts(state, 500,
                          rng=np.random.SeedSequence(16, spawn_key=(1,)))
        c = sample_counts(state, 500, rng=root)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestFromProbabilitiesDecoders:
    """Exact and shot-estimated probability vectors share one decode path."""

    def test_z_from_probabilities_matches_statevector_path(self):
        state = _random_state(4, seed=17)
        exact = z_expectations(state, range(4), 4)
        via_probs = z_expectations_from_probabilities(
            np.abs(state) ** 2, range(4), 4)
        np.testing.assert_allclose(via_probs, exact, atol=1e-12)

    def test_marginal_from_probabilities_matches_statevector_path(self):
        state = _random_state(4, seed=18)
        exact = marginal_probabilities(state, [1, 3], 4)
        via_probs = marginal_probabilities_from_probabilities(
            np.abs(state) ** 2, [1, 3], 4)
        np.testing.assert_allclose(via_probs, exact, atol=1e-12)

    def test_sampled_marginals_converge_to_exact(self):
        state = _random_state(4, seed=19)
        exact = marginal_probabilities(state, [0, 1], 4)
        estimate = sampled_marginal_probabilities(state, [0, 1], 4,
                                                  n_shots=20_000, rng=20)
        np.testing.assert_allclose(estimate, exact, atol=0.02)

    def test_from_probabilities_validates_length(self):
        with pytest.raises(ValueError):
            z_expectations_from_probabilities(np.ones(5) / 5.0, [0], 2)
        with pytest.raises(ValueError):
            marginal_probabilities_from_probabilities(np.ones(3) / 3.0,
                                                      [0], 2)
