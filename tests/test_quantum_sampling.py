"""Tests for finite-shot (sampled) measurement estimates."""

import numpy as np
import pytest

from repro.quantum.measurement import (
    sample_counts,
    sampled_probabilities,
    sampled_z_expectations,
    z_expectations,
)


def _random_state(n_qubits, seed=0):
    rng = np.random.default_rng(seed)
    state = rng.normal(size=2**n_qubits) + 1j * rng.normal(size=2**n_qubits)
    return state / np.linalg.norm(state)


class TestSampling:
    def test_counts_sum_to_shots(self):
        counts = sample_counts(_random_state(3), n_shots=500, rng=0)
        assert counts.sum() == 500
        assert counts.size == 8

    def test_deterministic_state_always_same_outcome(self):
        state = np.zeros(4, dtype=complex)
        state[2] = 1.0
        counts = sample_counts(state, n_shots=100, rng=1)
        assert counts[2] == 100

    def test_invalid_shots(self):
        with pytest.raises(ValueError):
            sample_counts(_random_state(2), n_shots=0)

    def test_sampled_probabilities_converge(self):
        state = _random_state(3, seed=2)
        exact = np.abs(state) ** 2
        estimate = sampled_probabilities(state, n_shots=20_000, rng=3)
        assert np.abs(estimate - exact).max() < 0.02

    def test_sampled_z_expectations_converge(self):
        state = _random_state(4, seed=4)
        exact = z_expectations(state, range(4), 4)
        estimate = sampled_z_expectations(state, range(4), 4, n_shots=20_000, rng=5)
        np.testing.assert_allclose(estimate, exact, atol=0.03)

    def test_sampled_z_bounds(self):
        values = sampled_z_expectations(_random_state(3, 6), range(3), 3,
                                        n_shots=100, rng=7)
        assert np.all(np.abs(values) <= 1.0)

    def test_sampled_z_validates_inputs(self):
        with pytest.raises(ValueError):
            sampled_z_expectations(_random_state(2), [5], 2, n_shots=10)
        with pytest.raises(ValueError):
            sampled_z_expectations(np.ones(3, dtype=complex), [0], 2, n_shots=10)

    def test_reproducible_with_seed(self):
        state = _random_state(3, seed=8)
        a = sample_counts(state, 200, rng=9)
        b = sample_counts(state, 200, rng=9)
        np.testing.assert_array_equal(a, b)
