"""Tests for the fault-tolerance layer: chaos injection, retry, quarantine.

Exercises the recovery paths the robustness subsystem adds to dataset
generation and the sharded store:

* a chunk that *raises* in a worker is retried (bounded by
  ``QUGEO_ROBUSTNESS_MAX_RETRIES``) and the finished dataset is
  bit-identical to a serial build;
* a worker *killed* mid-chunk breaks the pool, which is respawned, and the
  dataset is again bit-identical;
* shard corruption (flipped bytes, truncation, deletion) is caught by
  checksum validation, the bad shard is quarantined, and exactly the missing
  chunks are regenerated on the next open.
"""

import os

import numpy as np
import pytest

from repro.data import (
    DatasetStore,
    OpenFWIConfig,
    ParallelGenerator,
    SyntheticOpenFWI,
    dataset_fingerprint,
    open_or_build,
)
from repro.data.store import QUARANTINE_DIR, ShardIntegrityError
from repro.utils import env


def small_config(**overrides) -> OpenFWIConfig:
    defaults = dict(n_samples=8, velocity_shape=(16, 16), n_sources=1,
                    n_receivers=16, n_time_steps=40, dx=700.0 / 16,
                    boundary_width=4, chunk_size=2)
    defaults.update(overrides)
    return OpenFWIConfig(**defaults)


def _arrays(dataset):
    return dataset.seismic_array(), dataset.velocity_array()


@pytest.fixture()
def fast_backoff(monkeypatch):
    monkeypatch.setenv(env.ROBUSTNESS_BACKOFF, "0.01")


class TestChaosInjection:
    def test_raise_once_is_retried_bit_identical(self, tmp_path,
                                                 monkeypatch, fast_backoff):
        config = small_config()
        serial = SyntheticOpenFWI(config, rng=0).build()
        marker = tmp_path / "raise.marker"
        monkeypatch.setenv(env.ROBUSTNESS_CHAOS, f"raise-once:1:{marker}")
        with pytest.warns(UserWarning, match="retrying"):
            chunks = list(ParallelGenerator(config, seed=0, workers=2)
                          .generate_chunks(
                              [(0, 0, 2), (1, 2, 2), (2, 4, 2), (3, 6, 2)]))
        assert marker.exists()  # the fault actually fired
        assert sorted(chunk for chunk, *_ in chunks) == [0, 1, 2, 3]
        for chunk, start, velocities, seismic in chunks:
            np.testing.assert_array_equal(
                seismic, serial.seismic_array()[start:start + 2])
            np.testing.assert_array_equal(
                velocities, serial.velocity_array()[start:start + 2])

    def test_killed_worker_respawns_pool_bit_identical(self, tmp_path,
                                                       monkeypatch,
                                                       fast_backoff):
        config = small_config()
        serial = SyntheticOpenFWI(config, rng=0).build()
        marker = tmp_path / "kill.marker"
        monkeypatch.setenv(env.ROBUSTNESS_CHAOS, f"kill-worker:2:{marker}")
        with pytest.warns(UserWarning, match="respawn"):
            parallel = SyntheticOpenFWI(config, rng=0).build(workers=2)
        assert marker.exists()
        np.testing.assert_array_equal(parallel.seismic_array(),
                                      serial.seismic_array())
        np.testing.assert_array_equal(parallel.velocity_array(),
                                      serial.velocity_array())

    def test_retry_budget_exhaustion_raises(self, tmp_path, monkeypatch,
                                            fast_backoff):
        config = small_config()
        # a marker path in a missing directory makes the chaos re-fire on
        # every attempt (the exclusive create fails with FileNotFoundError
        # only after the RuntimeError path would...), so instead: budget 0
        # turns the single injected failure into exhaustion.
        marker = tmp_path / "once.marker"
        monkeypatch.setenv(env.ROBUSTNESS_CHAOS, f"raise-once:0:{marker}")
        monkeypatch.setenv(env.ROBUSTNESS_MAX_RETRIES, "0")
        with pytest.raises(RuntimeError, match="chunk 0 failed"):
            list(ParallelGenerator(config, seed=0, workers=2)
                 .generate_chunks([(0, 0, 2), (1, 2, 2)]))

    def test_malformed_chaos_spec_rejected(self, monkeypatch):
        from repro.data.store import _maybe_inject_chaos
        monkeypatch.setenv(env.ROBUSTNESS_CHAOS, "oops")
        with pytest.raises(ValueError, match="<action>:<chunk>:<marker>"):
            _maybe_inject_chaos(0)
        monkeypatch.setenv(env.ROBUSTNESS_CHAOS, "explode:0:/tmp/x")
        with pytest.raises(ValueError, match="kill-worker or raise-once"):
            _maybe_inject_chaos(0)

    def test_chaos_never_fires_in_serial_builds(self, tmp_path, monkeypatch):
        config = small_config()
        marker = tmp_path / "serial.marker"
        monkeypatch.setenv(env.ROBUSTNESS_CHAOS, f"kill-worker:0:{marker}")
        dataset = SyntheticOpenFWI(config, rng=0).build()  # in-process
        assert len(dataset) == config.n_samples
        assert not marker.exists()


class TestShardCorruptionRecovery:
    def _built_store(self, tmp_path):
        config = small_config()
        fingerprint = dataset_fingerprint(config, 0)
        open_or_build(config, seed=0, cache_dir=tmp_path)
        return config, DatasetStore(tmp_path), fingerprint

    def test_validate_entry_passes_on_healthy_store(self, tmp_path):
        _, store, fingerprint = self._built_store(tmp_path)
        assert store.validate_entry(fingerprint) == []
        assert store.is_complete(fingerprint)

    def test_flipped_bytes_detected_and_quarantined(self, tmp_path):
        _, store, fingerprint = self._built_store(tmp_path)
        shard = store.shard_path(fingerprint, 1)
        payload = bytearray(shard.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        shard.write_bytes(bytes(payload))
        with pytest.warns(UserWarning, match="checksum mismatch"):
            bad = store.validate_entry(fingerprint)
        assert bad == [1]
        assert not shard.exists()
        quarantined = store.entry_dir(fingerprint) / QUARANTINE_DIR
        assert (quarantined / shard.name).exists()
        assert not store.is_complete(fingerprint)

    def test_corrupt_shard_is_rebuilt_on_open(self, tmp_path):
        config, store, fingerprint = self._built_store(tmp_path)
        reference = open_or_build(config, seed=0, cache_dir=tmp_path)
        shard = store.shard_path(fingerprint, 2)
        shard.write_bytes(b"not a shard at all")
        with pytest.warns(UserWarning, match="checksum mismatch"):
            rebuilt = open_or_build(config, seed=0, cache_dir=tmp_path)
        np.testing.assert_array_equal(rebuilt.seismic_array(),
                                      reference.seismic_array())
        np.testing.assert_array_equal(rebuilt.velocity_array(),
                                      reference.velocity_array())
        assert store.is_complete(fingerprint)
        assert store.validate_entry(fingerprint) == []

    def test_missing_shard_is_rebuilt_on_open(self, tmp_path):
        config, store, fingerprint = self._built_store(tmp_path)
        reference = open_or_build(config, seed=0, cache_dir=tmp_path)
        os.unlink(store.shard_path(fingerprint, 0))
        with pytest.warns(UserWarning, match="file missing"):
            rebuilt = open_or_build(config, seed=0, cache_dir=tmp_path)
        np.testing.assert_array_equal(rebuilt.seismic_array(),
                                      reference.seismic_array())

    def test_validation_kill_switch(self, tmp_path, monkeypatch):
        from repro.data.store import _validation_enabled
        monkeypatch.setenv(env.ROBUSTNESS_VALIDATE, "off")
        assert not _validation_enabled()
        monkeypatch.setenv(env.ROBUSTNESS_VALIDATE, "on")
        assert _validation_enabled()
        # with the switch off, a corrupt shard is trusted on open: the
        # entry stays complete and nothing is quarantined
        config, store, fingerprint = self._built_store(tmp_path)
        shard = store.shard_path(fingerprint, 1)
        payload = bytearray(shard.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        shard.write_bytes(bytes(payload))
        monkeypatch.setenv(env.ROBUSTNESS_VALIDATE, "off")
        assert store.is_complete(fingerprint)
        quarantine = store.entry_dir(fingerprint) / QUARANTINE_DIR
        assert not quarantine.exists()

    def test_read_shard_raises_typed_error_on_garbage(self, tmp_path):
        _, store, fingerprint = self._built_store(tmp_path)
        shard = store.shard_path(fingerprint, 0)
        shard.write_bytes(b"\x00" * 64)
        with pytest.raises(ShardIntegrityError):
            store.read_shard(fingerprint, 0)
