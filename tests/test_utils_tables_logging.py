"""Tests for repro.utils.tables and repro.utils.logging."""

import pytest

from repro.utils.logging import RunLogger
from repro.utils.tables import format_table


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in text and "b" in text
        assert "1" in text and "4" in text

    def test_title_is_first_line(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["long-model-name", 1], ["s", 2]])
        lines = text.splitlines()
        # All data lines share the position of the column separator.
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000328]])
        assert "0.000328" in text

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestRunLogger:
    def test_history_records_values(self):
        logger = RunLogger()
        logger.log(0, loss=1.0)
        logger.log(1, loss=0.5)
        assert logger.history("loss") == [1.0, 0.5]

    def test_steps_recorded(self):
        logger = RunLogger()
        logger.log(3, loss=1.0)
        logger.log(7, loss=0.7)
        assert logger.steps("loss") == [3, 7]

    def test_last_value(self):
        logger = RunLogger()
        logger.log(0, ssim=0.8)
        logger.log(1, ssim=0.9)
        assert logger.last("ssim") == 0.9

    def test_last_default_for_missing_key(self):
        logger = RunLogger()
        assert logger.last("missing") is None
        assert logger.last("missing", default=0.0) == 0.0

    def test_keys_sorted(self):
        logger = RunLogger()
        logger.log(0, b=1.0, a=2.0)
        assert logger.keys() == ["a", "b"]

    def test_as_dict_copies(self):
        logger = RunLogger()
        logger.log(0, loss=1.0)
        exported = logger.as_dict()
        exported["loss"].append(123.0)
        assert logger.history("loss") == [1.0]

    def test_verbose_prints(self, capsys):
        logger = RunLogger(name="demo", verbose=True)
        logger.log(0, loss=1.0)
        captured = capsys.readouterr()
        assert "demo" in captured.out
        assert "loss" in captured.out
