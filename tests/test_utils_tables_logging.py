"""Tests for repro.utils.tables and repro.utils.logging."""

import pytest

from repro.utils.logging import RunLogger
from repro.utils.tables import format_table


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in text and "b" in text
        assert "1" in text and "4" in text

    def test_title_is_first_line(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["long-model-name", 1], ["s", 2]])
        lines = text.splitlines()
        # All data lines share the position of the column separator.
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000328]])
        assert "0.000328" in text

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestRunLogger:
    def test_history_records_values(self):
        logger = RunLogger()
        logger.log(0, loss=1.0)
        logger.log(1, loss=0.5)
        assert logger.history("loss") == [1.0, 0.5]

    def test_steps_recorded(self):
        logger = RunLogger()
        logger.log(3, loss=1.0)
        logger.log(7, loss=0.7)
        assert logger.steps("loss") == [3, 7]

    def test_last_value(self):
        logger = RunLogger()
        logger.log(0, ssim=0.8)
        logger.log(1, ssim=0.9)
        assert logger.last("ssim") == 0.9

    def test_last_default_for_missing_key(self):
        logger = RunLogger()
        assert logger.last("missing") is None
        assert logger.last("missing", default=0.0) == 0.0

    def test_keys_sorted(self):
        logger = RunLogger()
        logger.log(0, b=1.0, a=2.0)
        assert logger.keys() == ["a", "b"]

    def test_as_dict_copies(self):
        logger = RunLogger()
        logger.log(0, loss=1.0)
        exported = logger.as_dict()
        exported["loss"].append(123.0)
        assert logger.history("loss") == [1.0]

    def test_verbose_prints_to_stderr(self, capsys):
        logger = RunLogger(name="demo", verbose=True)
        logger.log(0, loss=1.0)
        captured = capsys.readouterr()
        assert "demo" in captured.err
        assert "loss" in captured.err
        # stdout stays clean for machine-readable output (--json, pipes).
        assert captured.out == ""

    def test_verbose_custom_stream(self):
        import io

        sink = io.StringIO()
        logger = RunLogger(name="demo", verbose=True, stream=sink)
        logger.log(0, loss=1.0)
        assert "[demo] step 0" in sink.getvalue()

    def test_print_every_counts_logged_steps_not_raw_step(self, capsys):
        # A resumed run logging epochs 37, 38, ... with print_every=10 must
        # echo its first logged step and then every 10th thereafter.
        logger = RunLogger(name="demo", verbose=True, print_every=10)
        for step in range(37, 60):
            logger.log(step, loss=1.0)
        lines = capsys.readouterr().err.splitlines()
        assert [line.split()[2].rstrip(":") for line in lines] == ["37", "47", "57"]

    def test_print_every_survives_state_roundtrip(self, capsys):
        logger = RunLogger(name="demo", verbose=True, print_every=2)
        logger.log(0, loss=1.0)
        logger.log(1, loss=0.9)
        logger.log(2, loss=0.8)
        state = logger.state_dict()
        capsys.readouterr()

        resumed = RunLogger(name="demo", verbose=True, print_every=2)
        resumed.load_state_dict(state)
        resumed.log(3, loss=0.7)  # 4th logged step: silent
        resumed.log(4, loss=0.6)  # 5th logged step: printed
        lines = capsys.readouterr().err.splitlines()
        assert len(lines) == 1 and "step 4" in lines[0]

    def test_load_state_dict_without_n_logged_reconstructs_count(self):
        logger = RunLogger()
        logger.log(0, loss=1.0)
        logger.log(1, loss=0.9)
        state = logger.state_dict()
        del state["n_logged"]  # checkpoint written before the counter existed
        resumed = RunLogger()
        resumed.load_state_dict(state)
        assert resumed._n_logged == 2
