"""Tests for the seismic forward-modelling substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seismic import (
    AcousticSimulator2D,
    ForwardModel,
    SimulationConfig,
    SpongeBoundary,
    SurveyGeometry,
    VelocityModelConfig,
    curved_layer_model,
    dominant_frequency,
    flat_fault_model,
    flat_layer_model,
    forward_model_shot_gather,
    layer_profile,
    random_velocity_models,
    ricker_wavelet,
    sponge_profile,
)


class TestRickerWavelet:
    def test_length(self):
        assert ricker_wavelet(100, 0.001, 15.0).size == 100

    def test_peak_amplitude(self):
        wavelet = ricker_wavelet(500, 0.001, 15.0, amplitude=2.0)
        assert wavelet.max() == pytest.approx(2.0, rel=1e-3)

    def test_peak_at_delay(self):
        delay = 0.1
        wavelet = ricker_wavelet(500, 0.001, 15.0, delay=delay)
        assert np.argmax(wavelet) == pytest.approx(delay / 0.001, abs=1)

    def test_near_zero_mean(self):
        wavelet = ricker_wavelet(2000, 0.001, 15.0)
        assert abs(wavelet.sum()) < 1e-6 * np.abs(wavelet).max() * wavelet.size

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ricker_wavelet(0, 0.001, 15.0)
        with pytest.raises(ValueError):
            ricker_wavelet(10, -0.001, 15.0)
        with pytest.raises(ValueError):
            ricker_wavelet(10, 0.001, 0.0)

    def test_dominant_frequency_lowered_for_coarser_axis(self):
        """The paper lowers 15 Hz to ~8 Hz when shrinking the time axis."""
        scaled = dominant_frequency(15.0, 1000, 32)
        assert scaled < 15.0
        assert scaled >= 1.0

    def test_dominant_frequency_unchanged_when_not_downsampling(self):
        assert dominant_frequency(15.0, 100, 200) == 15.0

    def test_dominant_frequency_never_exceeds_original(self):
        """Regression: mild downsampling (1000 -> 900) used to *raise* the
        frequency (sqrt-law factor ~1.9) instead of scaling it down."""
        for scaled_steps in (900, 750, 500, 260, 100, 32):
            assert dominant_frequency(15.0, 1000, scaled_steps) <= 15.0

    def test_dominant_frequency_paper_anchor(self):
        """The paper's 15 Hz -> 8 Hz anchor for a ~4x coarser effective
        sampling (sqrt law: ratio (8/30)^2 ~= 71/1000 steps)."""
        assert dominant_frequency(15.0, 1000, 71) == pytest.approx(8.0,
                                                                   abs=0.1)

    def test_dominant_frequency_floor(self):
        assert dominant_frequency(15.0, 1000, 1) == 1.0


class TestSpongeBoundary:
    def test_profile_decays(self):
        taper = sponge_profile(20)
        assert taper[0] > taper[-1]
        assert np.all(taper <= 1.0)

    def test_profile_zero_width(self):
        assert sponge_profile(0).size == 0

    def test_mask_shape_and_range(self):
        mask = SpongeBoundary(width=5).build_mask((40, 40))
        assert mask.shape == (40, 40)
        assert mask.max() <= 1.0
        assert mask.min() > 0.0

    def test_free_surface_not_damped(self):
        mask = SpongeBoundary(width=5, free_surface=True).build_mask((40, 40))
        np.testing.assert_allclose(mask[0, 10:30], 1.0)

    def test_bottom_is_damped(self):
        mask = SpongeBoundary(width=5).build_mask((40, 40))
        assert mask[-1, 20] < 1.0

    def test_too_wide_sponge_raises(self):
        with pytest.raises(ValueError):
            SpongeBoundary(width=30).build_mask((20, 20))


class TestSurveyGeometry:
    def test_default_positions_on_surface(self):
        survey = SurveyGeometry(n_sources=3, n_receivers=10, nx=30)
        assert all(row == 1 for row, _ in survey.source_positions())
        assert len(survey.receiver_positions()) == 10

    def test_sources_span_the_surface(self):
        survey = SurveyGeometry(n_sources=5, n_receivers=70, nx=70)
        columns = [col for _, col in survey.source_positions()]
        assert columns[0] == 0
        assert columns[-1] == 69

    def test_scaled_survey(self):
        survey = SurveyGeometry(n_sources=5, n_receivers=70, nx=70)
        scaled = survey.scaled(nx=8)
        assert scaled.nx == 8
        assert scaled.n_sources == 5
        assert scaled.n_receivers == 8

    def test_scaled_preserves_explicit_columns(self):
        """Regression: explicit layouts were silently replaced by the
        default even spread after scaling."""
        survey = SurveyGeometry(n_sources=2, n_receivers=4, nx=20,
                                source_columns=[3, 10],
                                receiver_columns=[0, 5, 10, 19])
        scaled = survey.scaled(nx=10)
        assert scaled.source_columns == [1, 5]
        assert scaled.receiver_columns == [0, 2, 5, 9]

    def test_scaled_preserves_buried_depths(self):
        """Regression: min(depth, 1) clamping turned a buried-source survey
        into a surface survey after scaling."""
        survey = SurveyGeometry(n_sources=2, n_receivers=10, nx=70,
                                source_depth=35, receiver_depth=10)
        scaled = survey.scaled(nx=14)
        assert scaled.source_depth == 7
        assert scaled.receiver_depth == 2
        # Buried positions never collapse onto the surface.
        deep = SurveyGeometry(n_sources=2, n_receivers=8, nx=64,
                              source_depth=4, receiver_depth=1)
        assert deep.scaled(nx=8).source_depth >= 1
        assert deep.scaled(nx=8).receiver_depth == 1

    def test_scaled_default_layout_respreads(self):
        survey = SurveyGeometry(n_sources=5, n_receivers=70, nx=70)
        scaled = survey.scaled(nx=8)
        columns = [col for _, col in scaled.source_positions()]
        assert columns[0] == 0
        assert columns[-1] == 7

    def test_scaled_count_change_forces_fresh_spread(self):
        survey = SurveyGeometry(n_sources=2, n_receivers=4, nx=20,
                                source_columns=[3, 10])
        scaled = survey.scaled(nx=10, n_sources=3)
        assert len(scaled.source_columns) == 3

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            SurveyGeometry(n_sources=0)
        with pytest.raises(ValueError):
            SurveyGeometry(n_sources=10, n_receivers=10, nx=5)


class TestVelocityModels:
    def test_flat_layer_shape_and_range(self):
        config = VelocityModelConfig(shape=(32, 32))
        model = flat_layer_model(config, rng=0)
        assert model.shape == (32, 32)
        assert model.min() >= config.min_velocity
        assert model.max() <= config.max_velocity

    def test_flat_layers_are_laterally_constant(self):
        model = flat_layer_model(VelocityModelConfig(shape=(32, 32)), rng=1)
        np.testing.assert_allclose(model, np.repeat(model[:, :1], 32, axis=1))

    def test_velocity_increases_with_depth_when_requested(self):
        model = flat_layer_model(VelocityModelConfig(shape=(64, 16)), rng=2)
        profile = model[:, 0]
        assert np.all(np.diff(profile) >= -1e-9)

    def test_layer_count_respected(self):
        config = VelocityModelConfig(shape=(40, 40), min_layers=3, max_layers=3)
        model = flat_layer_model(config, rng=3)
        assert len(np.unique(model[:, 0])) == 3

    def test_curved_layers_vary_laterally(self):
        config = VelocityModelConfig(shape=(48, 48), min_layers=3, max_layers=5)
        model = curved_layer_model(config, rng=4)
        lateral_variation = np.abs(np.diff(model, axis=1)).sum()
        assert lateral_variation > 0

    def test_fault_model_has_lateral_discontinuity(self):
        config = VelocityModelConfig(shape=(48, 48), min_layers=3, max_layers=5)
        model = flat_fault_model(config, rng=5)
        jumps = np.abs(np.diff(model, axis=1)).max(axis=0)
        assert jumps.max() > 0

    def test_random_models_batch(self):
        batch = random_velocity_models(4, VelocityModelConfig(shape=(16, 16)), rng=6)
        assert batch.shape == (4, 16, 16)

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError):
            random_velocity_models(2, family="bogus")

    def test_layer_profile(self):
        model = flat_layer_model(VelocityModelConfig(shape=(16, 16)), rng=7)
        profile = layer_profile(model)
        np.testing.assert_allclose(profile, model[:, 0])

    def test_deterministic_given_seed(self):
        config = VelocityModelConfig(shape=(16, 16))
        np.testing.assert_array_equal(flat_layer_model(config, rng=11),
                                      flat_layer_model(config, rng=11))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_generated_models_always_within_bounds(self, seed):
        config = VelocityModelConfig(shape=(24, 24))
        for generator in (flat_layer_model, curved_layer_model, flat_fault_model):
            model = generator(config, rng=seed)
            assert model.min() >= config.min_velocity - 1e-9
            assert model.max() <= config.max_velocity + 1e-9


class TestSimulationConfig:
    def test_cfl_check_passes_for_stable_dt(self):
        config = SimulationConfig(dx=10.0, dz=10.0, dt=0.001, n_steps=10)
        config.validate_cfl(4500.0)

    def test_cfl_check_fails_for_unstable_dt(self):
        config = SimulationConfig(dx=1.0, dz=1.0, dt=0.01, n_steps=10)
        with pytest.raises(ValueError):
            config.validate_cfl(4500.0)

    def test_stable_dt_is_stable(self):
        config = SimulationConfig(dx=10.0, dz=10.0, n_steps=10)
        dt = config.stable_dt(4500.0)
        stable = SimulationConfig(dx=10.0, dz=10.0, dt=dt, n_steps=10)
        stable.validate_cfl(4500.0)

    def test_invalid_spatial_order(self):
        with pytest.raises(ValueError):
            SimulationConfig(spatial_order=3)


class TestAcousticSimulator:
    def _small_sim(self, n_steps=80, order=4):
        velocity = np.full((24, 24), 2000.0)
        boundary = SpongeBoundary(width=4)
        config = SimulationConfig(dx=10.0, dz=10.0, dt=0.002, n_steps=n_steps,
                                  spatial_order=order, boundary=boundary)
        return AcousticSimulator2D(velocity, config), config

    def test_gather_shape(self):
        simulator, config = self._small_sim()
        wavelet = ricker_wavelet(config.n_steps, config.dt, 10.0)
        receivers = [(1, c) for c in range(0, 24, 4)]
        gather = simulator.simulate_shot((1, 12), wavelet, receivers)
        assert gather.shape == (config.n_steps, len(receivers))

    def test_energy_reaches_receivers(self):
        simulator, config = self._small_sim()
        wavelet = ricker_wavelet(config.n_steps, config.dt, 10.0)
        gather = simulator.simulate_shot((1, 12), wavelet, [(1, 4), (1, 20)])
        assert np.abs(gather).max() > 0

    def test_wave_arrives_later_at_farther_receiver(self):
        velocity = np.full((32, 64), 2000.0)
        config = SimulationConfig(dx=10.0, dz=10.0, dt=0.002, n_steps=150,
                                  boundary=SpongeBoundary(width=5))
        simulator = AcousticSimulator2D(velocity, config)
        wavelet = ricker_wavelet(config.n_steps, config.dt, 10.0)
        gather = simulator.simulate_shot((1, 5), wavelet, [(1, 15), (1, 45)])
        near = np.argmax(np.abs(gather[:, 0]) > 0.1 * np.abs(gather[:, 0]).max())
        far = np.argmax(np.abs(gather[:, 1]) > 0.1 * np.abs(gather[:, 1]).max())
        assert far > near

    def test_simulation_remains_bounded(self):
        """The sponge boundary keeps the explicit scheme stable."""
        simulator, config = self._small_sim(n_steps=200)
        wavelet = ricker_wavelet(config.n_steps, config.dt, 10.0)
        gather = simulator.simulate_shot((1, 12), wavelet, [(1, 6)])
        assert np.all(np.isfinite(gather))
        peak_wavelet_energy = np.abs(gather[:60]).max()
        assert np.abs(gather[-20:]).max() < 10 * peak_wavelet_energy

    def test_second_and_eighth_order_agree_roughly(self):
        velocity = np.full((24, 24), 2000.0)
        gathers = {}
        for order in (2, 8):
            config = SimulationConfig(dx=10.0, dz=10.0, dt=0.0015, n_steps=100,
                                      spatial_order=order,
                                      boundary=SpongeBoundary(width=4))
            simulator = AcousticSimulator2D(velocity, config)
            wavelet = ricker_wavelet(config.n_steps, config.dt, 10.0)
            gathers[order] = simulator.simulate_shot((1, 12), wavelet, [(1, 18)])
        correlation = np.corrcoef(gathers[2].ravel(), gathers[8].ravel())[0, 1]
        assert correlation > 0.9

    def test_rejects_bad_velocity(self):
        with pytest.raises(ValueError):
            AcousticSimulator2D(np.full((10, 10), -1.0))
        with pytest.raises(ValueError):
            AcousticSimulator2D(np.ones(10))

    def test_rejects_out_of_grid_source_or_receiver(self):
        simulator, config = self._small_sim(n_steps=5)
        wavelet = ricker_wavelet(5, config.dt, 10.0)
        with pytest.raises(ValueError):
            simulator.simulate_shot((100, 0), wavelet, [(1, 1)])
        with pytest.raises(ValueError):
            simulator.simulate_shot((1, 1), wavelet, [(100, 0)])

    def test_wavefield_snapshots(self):
        simulator, config = self._small_sim(n_steps=40)
        wavelet = ricker_wavelet(40, config.dt, 10.0)
        gather, snapshots = simulator.simulate_shot((1, 12), wavelet, [(1, 6)],
                                                    record_wavefield=True,
                                                    wavefield_stride=10)
        assert len(snapshots) == 4
        assert snapshots[0].shape == (24, 24)


class TestForwardModel:
    def test_shot_gather_layout(self):
        gather = forward_model_shot_gather(np.full((20, 20), 2000.0),
                                           n_sources=3, n_steps=60)
        assert gather.shape == (3, 60, 20)

    def test_normalised_amplitude(self):
        gather = forward_model_shot_gather(np.full((20, 20), 2000.0),
                                           n_sources=2, n_steps=60)
        assert np.abs(gather).max() == pytest.approx(1.0)

    def test_different_velocities_give_different_data(self):
        slow = forward_model_shot_gather(np.full((20, 20), 1600.0),
                                         n_sources=1, n_steps=80, dx=20.0)
        fast = forward_model_shot_gather(np.full((20, 20), 4000.0),
                                         n_sources=1, n_steps=80, dx=20.0)
        assert not np.allclose(slow, fast)

    def test_forward_model_class(self):
        survey = SurveyGeometry(n_sources=2, n_receivers=10, nx=20)
        config = SimulationConfig(dx=20.0, dz=20.0, dt=0.002, n_steps=50,
                                  boundary=SpongeBoundary(width=4))
        model = ForwardModel(survey=survey, config=config)
        gather = model.model_shots(np.full((20, 20), 2500.0))
        assert gather.shape == (2, 50, 10)

    def test_forward_model_rejects_wrong_width(self):
        survey = SurveyGeometry(n_sources=2, n_receivers=10, nx=20)
        config = SimulationConfig(dx=20.0, dz=20.0, dt=0.002, n_steps=10,
                                  boundary=SpongeBoundary(width=4))
        model = ForwardModel(survey=survey, config=config)
        with pytest.raises(ValueError):
            model.model_shots(np.full((20, 30), 2500.0))

    def test_layered_model_produces_reflections(self):
        """A velocity contrast must change the recorded wavefield."""
        homogeneous = np.full((32, 32), 1800.0)
        layered = homogeneous.copy()
        layered[16:, :] = 4200.0
        # Fixed dt so both records share the same time axis; 350 steps cover
        # the ~0.4 s two-way travel time to the interface.
        gather_h = forward_model_shot_gather(homogeneous, n_sources=1,
                                             n_steps=350, dx=21.875, dt=0.002)
        gather_l = forward_model_shot_gather(layered, n_sources=1,
                                             n_steps=350, dx=21.875, dt=0.002)
        # The early record (direct wave near the source) is similar, but the
        # interface must change the later part of the record.
        late_difference = np.abs(gather_l[0, 150:, :] - gather_h[0, 150:, :]).mean()
        early_scale = np.abs(gather_h[0, :100, :]).mean()
        assert late_difference > 0.1 * early_scale
