"""Tests for QuGeoVQC, QuBatchVQC and the classical baselines."""

import numpy as np
import pytest

from repro.core.classical_models import (
    ClassicalFWIModel,
    CompressionCNN,
    build_cnn_ly,
    build_cnn_px,
)
from repro.core.config import QuGeoVQCConfig
from repro.core.losses import layer_loss, pixel_loss, row_profile
from repro.core.qubatch import QuBatchVQC
from repro.core.vqc_model import QuGeoVQC


def _small_config(decoder="layer", n_batch_qubits=0):
    return QuGeoVQCConfig(n_groups=1, qubits_per_group=6, n_blocks=2,
                          decoder=decoder, output_shape=(6, 6),
                          n_batch_qubits=n_batch_qubits)


def _sample(seed=0, size=64, shape=(6, 6)):
    rng = np.random.default_rng(seed)
    return rng.normal(size=size), rng.random(shape)


class TestQuGeoVQCConstruction:
    def test_paper_parameter_count(self):
        model = QuGeoVQC(QuGeoVQCConfig(), rng=0)
        assert model.num_parameters() == 576

    def test_rejects_batch_qubits(self):
        with pytest.raises(ValueError):
            QuGeoVQC(QuGeoVQCConfig(n_batch_qubits=1), rng=0)

    def test_name_follows_decoder(self):
        assert QuGeoVQC(_small_config("pixel"), rng=0).name == "Q-M-PX"
        assert QuGeoVQC(_small_config("layer"), rng=0).name == "Q-M-LY"

    def test_multi_group_circuit(self):
        config = QuGeoVQCConfig(n_groups=2, qubits_per_group=3, n_blocks=2,
                                decoder="layer", output_shape=(6, 6))
        model = QuGeoVQC(config, rng=0)
        assert model.n_qubits == 6
        assert model.num_parameters() > 0

    def test_parameter_tensors_for_each_decoder(self):
        layer_model = QuGeoVQC(_small_config("layer"), rng=0)
        pixel_model = QuGeoVQC(_small_config("pixel"), rng=0)
        assert len(layer_model.parameter_tensors()) == 1
        assert len(pixel_model.parameter_tensors()) == 2


class TestQuGeoVQCForward:
    def test_prediction_shape_and_range_layer(self):
        model = QuGeoVQC(_small_config("layer"), rng=1)
        seismic, _ = _sample()
        prediction = model.predict(seismic)
        assert prediction.shape == (6, 6)
        assert prediction.min() >= 0.0
        assert prediction.max() <= 1.0

    def test_layer_prediction_constant_across_rows(self):
        model = QuGeoVQC(_small_config("layer"), rng=1)
        seismic, _ = _sample()
        prediction = model.predict(seismic)
        np.testing.assert_allclose(prediction,
                                   np.repeat(prediction[:, :1], 6, axis=1))

    def test_prediction_shape_pixel(self):
        model = QuGeoVQC(_small_config("pixel"), rng=1)
        seismic, _ = _sample()
        prediction = model.predict(seismic)
        assert prediction.shape == (6, 6)
        assert np.all(prediction >= 0.0)

    def test_predict_batch(self):
        model = QuGeoVQC(_small_config("layer"), rng=1)
        batch = [np.random.default_rng(i).normal(size=64) for i in range(3)]
        predictions = model.predict_batch(batch)
        assert predictions.shape == (3, 6, 6)

    def test_different_inputs_give_different_outputs(self):
        model = QuGeoVQC(_small_config("layer"), rng=1)
        a = model.predict(_sample(1)[0])
        b = model.predict(_sample(2)[0])
        assert not np.allclose(a, b)

    def test_state_norm_preserved(self):
        model = QuGeoVQC(_small_config("layer"), rng=1)
        state = model.run_circuit(_sample()[0])
        assert np.linalg.norm(state) == pytest.approx(1.0)


class TestQuGeoVQCGradients:
    @pytest.mark.parametrize("decoder", ["layer", "pixel"])
    def test_gradients_match_finite_differences(self, decoder):
        model = QuGeoVQC(_small_config(decoder), rng=2)
        seismic, target = _sample(3)
        loss, grads = model.loss_and_gradients(seismic, target)
        assert loss > 0
        epsilon = 1e-6
        for index in [0, 7, len(model.theta.data) - 1]:
            model.theta.data[index] += epsilon
            plus, _ = model.loss_and_gradients(seismic, target)
            model.theta.data[index] -= 2 * epsilon
            minus, _ = model.loss_and_gradients(seismic, target)
            model.theta.data[index] += epsilon
            numeric = (plus - minus) / (2 * epsilon)
            assert grads["theta"][index] == pytest.approx(numeric, abs=1e-5)

    def test_output_scale_gradient(self):
        model = QuGeoVQC(_small_config("pixel"), rng=2)
        seismic, target = _sample(4)
        _, grads = model.loss_and_gradients(seismic, target)
        epsilon = 1e-6
        model.output_scale.data[0] += epsilon
        plus, _ = model.loss_and_gradients(seismic, target)
        model.output_scale.data[0] -= 2 * epsilon
        minus, _ = model.loss_and_gradients(seismic, target)
        model.output_scale.data[0] += epsilon
        assert grads["output_scale"][0] == pytest.approx((plus - minus) / (2 * epsilon),
                                                         abs=1e-6)

    def test_accumulate_gradients_sums(self):
        model = QuGeoVQC(_small_config("layer"), rng=2)
        seismic, target = _sample(5)
        model.accumulate_gradients(seismic, target, weight=1.0)
        first = model.theta.grad.copy()
        model.accumulate_gradients(seismic, target, weight=1.0)
        np.testing.assert_allclose(model.theta.grad, 2 * first)

    def test_wrong_target_shape_raises(self):
        model = QuGeoVQC(_small_config("layer"), rng=2)
        with pytest.raises(ValueError):
            model.loss_and_gradients(np.zeros(64), np.zeros((3, 3)))

    def test_training_step_reduces_loss(self):
        """A few Adam steps on one sample must reduce its loss."""
        from repro.nn import Adam

        model = QuGeoVQC(_small_config("layer"), rng=3)
        seismic, _ = _sample(6)
        # A layered (row-constant) target, which the layer decoder can fit.
        rows = np.linspace(0.2, 0.9, 6)
        target = np.repeat(rows[:, None], 6, axis=1)
        optimizer = Adam(model.parameter_tensors(), lr=0.1)
        initial, _ = model.loss_and_gradients(seismic, target)
        for _ in range(30):
            optimizer.zero_grad()
            model.accumulate_gradients(seismic, target)
            optimizer.step()
        final, _ = model.loss_and_gradients(seismic, target)
        assert final < 0.5 * initial


class TestQuGeoVQCSerialisation:
    def test_state_dict_roundtrip(self):
        model = QuGeoVQC(_small_config("pixel"), rng=4)
        state = model.state_dict()
        other = QuGeoVQC(_small_config("pixel"), rng=99)
        other.load_state_dict(state)
        np.testing.assert_array_equal(model.theta.data, other.theta.data)
        seismic, _ = _sample(7)
        np.testing.assert_allclose(model.predict(seismic), other.predict(seismic))

    def test_load_rejects_wrong_shape(self):
        model = QuGeoVQC(_small_config("layer"), rng=4)
        with pytest.raises(ValueError):
            model.load_state_dict({"theta": np.zeros(3)})


class TestQuBatchVQC:
    def test_qubit_accounting(self):
        model = QuBatchVQC(_small_config("layer", n_batch_qubits=2), rng=5)
        assert model.batch_capacity == 4
        assert model.extra_qubits == 2
        assert model.n_qubits == 8

    def test_requires_batch_qubits(self):
        with pytest.raises(ValueError):
            QuBatchVQC(_small_config("layer", n_batch_qubits=0), rng=5)

    def test_same_parameter_count_as_unbatched(self):
        batched = QuBatchVQC(_small_config("layer", n_batch_qubits=1), rng=5)
        plain = QuGeoVQC(_small_config("layer"), rng=5)
        assert batched.num_parameters() == plain.num_parameters()

    def test_batched_prediction_matches_unbatched_model(self):
        """With identical parameters, QuBatch must reproduce the per-sample
        predictions of the plain model (the SIMD property of Figure 3)."""
        config_plain = _small_config("layer")
        config_batch = _small_config("layer", n_batch_qubits=1)
        plain = QuGeoVQC(config_plain, rng=6)
        batched = QuBatchVQC(config_batch, rng=7)
        batched.theta.data = plain.theta.data.copy()
        samples = [np.random.default_rng(i).normal(size=64) for i in range(2)]
        expected = np.stack([plain.predict(s) for s in samples])
        actual = batched.predict_batch(samples)
        np.testing.assert_allclose(actual, expected, atol=1e-9)

    def test_batched_pixel_prediction_matches_unbatched(self):
        plain = QuGeoVQC(_small_config("pixel"), rng=8)
        batched = QuBatchVQC(_small_config("pixel", n_batch_qubits=1), rng=9)
        batched.theta.data = plain.theta.data.copy()
        batched.output_scale.data = plain.output_scale.data.copy()
        samples = [np.random.default_rng(i + 10).normal(size=64) for i in range(2)]
        expected = np.stack([plain.predict(s) for s in samples])
        np.testing.assert_allclose(batched.predict_batch(samples), expected,
                                   atol=1e-9)

    @pytest.mark.parametrize("decoder", ["layer", "pixel"])
    def test_gradients_match_finite_differences(self, decoder):
        model = QuBatchVQC(_small_config(decoder, n_batch_qubits=1), rng=10)
        samples = [np.random.default_rng(i + 20).normal(size=64) for i in range(2)]
        targets = [np.random.default_rng(i + 30).random((6, 6)) for i in range(2)]
        loss, grads = model.loss_and_gradients(samples, targets)
        assert loss > 0
        epsilon = 1e-6
        for index in [0, 11, len(model.theta.data) - 1]:
            model.theta.data[index] += epsilon
            plus, _ = model.loss_and_gradients(samples, targets)
            model.theta.data[index] -= 2 * epsilon
            minus, _ = model.loss_and_gradients(samples, targets)
            model.theta.data[index] += epsilon
            assert grads["theta"][index] == pytest.approx(
                (plus - minus) / (2 * epsilon), abs=1e-5)

    def test_batch_loss_close_to_mean_of_individual_losses(self):
        """QuBatch normalisation changes precision, not the objective itself."""
        plain = QuGeoVQC(_small_config("layer"), rng=11)
        batched = QuBatchVQC(_small_config("layer", n_batch_qubits=1), rng=12)
        batched.theta.data = plain.theta.data.copy()
        samples = [np.random.default_rng(i + 40).normal(size=64) for i in range(2)]
        targets = [np.random.default_rng(i + 50).random((6, 6)) for i in range(2)]
        individual = np.mean([plain.loss_and_gradients(s, t)[0]
                              for s, t in zip(samples, targets)])
        batch_loss, _ = batched.loss_and_gradients(samples, targets)
        assert batch_loss == pytest.approx(individual, rel=1e-6)

    def test_over_capacity_predictions_chunk(self):
        """predict_batch splits batches beyond the circuit capacity."""
        model = QuBatchVQC(_small_config("layer", n_batch_qubits=1), rng=13)
        samples = [np.random.default_rng(i + 60).normal(size=64)
                   for i in range(3)]
        chunked = model.predict_batch(samples)
        manual = np.concatenate([model.predict_batch(samples[:2]),
                                 model.predict_batch(samples[2:])], axis=0)
        np.testing.assert_array_equal(chunked, manual)

    def test_over_capacity_training_raises(self):
        model = QuBatchVQC(_small_config("layer", n_batch_qubits=1), rng=13)
        samples = [np.zeros(64)] * 3
        with pytest.raises(ValueError):
            model.loss_and_gradients(samples, [np.zeros((6, 6))] * 3)

    def test_state_dict_roundtrip(self):
        model = QuBatchVQC(_small_config("layer", n_batch_qubits=1), rng=14)
        other = QuBatchVQC(_small_config("layer", n_batch_qubits=1), rng=15)
        other.load_state_dict(model.state_dict())
        np.testing.assert_array_equal(model.theta.data, other.theta.data)


class TestClassicalModels:
    def test_cnn_px_parameter_budget(self):
        model = build_cnn_px(256, (8, 8), rng=0)
        assert model.num_parameters() == 634

    def test_cnn_ly_parameter_budget(self):
        model = build_cnn_ly(256, (8, 8), rng=0)
        assert 550 <= model.num_parameters() <= 700

    def test_parameter_budgets_at_same_level_as_quantum(self):
        """Table 2 premise: all models sit at the same parameter scale."""
        quantum = QuGeoVQC(QuGeoVQCConfig(), rng=0).num_parameters()
        for builder in (build_cnn_px, build_cnn_ly):
            classical = builder(256, (8, 8), rng=0).num_parameters()
            assert abs(classical - quantum) / quantum < 0.25

    def test_cnn_px_prediction_shape(self):
        model = build_cnn_px(256, (8, 8), rng=0)
        prediction = model.predict_velocity(np.random.default_rng(0).normal(size=(3, 256)))
        assert prediction.shape == (3, 8, 8)

    def test_cnn_ly_prediction_constant_rows(self):
        model = build_cnn_ly(256, (8, 8), rng=0)
        prediction = model.predict_velocity(np.random.default_rng(0).normal(size=(2, 256)))
        assert prediction.shape == (2, 8, 8)
        np.testing.assert_allclose(prediction,
                                   np.repeat(prediction[:, :, :1], 8, axis=2))

    def test_prepare_input_validates_size(self):
        model = build_cnn_px(256, (8, 8), rng=0)
        with pytest.raises(ValueError):
            model.prepare_input(np.zeros(100))

    def test_invalid_decoder_rejected(self):
        from repro.nn import Sequential, ReLU

        with pytest.raises(ValueError):
            ClassicalFWIModel(network=Sequential(ReLU()), input_shape=(1, 4, 4),
                              output_shape=(4, 4), decoder="bogus", name="x")

    def test_compression_cnn_output_size(self):
        model = CompressionCNN(input_shape=(3, 32, 16), output_size=64, rng=0)
        out = model.compress(np.random.default_rng(0).normal(size=(3, 32, 16)))
        assert out.shape == (64,)

    def test_compression_cnn_validates_input(self):
        model = CompressionCNN(input_shape=(3, 32, 16), output_size=64, rng=0)
        with pytest.raises(ValueError):
            model.compress(np.zeros((2, 32, 16)))

    def test_compression_cnn_invalid_config(self):
        with pytest.raises(ValueError):
            CompressionCNN(input_shape=(0, 8, 8), output_size=4)
        with pytest.raises(ValueError):
            CompressionCNN(input_shape=(1, 8, 8), output_size=0)


class TestLosses:
    def test_pixel_loss_zero_for_match(self):
        target = np.random.default_rng(0).random((8, 8))
        assert pixel_loss(target, target) == 0.0

    def test_pixel_loss_known_value(self):
        assert pixel_loss(np.ones((2, 2)), np.zeros((2, 2))) == pytest.approx(1.0)

    def test_layer_loss_zero_for_flat_map(self):
        rows = np.array([0.2, 0.5, 0.9])
        target = np.repeat(rows[:, None], 4, axis=1)
        assert layer_loss(rows, target) == pytest.approx(0.0)

    def test_layer_loss_penalises_lateral_variation(self):
        target = np.array([[0.0, 1.0], [0.0, 1.0]])
        best_rows = row_profile(target)
        assert layer_loss(best_rows, target) == pytest.approx(0.25)

    def test_row_profile(self):
        target = np.array([[0.0, 1.0], [1.0, 1.0]])
        np.testing.assert_allclose(row_profile(target), [0.5, 1.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            pixel_loss(np.zeros((2, 2)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            layer_loss(np.zeros(3), np.zeros((4, 4)))
