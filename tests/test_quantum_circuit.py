"""Tests for Statevector, ParameterizedCircuit, measurement and ansatz modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import (
    ParameterizedCircuit,
    Statevector,
    grouped_st_ansatz,
    marginal_probabilities,
    u3_cu3_ansatz,
    z_expectations,
)
from repro.quantum.ansatz import ansatz_parameter_count, u3_cu3_block
from repro.quantum.measurement import (
    all_probabilities,
    conditional_block_probabilities,
    marginal_probabilities_backward,
    z_expectations_backward,
)


def _random_state(n_qubits, seed=0):
    rng = np.random.default_rng(seed)
    state = rng.normal(size=2**n_qubits) + 1j * rng.normal(size=2**n_qubits)
    return state / np.linalg.norm(state)


class TestStatevector:
    def test_zero_state(self):
        state = Statevector.zero_state(3)
        assert state.n_qubits == 3
        assert state.probabilities()[0] == pytest.approx(1.0)

    def test_basis_state(self):
        state = Statevector.basis_state(2, 3)
        np.testing.assert_allclose(state.probabilities(), [0, 0, 0, 1])

    def test_normalisation_on_construction(self):
        state = Statevector([1.0, 1.0, 1.0, 1.0])
        assert state.norm() == pytest.approx(1.0)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            Statevector([1.0, 0.0, 0.0])

    def test_rejects_zero_vector(self):
        with pytest.raises(ValueError):
            Statevector([0.0, 0.0])

    def test_rejects_unnormalised_when_flagged(self):
        with pytest.raises(ValueError):
            Statevector([2.0, 0.0], normalize=False)

    def test_apply_gate(self):
        from repro.quantum.gates import GATES
        out = Statevector.zero_state(1).apply(GATES["X"], (0,))
        np.testing.assert_allclose(out.amplitudes, [0.0, 1.0])

    def test_fidelity_self_is_one(self):
        state = Statevector(_random_state(3, 1), normalize=False)
        assert state.fidelity(state) == pytest.approx(1.0)

    def test_fidelity_orthogonal_is_zero(self):
        a = Statevector.basis_state(2, 0)
        b = Statevector.basis_state(2, 3)
        assert a.fidelity(b) == pytest.approx(0.0)

    def test_expectation_z_of_basis_states(self):
        assert Statevector.zero_state(1).expectation_z(0) == pytest.approx(1.0)
        assert Statevector.basis_state(1, 1).expectation_z(0) == pytest.approx(-1.0)

    def test_len(self):
        assert len(Statevector.zero_state(3)) == 8


class TestParameterizedCircuit:
    def test_add_fixed_gate(self):
        circuit = ParameterizedCircuit(2).add_gate("H", (0,)).add_gate("CNOT", (0, 1))
        assert len(circuit) == 2
        assert circuit.n_params == 0

    def test_add_parametric_allocates_params(self):
        circuit = ParameterizedCircuit(2)
        circuit.add_parametric_gate("U3", (0,))
        circuit.add_parametric_gate("CU3", (0, 1))
        assert circuit.n_params == 6

    def test_shared_parameters(self):
        circuit = ParameterizedCircuit(2)
        circuit.add_parametric_gate("RX", (0,))
        circuit.add_parametric_gate("RX", (1,), param_indices=(0,))
        assert circuit.n_params == 1

    def test_unknown_gate_raises(self):
        with pytest.raises(ValueError):
            ParameterizedCircuit(1).add_gate("BOGUS", (0,))
        with pytest.raises(ValueError):
            ParameterizedCircuit(1).add_parametric_gate("BOGUS", (0,))

    def test_qubit_validation(self):
        with pytest.raises(ValueError):
            ParameterizedCircuit(2).add_gate("H", (5,))
        with pytest.raises(ValueError):
            ParameterizedCircuit(2).add_gate("CNOT", (0, 0))
        with pytest.raises(ValueError):
            ParameterizedCircuit(2).add_gate("CNOT", (0,))

    def test_run_preserves_norm(self):
        circuit = u3_cu3_ansatz(3, n_blocks=2)
        params = np.random.default_rng(0).normal(size=circuit.n_params)
        out = circuit.run(_random_state(3, 2), params)
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_run_validates_lengths(self):
        circuit = u3_cu3_ansatz(2, n_blocks=1)
        with pytest.raises(ValueError):
            circuit.run(np.ones(3, dtype=complex), np.zeros(circuit.n_params))
        with pytest.raises(ValueError):
            circuit.run(_random_state(2), np.zeros(circuit.n_params + 1))

    def test_run_intermediates_count(self):
        circuit = u3_cu3_ansatz(2, n_blocks=1)
        params = np.zeros(circuit.n_params)
        _, intermediates = circuit.run(_random_state(2), params,
                                       return_intermediate=True)
        assert len(intermediates) == len(circuit)

    def test_identity_params_give_identity_u3(self):
        circuit = ParameterizedCircuit(2)
        circuit.add_parametric_gate("U3", (0,))
        circuit.add_parametric_gate("U3", (1,))
        state = _random_state(2, 3)
        out = circuit.run(state, np.zeros(circuit.n_params))
        np.testing.assert_allclose(out, state, atol=1e-12)

    def test_extend_reindexes_parameters(self):
        a = ParameterizedCircuit(2)
        a.add_parametric_gate("RX", (0,))
        b = ParameterizedCircuit(2)
        b.add_parametric_gate("RY", (1,))
        a.extend(b)
        assert a.n_params == 2
        assert a.ops[1].param_indices == (1,)

    def test_extend_rejects_size_mismatch(self):
        with pytest.raises(ValueError):
            ParameterizedCircuit(2).extend(ParameterizedCircuit(3))

    def test_depth_estimate_positive(self):
        circuit = u3_cu3_ansatz(4, n_blocks=2)
        assert circuit.depth_estimate() >= 2


class TestAnsatz:
    def test_parameter_count_matches_paper(self):
        """8 qubits x 12 blocks is the paper's 576-parameter configuration."""
        circuit = u3_cu3_ansatz(8, n_blocks=12)
        assert circuit.n_params == 576
        assert ansatz_parameter_count(8, 12) == 576

    def test_parameter_count_formula(self):
        for n_qubits in (2, 3, 5):
            for n_blocks in (1, 4):
                circuit = u3_cu3_ansatz(n_qubits, n_blocks=n_blocks)
                assert circuit.n_params == ansatz_parameter_count(n_qubits, n_blocks)

    def test_single_qubit_ansatz_has_no_entanglers(self):
        circuit = u3_cu3_ansatz(1, n_blocks=3)
        assert all(op.name == "U3" for op in circuit.ops)

    def test_block_on_subset_leaves_other_qubits_alone(self):
        circuit = ParameterizedCircuit(4)
        u3_cu3_block(circuit, (1, 2))
        touched = {q for op in circuit.ops for q in op.qubits}
        assert touched == {1, 2}

    def test_ansatz_on_subset_for_qubatch(self):
        circuit = u3_cu3_ansatz(5, n_blocks=2, qubits=(1, 2, 3, 4))
        touched = {q for op in circuit.ops for q in op.qubits}
        assert 0 not in touched

    def test_grouped_ansatz_entangles_groups(self):
        groups = [(0, 1), (2, 3)]
        circuit = grouped_st_ansatz(groups, 4, n_blocks=1, inter_group_blocks=1)
        cross = [op for op in circuit.ops
                 if len(op.qubits) == 2 and
                 ((op.qubits[0] in groups[0]) != (op.qubits[1] in groups[0]))]
        assert cross, "expected at least one cross-group entangling gate"

    def test_grouped_ansatz_requires_groups(self):
        with pytest.raises(ValueError):
            grouped_st_ansatz([], 4)

    def test_invalid_blocks_raise(self):
        with pytest.raises(ValueError):
            u3_cu3_ansatz(3, n_blocks=0)


class TestMeasurement:
    def test_z_expectation_of_basis_states(self):
        state = np.zeros(4, dtype=complex)
        state[0] = 1.0  # |00>
        np.testing.assert_allclose(z_expectations(state, [0, 1], 2), [1.0, 1.0])
        state = np.zeros(4, dtype=complex)
        state[3] = 1.0  # |11>
        np.testing.assert_allclose(z_expectations(state, [0, 1], 2), [-1.0, -1.0])

    def test_z_expectation_of_superposition(self):
        state = np.array([1.0, 1.0, 0.0, 0.0], dtype=complex) / np.sqrt(2)
        np.testing.assert_allclose(z_expectations(state, [0, 1], 2), [1.0, 0.0],
                                   atol=1e-12)

    def test_z_expectation_bounds(self):
        state = _random_state(4, 9)
        values = z_expectations(state, range(4), 4)
        assert np.all(np.abs(values) <= 1.0 + 1e-12)

    def test_marginal_probabilities_sum_to_one(self):
        state = _random_state(4, 10)
        probs = marginal_probabilities(state, (1, 3), 4)
        assert probs.shape == (4,)
        assert probs.sum() == pytest.approx(1.0)

    def test_marginal_of_all_qubits_is_full_distribution(self):
        state = _random_state(3, 11)
        probs = marginal_probabilities(state, (0, 1, 2), 3)
        np.testing.assert_allclose(probs, np.abs(state) ** 2)

    def test_marginal_qubit_order_matters(self):
        state = np.zeros(4, dtype=complex)
        state[1] = 1.0  # |01>: qubit0=0, qubit1=1
        np.testing.assert_allclose(marginal_probabilities(state, (0, 1), 2),
                                   [0, 1, 0, 0])
        np.testing.assert_allclose(marginal_probabilities(state, (1, 0), 2),
                                   [0, 0, 1, 0])

    def test_all_probabilities(self):
        state = _random_state(3, 12)
        np.testing.assert_allclose(all_probabilities(state), np.abs(state) ** 2)

    def test_invalid_qubits_raise(self):
        state = _random_state(2, 13)
        with pytest.raises(ValueError):
            z_expectations(state, [5], 2)
        with pytest.raises(ValueError):
            marginal_probabilities(state, (0, 0), 2)

    def test_conditional_block_probabilities(self):
        state = _random_state(3, 14)
        blocks, totals = conditional_block_probabilities(state, 1, 3)
        assert blocks.shape == (2, 4)
        assert totals.sum() == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_z_backward_matches_finite_difference(self, seed):
        n = 3
        state = _random_state(n, seed)
        rng = np.random.default_rng(seed + 1)
        grad_out = rng.normal(size=n)

        def loss(psi):
            return float(np.dot(grad_out, z_expectations(psi, range(n), n)))

        lam = z_expectations_backward(state, range(n), n, grad_out)
        # Directional derivative check: L(psi + eps*d) for a random direction.
        direction = rng.normal(size=2**n) + 1j * rng.normal(size=2**n)
        epsilon = 1e-7
        numeric = (loss(state + epsilon * direction) -
                   loss(state - epsilon * direction)) / (2 * epsilon)
        analytic = 2 * np.real(np.vdot(lam, direction))
        assert numeric == pytest.approx(analytic, rel=1e-4, abs=1e-7)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_marginal_backward_matches_finite_difference(self, seed):
        n = 3
        qubits = (0, 2)
        state = _random_state(n, seed)
        rng = np.random.default_rng(seed + 2)
        grad_out = rng.normal(size=4)

        def loss(psi):
            return float(np.dot(grad_out, marginal_probabilities(psi, qubits, n)))

        lam = marginal_probabilities_backward(state, qubits, n, grad_out)
        direction = rng.normal(size=2**n) + 1j * rng.normal(size=2**n)
        epsilon = 1e-7
        numeric = (loss(state + epsilon * direction) -
                   loss(state - epsilon * direction)) / (2 * epsilon)
        analytic = 2 * np.real(np.vdot(lam, direction))
        assert numeric == pytest.approx(analytic, rel=1e-4, abs=1e-7)
