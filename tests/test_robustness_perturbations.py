"""Tests for the perturbation layer, finite-shot readout and harness.

Covers the determinism contract (same (config, seed) -> bit-identical
perturbed view, invariant to subsetting), the fingerprint extension that
distinguishes perturbed from clean data, each perturbation family's physical
effect, finite-shot readout reproducibility/convergence, and the
degradation-curve harness end to end on a tiny model.
"""

import numpy as np
import pytest

from repro.core import QuGeoVQC
from repro.core.config import QuGeoVQCConfig
from repro.core.training import ArrayDataSource, evaluate_data_source
from repro.robustness import (
    DeadReceivers,
    FiniteShotReadout,
    GainJitter,
    PerturbedView,
    ShotDropout,
    TimeShift,
    TraceNoise,
    default_axes,
    evaluate_robustness,
    make_perturbation,
    perturbation_fingerprint,
    perturbation_from_config,
)

SAMPLE_SHAPE = (2, 32, 8)  # (sources, time, receivers)
N_FEATURES = int(np.prod(SAMPLE_SHAPE))


def _source(n_samples=6, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    seismic = rng.normal(size=(n_samples, N_FEATURES))
    velocity = rng.random(size=(n_samples, 6, 6))
    return ArrayDataSource(seismic, velocity)


def _sample(rng_seed=0):
    return np.random.default_rng(rng_seed).normal(size=SAMPLE_SHAPE)


class TestPerturbationFamilies:
    def test_trace_noise_hits_target_snr(self):
        sample = _sample()
        noisy = TraceNoise(snr_db=10.0).apply(sample,
                                              np.random.default_rng(0))
        noise = noisy - sample
        snr_db = 10.0 * np.log10(np.mean(sample**2) / np.mean(noise**2))
        assert snr_db == pytest.approx(10.0, abs=0.1)

    def test_trace_noise_respects_frequency_band(self):
        sample = _sample()
        band = (0.0, 0.25)
        noisy = TraceNoise(snr_db=0.0, band=band).apply(
            sample, np.random.default_rng(0))
        spectrum = np.fft.rfft(noisy - sample, axis=1)
        freqs = np.fft.rfftfreq(SAMPLE_SHAPE[1], d=1.0) / 0.5
        out_of_band = np.abs(spectrum[:, freqs > band[1], :])
        assert np.max(out_of_band) < 1e-8 * np.max(np.abs(spectrum))

    def test_dead_receivers_zeroes_whole_channels(self):
        sample = _sample()
        out = DeadReceivers(fraction=0.25).apply(sample,
                                                 np.random.default_rng(0))
        dead = np.all(out == 0.0, axis=(0, 1))
        assert dead.sum() == round(0.25 * SAMPLE_SHAPE[2])
        alive = ~dead
        assert np.array_equal(out[:, :, alive], sample[:, :, alive])

    def test_shot_dropout_zeroes_whole_sources(self):
        sample = _sample()
        out = ShotDropout(fraction=0.5).apply(sample,
                                              np.random.default_rng(0))
        dropped = np.all(out == 0.0, axis=(1, 2))
        assert dropped.sum() == 1  # round(0.5 * 2 sources)

    def test_gain_jitter_scales_each_channel_uniformly(self):
        sample = _sample()
        out = GainJitter(sigma=0.2).apply(sample, np.random.default_rng(0))
        gains = out / sample
        # every (source, time) cell of one receiver sees the same gain
        assert np.allclose(gains, gains[0:1, 0:1, :])
        assert not np.allclose(gains, 1.0)

    def test_time_shift_translates_without_wraparound(self):
        sample = _sample()
        out = TimeShift(max_shift=4).apply(sample, np.random.default_rng(1))
        assert out.shape == sample.shape
        assert not np.array_equal(out, sample)
        # a shifted trace is the original translated with zero fill; energy
        # can only be lost at the edges, never created
        assert np.sum(out**2) <= np.sum(sample**2) + 1e-9

    def test_zero_severity_is_identity(self):
        sample = _sample()
        rng = np.random.default_rng(0)
        assert np.array_equal(TimeShift(max_shift=0).apply(sample, rng),
                              sample)
        assert np.array_equal(DeadReceivers(fraction=0.0).apply(sample, rng),
                              sample)
        assert np.array_equal(ShotDropout(fraction=0.0).apply(sample, rng),
                              sample)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TraceNoise(band=(0.5, 0.2))
        with pytest.raises(ValueError):
            DeadReceivers(fraction=1.5)
        with pytest.raises(ValueError):
            ShotDropout(fraction=-0.1)
        with pytest.raises(ValueError):
            GainJitter(sigma=-1.0)
        with pytest.raises(ValueError):
            TimeShift(max_shift=-1)

    def test_config_round_trip(self):
        for perturbation in (TraceNoise(snr_db=7.5, band=(0.1, 0.6)),
                             DeadReceivers(fraction=0.3),
                             ShotDropout(fraction=0.4),
                             GainJitter(sigma=0.05),
                             TimeShift(max_shift=3)):
            rebuilt = perturbation_from_config(perturbation.config())
            assert rebuilt == perturbation

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown perturbation family"):
            perturbation_from_config({"family": "solar-flare"})
        with pytest.raises(ValueError, match="unknown perturbation family"):
            make_perturbation("solar-flare", 1.0)


class TestPerturbedView:
    def test_same_config_and_seed_is_bit_identical(self):
        source = _source()
        kwargs = dict(seed=3, sample_shape=SAMPLE_SHAPE)
        view_a = PerturbedView(source, [TraceNoise(10.0), GainJitter(0.2)],
                               **kwargs)
        view_b = PerturbedView(source, [TraceNoise(10.0), GainJitter(0.2)],
                               **kwargs)
        indices = np.arange(len(source))
        seismic_a, velocity_a = view_a.gather(indices)
        seismic_b, velocity_b = view_b.gather(indices)
        assert np.array_equal(seismic_a, seismic_b)
        assert np.array_equal(velocity_a, velocity_b)

    def test_different_seed_differs(self):
        source = _source()
        indices = np.arange(len(source))
        a, _ = PerturbedView(source, [TraceNoise(10.0)], seed=0,
                             sample_shape=SAMPLE_SHAPE).gather(indices)
        b, _ = PerturbedView(source, [TraceNoise(10.0)], seed=1,
                             sample_shape=SAMPLE_SHAPE).gather(indices)
        assert not np.array_equal(a, b)

    def test_velocity_passes_through_untouched(self):
        source = _source()
        view = PerturbedView(source, [TraceNoise(5.0)], seed=0,
                             sample_shape=SAMPLE_SHAPE)
        _, velocity = view.gather(np.arange(len(source)))
        assert np.array_equal(velocity, source.velocity)

    def test_per_sample_streams_do_not_depend_on_batching(self):
        source = _source()
        view = PerturbedView(source, [TraceNoise(10.0)], seed=0,
                             sample_shape=SAMPLE_SHAPE)
        all_at_once, _ = view.gather(np.arange(len(source)))
        one_by_one = np.concatenate(
            [view.gather([i])[0] for i in range(len(source))])
        assert np.array_equal(all_at_once, one_by_one)

    def test_fingerprint_differs_from_clean_and_keeps_base_keys(self):
        source = _source()
        view = PerturbedView(source, [TraceNoise(10.0)], seed=0,
                             sample_shape=SAMPLE_SHAPE)
        clean, perturbed = source.fingerprint(), view.fingerprint()
        assert perturbed != clean
        assert set(clean) <= set(perturbed)
        assert perturbed["perturbation"] == perturbation_fingerprint(
            view.perturbations, view.seed)

    def test_fingerprint_sensitive_to_recipe_and_seed(self):
        base = perturbation_fingerprint([TraceNoise(10.0)], 0)
        assert perturbation_fingerprint([TraceNoise(10.0)], 1) != base
        assert perturbation_fingerprint([TraceNoise(20.0)], 0) != base
        assert perturbation_fingerprint(
            [TraceNoise(10.0), GainJitter(0.1)], 0) != base

    def test_requires_sample_shape_or_source_attribute(self):
        source = _source()
        with pytest.raises(ValueError, match="sample_shape"):
            PerturbedView(source, [TraceNoise(10.0)], seed=0)
        # a PerturbedView itself advertises the shape, so views compose
        inner = PerturbedView(source, [TraceNoise(10.0)], seed=0,
                              sample_shape=SAMPLE_SHAPE)
        outer = PerturbedView(inner, [GainJitter(0.1)], seed=1)
        assert outer.seismic_sample_shape == SAMPLE_SHAPE
        assert len(outer) == len(source)

    def test_rejects_non_perturbations(self):
        with pytest.raises(TypeError):
            PerturbedView(_source(), ["noise"], seed=0,
                          sample_shape=SAMPLE_SHAPE)

    def test_describe_is_json_stable(self):
        import json
        view = PerturbedView(_source(), [TraceNoise(10.0)], seed=2,
                             sample_shape=SAMPLE_SHAPE)
        assert json.loads(json.dumps(view.describe())) == view.describe()


def _tiny_model():
    config = QuGeoVQCConfig(n_groups=1, qubits_per_group=6, n_blocks=2,
                            decoder="layer", output_shape=(6, 6))
    return QuGeoVQC(config, rng=0)


def _model_source(n_samples=4):
    rng = np.random.default_rng(0)
    seismic = rng.normal(size=(n_samples, 64))
    velocity = rng.random(size=(n_samples, 6, 6))
    return ArrayDataSource(seismic, velocity)


class TestFiniteShotReadout:
    def test_fixed_seed_is_bit_reproducible(self):
        model = _tiny_model()
        seismic = _model_source().seismic
        a = FiniteShotReadout(model, n_shots=256, rng=3).predict_batch(seismic)
        b = FiniteShotReadout(model, n_shots=256, rng=3).predict_batch(seismic)
        assert np.array_equal(a, b)

    def test_converges_to_ideal_decoder_with_shots(self):
        model = _tiny_model()
        seismic = _model_source().seismic
        ideal = model.predict_batch(seismic)
        few = FiniteShotReadout(model, 64, rng=0).predict_batch(seismic)
        many = FiniteShotReadout(model, 65536, rng=0).predict_batch(seismic)
        assert few.shape == ideal.shape
        assert (np.abs(many - ideal).max() < np.abs(few - ideal).max())
        assert np.abs(many - ideal).max() < 0.05

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            FiniteShotReadout(_tiny_model(), n_shots=0)
        with pytest.raises(TypeError, match="decode"):
            FiniteShotReadout(object(), n_shots=128)
        with pytest.raises(ValueError, match="empty"):
            FiniteShotReadout(_tiny_model(), 16).predict_batch(
                np.empty((0, 64)))

    def test_drops_into_evaluate_data_source(self):
        model = _tiny_model()
        source = _model_source()
        wrapped = FiniteShotReadout(model, n_shots=4096, rng=0)
        metrics = evaluate_data_source(wrapped, source, split="sampled")
        assert set(metrics) == {"sampled_ssim", "sampled_mse"}
        assert np.isfinite(metrics["sampled_ssim"])


class TestEvaluateRobustness:
    def test_emits_one_curve_per_axis_with_degradation(self):
        model = _tiny_model()
        source = _model_source()
        axes = [{"family": "noise", "severities": [20.0, 5.0]},
                {"family": "dead-receivers", "severities": [0.5]},
                {"family": "finite-shot", "severities": [512]}]
        report = evaluate_robustness(model, source, axes=axes, seeds=(0, 1),
                                     sample_shape=(2, 8, 4))
        assert set(report["baseline"]) == {"ssim", "mse"}
        assert [c["family"] for c in report["curves"]] == [
            "noise", "dead-receivers", "finite-shot"]
        for curve in report["curves"]:
            for point in curve["points"]:
                assert point["seeds"] == [0, 1]
                assert len(point["ssim"]) == 2
                assert point["ssim_degradation"] == pytest.approx(
                    report["baseline"]["ssim"] - point["ssim_mean"])
                assert np.isfinite(point["mse_mean"])

    def test_default_axes_cover_required_families(self):
        for quick in (False, True):
            families = {axis["family"] for axis in default_axes(quick)}
            assert {"noise", "dead-receivers", "finite-shot"} <= families

    def test_rejects_unknown_family_and_empty_seeds(self):
        model = _tiny_model()
        source = _model_source()
        with pytest.raises(ValueError, match="unknown family"):
            evaluate_robustness(model, source,
                                axes=[{"family": "nope", "severities": [1]}],
                                sample_shape=(2, 8, 4))
        with pytest.raises(ValueError, match="seed"):
            evaluate_robustness(model, source, seeds=(),
                                sample_shape=(2, 8, 4))
