"""Tests for the repro.telemetry observability subsystem."""

import json
import threading

import numpy as np
import pytest

from repro.telemetry import (
    ENV_VAR,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_SPAN,
    Stat,
    Telemetry,
    capture,
    get_telemetry,
    render_report,
)
from repro.telemetry.core import _resolve_mode


class TestModeResolution:
    @pytest.mark.parametrize("raw,expected", [
        ("off", "off"), ("", "off"), ("0", "off"), ("false", "off"),
        ("no", "off"), ("summary", "summary"), ("1", "summary"),
        ("on", "summary"), ("true", "summary"), ("TRACE", "trace"),
        (" Summary ", "summary"),
    ])
    def test_aliases(self, raw, expected):
        assert _resolve_mode(raw) == expected

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="telemetry mode"):
            _resolve_mode("verbose")

    def test_env_var_read_when_mode_is_none(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "trace")
        assert Telemetry().mode == "trace"
        monkeypatch.delenv(ENV_VAR)
        assert Telemetry().mode == "off"


class TestCountersAndGauges:
    def test_counter_increments(self):
        telemetry = Telemetry(mode="summary")
        telemetry.counter("hits").inc()
        telemetry.counter("hits").inc(4)
        assert telemetry.snapshot()["counters"]["hits"] == 5

    def test_gauge_keeps_last_value(self):
        telemetry = Telemetry(mode="summary")
        telemetry.gauge("batch").set(8)
        telemetry.gauge("batch").set(3.5)
        assert telemetry.snapshot()["gauges"]["batch"] == 3.5

    def test_disabled_mode_hands_out_shared_null_handles(self):
        telemetry = Telemetry(mode="off")
        assert telemetry.counter("x") is NULL_COUNTER
        assert telemetry.gauge("x") is NULL_GAUGE
        assert telemetry.span("x") is NULL_SPAN
        assert telemetry.timer("x") is NULL_SPAN
        telemetry.counter("x").inc(10)
        telemetry.record_timer("x", 1.0)
        snapshot = telemetry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["timers"] == {}
        assert not telemetry.enabled

    def test_counter_thread_safety(self):
        telemetry = Telemetry(mode="summary")
        counter = telemetry.counter("shared")

        def bump():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


class TestTimers:
    def test_timer_context_manager_records(self):
        telemetry = Telemetry(mode="summary")
        with telemetry.timer("work"):
            pass
        stats = telemetry.snapshot()["timers"]["work"]
        assert stats["count"] == 1
        assert stats["total"] >= 0.0

    def test_record_timer_aggregate_tracks_per_batch_means(self):
        telemetry = Telemetry(mode="summary")
        telemetry.record_timer("phase", 2.0, count=4)   # mean 0.5
        telemetry.record_timer("phase", 6.0, count=3)   # mean 2.0
        stats = telemetry.snapshot()["timers"]["phase"]
        assert stats["count"] == 7
        assert stats["total"] == pytest.approx(8.0)
        assert stats["min"] == pytest.approx(0.5)
        assert stats["max"] == pytest.approx(2.0)

    def test_record_timer_zero_count_is_ignored(self):
        stat = Stat()
        stat.add_aggregate(1.0, 0)
        assert stat.count == 0 and stat.total == 0.0


class TestSpans:
    def test_nested_spans_form_path_keys(self):
        telemetry = Telemetry(mode="summary")
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("inner"):
                pass
        spans = telemetry.snapshot()["spans"]
        assert spans["outer"]["count"] == 1
        assert spans["outer/inner"]["count"] == 2
        # Parent totals include child time.
        assert spans["outer"]["total"] >= spans["outer/inner"]["total"]

    def test_span_stack_unwinds_on_exception(self):
        telemetry = Telemetry(mode="summary")
        with pytest.raises(RuntimeError):
            with telemetry.span("outer"):
                raise RuntimeError("boom")
        with telemetry.span("after"):
            pass
        spans = telemetry.snapshot()["spans"]
        assert "after" in spans            # not "outer/after"
        assert spans["outer"]["count"] == 1

    def test_threads_nest_on_independent_stacks(self):
        telemetry = Telemetry(mode="summary")
        barrier = threading.Barrier(2)

        def worker(name):
            with telemetry.span(name):
                barrier.wait(timeout=5)
                with telemetry.span("child"):
                    pass

        threads = [threading.Thread(target=worker, args=(f"root{i}",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = telemetry.snapshot()["spans"]
        # Each thread saw only its own stack: no cross-thread path mixing.
        assert spans["root0/child"]["count"] == 1
        assert spans["root1/child"]["count"] == 1

    def test_trace_mode_records_events(self):
        telemetry = Telemetry(mode="trace")
        with telemetry.span("a"):
            with telemetry.span("b"):
                pass
        events = telemetry.trace_events()
        assert [event["path"] for event in events] == ["a/b", "a"]
        assert all(event["dur"] >= 0.0 for event in events)
        assert telemetry.snapshot()["trace_events"] == 2

    def test_summary_mode_records_no_events(self):
        telemetry = Telemetry(mode="summary")
        with telemetry.span("a"):
            pass
        assert telemetry.trace_events() == []


class TestExport:
    def test_snapshot_is_json_serialisable(self):
        telemetry = Telemetry(mode="trace")
        telemetry.counter("c").inc()
        telemetry.gauge("g").set(1.5)
        with telemetry.span("s"):
            pass
        json.dumps(telemetry.snapshot())

    def test_dump_jsonl_round_trip(self, tmp_path):
        telemetry = Telemetry(mode="trace")
        telemetry.counter("reads").inc(3)
        telemetry.gauge("ratio").set(0.5)
        telemetry.record_timer("phase", 1.0, count=2)
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        telemetry.dump_jsonl(path)
        records = [json.loads(line) for line in
                   path.read_text().strip().splitlines()]
        by_kind = {}
        for record in records:
            by_kind.setdefault(record["kind"], []).append(record)
        assert by_kind["meta"][0]["mode"] == "trace"
        assert by_kind["counter"][0] == {"kind": "counter", "name": "reads",
                                         "value": 3}
        assert by_kind["gauge"][0]["value"] == 0.5
        assert by_kind["timer"][0]["count"] == 2
        assert {record["name"] for record in by_kind["span"]} == {
            "outer", "outer/inner"}
        assert len(by_kind["event"]) == 2

    def test_profile_table_renders_all_sections(self):
        telemetry = Telemetry(mode="summary")
        telemetry.counter("reads").inc()
        telemetry.record_timer("phase", 0.5)
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        table = telemetry.profile_table()
        assert "Telemetry spans" in table
        assert "Telemetry timers" in table
        assert "Telemetry counters" in table
        assert "  inner" in table  # indented child

    def test_empty_report_is_one_line(self):
        telemetry = Telemetry(mode="summary")
        assert "nothing recorded" in render_report(telemetry.snapshot())

    def test_reset_clears_everything(self):
        telemetry = Telemetry(mode="trace")
        telemetry.counter("c").inc()
        with telemetry.span("s"):
            pass
        telemetry.reset()
        snapshot = telemetry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["spans"] == {}
        assert snapshot["trace_events"] == 0
        assert telemetry.mode == "trace"  # mode survives a reset


class TestProcessRegistry:
    def test_get_telemetry_is_a_singleton(self):
        assert get_telemetry() is get_telemetry()

    def test_capture_restores_previous_mode_and_clears(self):
        registry = get_telemetry()
        previous = registry.mode
        with capture("summary") as telemetry:
            assert telemetry is registry
            assert telemetry.enabled
            telemetry.counter("temp").inc()
        assert registry.mode == previous
        assert registry.snapshot()["counters"] == {}

    def test_capture_clears_even_on_error(self):
        registry = get_telemetry()
        with pytest.raises(RuntimeError):
            with capture("summary") as telemetry:
                telemetry.counter("temp").inc()
                raise RuntimeError("boom")
        assert registry.snapshot()["counters"] == {}


class TestInstrumentation:
    """End-to-end: the instrumented hot paths feed the registry."""

    def test_einsum_backend_counts_cache_hits(self):
        from repro.backends import get_backend
        from repro.core.config import QuGeoVQCConfig
        from repro.core.vqc_model import QuGeoVQC

        config = QuGeoVQCConfig(n_groups=1, qubits_per_group=4, n_blocks=2,
                                decoder="layer", output_shape=(4, 4))
        model = QuGeoVQC(config, rng=0, backend=get_backend("einsum"))
        rng = np.random.default_rng(1)
        batch = rng.normal(size=(3, 16))
        with capture("summary") as telemetry:
            model.predict_batch(batch)
            model.predict_batch(batch)
            counters = telemetry.snapshot()["counters"]
        requests = counters.get("backend.einsum.subscripts.requests", 0)
        misses = counters.get("backend.einsum.subscripts.misses", 0)
        assert requests > 0
        # The second invocation replays cached subscripts: hits > 0.
        assert requests > misses
        assert counters["backend.einsum.run_batched.calls"] >= 2

    def test_batched_gradients_record_sweeps(self):
        from repro.backends import get_backend
        from repro.core.config import QuGeoVQCConfig, TrainingConfig
        from repro.core.vqc_model import QuGeoVQC
        from repro.core.training import ArrayDataSource, Trainer

        config = QuGeoVQCConfig(n_groups=1, qubits_per_group=4, n_blocks=2,
                                decoder="layer", output_shape=(4, 4))
        model = QuGeoVQC(config, rng=0, backend=get_backend("einsum"))
        rng = np.random.default_rng(2)
        seismic = rng.normal(size=(6, 16))
        velocity = rng.uniform(size=(6, 4, 4))
        trainer = Trainer(TrainingConfig(epochs=1, batch_size=3,
                                         learning_rate=0.05, seed=0))
        with capture("summary") as telemetry:
            trainer.train(model, ArrayDataSource(seismic, velocity))
            snapshot = telemetry.snapshot()
        assert snapshot["counters"]["gradients.batched.calls"] >= 1
        assert snapshot["counters"]["gradients.batched.samples"] == 6
        paths = set(snapshot["spans"])
        assert any(path.endswith("gradients.forward") for path in paths)
        assert any(path.endswith("gradients.backward") for path in paths)

    def test_propagator_records_per_phase_timers(self):
        from repro.seismic.forward_modeling import forward_model_shot_gather

        velocity = np.full((24, 24), 2000.0)
        with capture("summary") as telemetry:
            forward_model_shot_gather(velocity, n_sources=2, n_steps=48)
            snapshot = telemetry.snapshot()
        for phase in ("laplacian", "update", "inject", "boundary", "record"):
            assert snapshot["timers"][f"propagator.{phase}"]["count"] == 48
        assert snapshot["counters"]["propagator.steps"] == 48
        assert snapshot["counters"]["propagator.wavefields"] == 2
        assert snapshot["gauges"]["propagator.steps_per_sec"] > 0
        assert "forward_model.shots" in snapshot["spans"]


class TestTelemetryCallback:
    def test_trainer_logs_timing_metrics_when_enabled(self):
        from repro.core import build_cnn_ly
        from repro.core.training import ArrayDataSource, Trainer
        from repro.core.config import TrainingConfig

        rng = np.random.default_rng(0)
        model = build_cnn_ly(64, (6, 6), rng=0)
        source = ArrayDataSource(rng.normal(size=(8, 64)),
                                 rng.normal(size=(8, 6, 6)))
        test = ArrayDataSource(rng.normal(size=(4, 64)),
                               rng.normal(size=(4, 6, 6)))
        trainer = Trainer(TrainingConfig(epochs=2, batch_size=4, eval_every=1,
                                         seed=0))
        with capture("summary") as telemetry:
            result = trainer.train(model, source, test)
            snapshot = telemetry.snapshot()
        assert len(result.logger.history("epoch_seconds")) == 2
        assert len(result.logger.history("step_seconds")) == 2
        assert len(result.logger.history("eval_seconds")) == 2
        assert all(v > 0 for v in result.logger.history("epoch_seconds"))
        assert snapshot["counters"]["trainer.epochs"] == 2
        assert snapshot["spans"]["trainer.epoch"]["count"] == 2
        assert snapshot["spans"]["trainer.epoch/step"]["count"] == 4

    def test_trainer_logs_no_timing_metrics_when_disabled(self):
        from repro.core import build_cnn_ly
        from repro.core.training import ArrayDataSource, Trainer
        from repro.core.config import TrainingConfig

        rng = np.random.default_rng(0)
        model = build_cnn_ly(64, (6, 6), rng=0)
        source = ArrayDataSource(rng.normal(size=(8, 64)),
                                 rng.normal(size=(8, 6, 6)))
        trainer = Trainer(TrainingConfig(epochs=1, batch_size=4, seed=0))
        result = trainer.train(model, source)
        assert "epoch_seconds" not in result.logger.keys()

    def test_resume_with_telemetry_enabled_is_checkpoint_compatible(self,
                                                                    tmp_path):
        # A run checkpointed with telemetry off must resume cleanly with it
        # on (the auto-added TelemetryCallback is stateless).
        from repro.core import Callback, Checkpoint, build_cnn_ly
        from repro.core.training import ArrayDataSource, Trainer
        from repro.core.config import TrainingConfig

        class StopAfter(Callback):
            def __init__(self, epoch):
                self.epoch = int(epoch)

            def on_epoch_logged(self, state):
                if state.epoch >= self.epoch:
                    state.stop_training = True

        rng = np.random.default_rng(0)
        source = ArrayDataSource(rng.normal(size=(8, 64)),
                                 rng.normal(size=(8, 6, 6)))
        path = str(tmp_path / "ckpt.pkl")
        config = TrainingConfig(epochs=4, batch_size=4, seed=0)
        Trainer(config).train(build_cnn_ly(64, (6, 6), rng=0), source,
                              callbacks=[Checkpoint(path, every=2),
                                         StopAfter(1)])
        with capture("summary"):
            result = Trainer(config).train(build_cnn_ly(64, (6, 6), rng=0),
                                           source, resume_from=path)
        assert len(result.logger.history("train_loss")) == 4
        assert len(result.logger.history("epoch_seconds")) == 2
