"""Static/runtime conformance of the stack's three structural seams.

The training engine, the data layer and the simulation layer meet at three
interfaces — the :class:`~repro.core.training.Model` protocol, the
:class:`~repro.core.training.DataSource` protocol and the
:class:`~repro.backends.base.SimulationBackend` ABC.  These tests pin every
shipped implementation to its interface with ``issubclass``/``isinstance``
(both protocols are ``runtime_checkable`` and method-only, so class-level
checks are valid), and the typed helper functions below double as *static*
conformance proofs: mypy checks the assignments without any test running.
"""

from __future__ import annotations

from typing import Type

import numpy as np
import pytest

from repro.backends import get_backend
from repro.backends.base import SimulationBackend
from repro.backends.einsum_batch import EinsumBatchBackend
from repro.backends.numpy_loop import NumpyLoopBackend
from repro.core.classical_models import ClassicalFWIModel
from repro.core.qubatch import QuBatchVQC
from repro.core.training import ArrayDataSource, DataSource, Model
from repro.core.vqc_model import QuGeoVQC
from repro.data.store import ShardLoader
from repro.robustness.perturbations import PerturbedView

MODEL_IMPLEMENTATIONS = (QuGeoVQC, QuBatchVQC, ClassicalFWIModel)
DATA_SOURCE_IMPLEMENTATIONS = (ArrayDataSource, ShardLoader, PerturbedView)
BACKEND_IMPLEMENTATIONS = (NumpyLoopBackend, EinsumBatchBackend)


# --------------------------------------------------------------------------- #
# typed helpers: mypy verifies these assignments statically
# --------------------------------------------------------------------------- #
def _accepts_model(model: Model) -> Model:
    return model


def _accepts_data_source(source: DataSource) -> DataSource:
    return source


def _accepts_backend(backend: SimulationBackend) -> SimulationBackend:
    return backend


def check_model_statically(model_cls: Type[Model]) -> Type[Model]:
    """A ``Type[Model]`` annotation only typechecks for conforming classes."""
    return model_cls


# --------------------------------------------------------------------------- #
# runtime checks
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("model_cls", MODEL_IMPLEMENTATIONS,
                         ids=lambda cls: cls.__name__)
def test_model_protocol_class_conformance(model_cls):
    assert issubclass(model_cls, Model)


@pytest.mark.parametrize("source_cls", DATA_SOURCE_IMPLEMENTATIONS,
                         ids=lambda cls: cls.__name__)
def test_data_source_protocol_class_conformance(source_cls):
    assert issubclass(source_cls, DataSource)


@pytest.mark.parametrize("backend_cls", BACKEND_IMPLEMENTATIONS,
                         ids=lambda cls: cls.__name__)
def test_backend_abc_conformance(backend_cls):
    assert issubclass(backend_cls, SimulationBackend)
    assert not getattr(backend_cls, "__abstractmethods__", None)


def test_model_instance_conformance():
    model = QuGeoVQC()
    assert isinstance(model, Model)
    assert model is _accepts_model(model)


def test_data_source_instance_conformance():
    source = ArrayDataSource(np.zeros((3, 4)), np.zeros((3, 2, 2)))
    assert isinstance(source, DataSource)
    assert len(source) == 3
    assert source is _accepts_data_source(source)


@pytest.mark.parametrize("name", ("numpy", "einsum"))
def test_registered_backends_are_simulation_backends(name):
    backend = get_backend(name)
    assert isinstance(backend, SimulationBackend)
    assert backend is _accepts_backend(backend)


def test_protocols_reject_non_conforming_types():
    class NotAModel:
        pass

    class HalfSource:
        def __len__(self):
            return 0

        def gather(self, indices):
            return np.zeros(0), np.zeros(0)
        # no fingerprint()

    assert not isinstance(NotAModel(), Model)
    assert not issubclass(HalfSource, DataSource)


def test_data_source_protocol_is_structural_not_nominal():
    """Conformance must not require inheriting from the protocol."""
    for cls in DATA_SOURCE_IMPLEMENTATIONS:
        assert DataSource not in cls.__mro__
    for cls in MODEL_IMPLEMENTATIONS:
        assert Model not in cls.__mro__
