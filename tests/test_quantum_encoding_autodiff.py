"""Tests for amplitude/ST/QuBatch encoders and circuit differentiation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import (
    QuBatchEncoder,
    STEncoder,
    amplitude_encode,
    circuit_gradients,
    marginal_probabilities,
    parameter_shift_gradients,
    u3_cu3_ansatz,
    z_expectations,
)
from repro.quantum.autodiff import finite_difference_gradients
from repro.quantum.encoding import normalize_for_encoding
from repro.quantum.measurement import (
    marginal_probabilities_backward,
    z_expectations_backward,
)


class TestAmplitudeEncode:
    def test_normalised_output(self):
        state = amplitude_encode(np.arange(1, 9, dtype=float), 3)
        assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_preserves_relative_values(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        state = amplitude_encode(data, 2)
        np.testing.assert_allclose(np.real(state), data / np.linalg.norm(data))

    def test_zero_padding(self):
        state = amplitude_encode(np.array([1.0, 1.0, 1.0]), 2)
        assert state.size == 4
        assert state[3] == 0.0

    def test_infers_qubit_count(self):
        assert amplitude_encode(np.ones(5)).size == 8

    def test_too_much_data_raises(self):
        with pytest.raises(ValueError):
            amplitude_encode(np.ones(9), 3)

    def test_zero_vector_maps_to_ground_state(self):
        state = amplitude_encode(np.zeros(4), 2)
        np.testing.assert_allclose(state, [1, 0, 0, 0])

    def test_normalize_for_encoding_returns_norm(self):
        normalised, norm = normalize_for_encoding(np.array([3.0, 4.0]))
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(normalised, [0.6, 0.8])


class TestSTEncoder:
    def test_capacity_and_qubits(self):
        encoder = STEncoder(n_groups=2, qubits_per_group=3)
        assert encoder.capacity == 16
        assert encoder.n_qubits == 6

    def test_group_qubits(self):
        encoder = STEncoder(n_groups=2, qubits_per_group=3)
        assert encoder.group_qubits(0) == (0, 1, 2)
        assert encoder.group_qubits(1) == (3, 4, 5)

    def test_single_group_matches_amplitude_encoding(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=8)
        encoder = STEncoder(n_groups=1, qubits_per_group=3)
        np.testing.assert_allclose(encoder.encode(data), amplitude_encode(data, 3))

    def test_multi_group_state_is_product(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=8)
        encoder = STEncoder(n_groups=2, qubits_per_group=2)
        state = encoder.encode(data)
        expected = np.kron(amplitude_encode(data[:4], 2), amplitude_encode(data[4:], 2))
        np.testing.assert_allclose(state, expected)
        assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_normalized_view_per_group(self):
        data = np.array([3.0, 4.0, 6.0, 8.0])
        encoder = STEncoder(n_groups=2, qubits_per_group=1)
        view = encoder.normalized_view(data)
        np.testing.assert_allclose(view, [0.6, 0.8, 0.6, 0.8])

    def test_capacity_exceeded_raises(self):
        encoder = STEncoder(n_groups=1, qubits_per_group=2)
        with pytest.raises(ValueError):
            encoder.encode(np.ones(5))

    def test_invalid_group_index(self):
        with pytest.raises(ValueError):
            STEncoder(n_groups=1, qubits_per_group=2).group_qubits(1)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), groups=st.integers(1, 3))
    def test_encoded_state_always_normalised(self, seed, groups):
        rng = np.random.default_rng(seed)
        encoder = STEncoder(n_groups=groups, qubits_per_group=2)
        data = rng.normal(size=encoder.capacity)
        assert np.linalg.norm(encoder.encode(data)) == pytest.approx(1.0)


class TestQuBatchEncoder:
    def test_qubit_accounting(self):
        encoder = QuBatchEncoder(STEncoder(1, 3), n_batch_qubits=2)
        assert encoder.batch_size == 4
        assert encoder.n_qubits == 5
        assert encoder.batch_qubits_of_group(0) == (0, 1)
        assert encoder.data_qubits_of_group(0) == (2, 3, 4)

    def test_blocks_hold_each_sample(self):
        rng = np.random.default_rng(2)
        samples = [rng.normal(size=4), rng.normal(size=4)]
        encoder = QuBatchEncoder(STEncoder(1, 2), n_batch_qubits=1)
        state = encoder.encode(samples)
        stacked = np.concatenate(samples)
        expected = stacked / np.linalg.norm(stacked)
        np.testing.assert_allclose(np.real(state), expected)

    def test_relative_structure_preserved_within_block(self):
        """QuBatch lowers precision but keeps relative relationships (paper 3.3.3)."""
        rng = np.random.default_rng(3)
        samples = [rng.normal(size=4), 10 * rng.normal(size=4)]
        encoder = QuBatchEncoder(STEncoder(1, 2), n_batch_qubits=1)
        state = np.real(encoder.encode(samples))
        block0 = state[:4]
        ratio = block0 / np.linalg.norm(block0)
        np.testing.assert_allclose(ratio, samples[0] / np.linalg.norm(samples[0]),
                                   atol=1e-12)

    def test_partial_batch_zero_blocks(self):
        encoder = QuBatchEncoder(STEncoder(1, 2), n_batch_qubits=1)
        state = encoder.encode([np.ones(4)])
        np.testing.assert_allclose(state[4:], 0.0)

    def test_over_capacity_raises(self):
        encoder = QuBatchEncoder(STEncoder(1, 2), n_batch_qubits=0)
        with pytest.raises(ValueError):
            encoder.encode([np.ones(4), np.ones(4)])

    def test_negative_batch_qubits_rejected(self):
        with pytest.raises(ValueError):
            QuBatchEncoder(STEncoder(1, 2), n_batch_qubits=-1)


def _expectation_loss_head(n_qubits, target):
    def loss_head(psi):
        z = z_expectations(psi, range(n_qubits), n_qubits)
        diff = (z + 1.0) / 2.0 - target
        loss = float(np.mean(diff**2))
        grad = diff * (2.0 / diff.size) * 0.5
        return loss, z_expectations_backward(psi, range(n_qubits), n_qubits, grad)
    return loss_head


def _probability_loss_head(n_qubits, qubits, target):
    def loss_head(psi):
        probs = marginal_probabilities(psi, qubits, n_qubits)
        diff = probs - target
        loss = float(np.sum(diff**2))
        return loss, marginal_probabilities_backward(psi, qubits, n_qubits, 2 * diff)
    return loss_head


class TestCircuitGradients:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_adjoint_matches_finite_difference_expectation_loss(self, seed):
        rng = np.random.default_rng(seed)
        n = 3
        circuit = u3_cu3_ansatz(n, n_blocks=2)
        params = rng.normal(size=circuit.n_params)
        state = amplitude_encode(rng.normal(size=2**n), n)
        loss_head = _expectation_loss_head(n, rng.random(n))
        loss_a, grad_a = circuit_gradients(circuit, params, state, loss_head)
        loss_f, grad_f = finite_difference_gradients(circuit, params, state, loss_head)
        assert loss_a == pytest.approx(loss_f)
        np.testing.assert_allclose(grad_a, grad_f, atol=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_adjoint_matches_finite_difference_probability_loss(self, seed):
        rng = np.random.default_rng(seed)
        n = 3
        circuit = u3_cu3_ansatz(n, n_blocks=2)
        params = rng.normal(size=circuit.n_params)
        state = amplitude_encode(rng.normal(size=2**n), n)
        loss_head = _probability_loss_head(n, (0, 1), rng.random(4))
        _, grad_a = circuit_gradients(circuit, params, state, loss_head)
        _, grad_f = finite_difference_gradients(circuit, params, state, loss_head)
        np.testing.assert_allclose(grad_a, grad_f, atol=1e-6)

    def test_gradient_length_matches_parameters(self):
        circuit = u3_cu3_ansatz(3, n_blocks=1)
        params = np.zeros(circuit.n_params)
        state = amplitude_encode(np.ones(8), 3)
        _, grads = circuit_gradients(circuit, params, state,
                                     _expectation_loss_head(3, np.full(3, 0.5)))
        assert grads.shape == (circuit.n_params,)

    def test_zero_gradient_at_perfect_fit(self):
        n = 2
        circuit = u3_cu3_ansatz(n, n_blocks=1)
        params = np.zeros(circuit.n_params)
        state = amplitude_encode(np.array([1.0, 0, 0, 0]), n)
        # With identity circuit the state stays |00>, z = (1, 1), pred = (1, 1).
        loss_head = _expectation_loss_head(n, np.ones(n))
        loss, grads = circuit_gradients(circuit, params, state, loss_head)
        assert loss == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(grads, 0.0, atol=1e-9)

    def test_parameter_shift_for_rotation_gates(self):
        """The two-term shift rule is exact for RX/RY/RZ circuits when the
        cost is linear in the measured expectation values."""
        from repro.quantum.circuit import ParameterizedCircuit

        rng = np.random.default_rng(3)
        n = 2
        circuit = ParameterizedCircuit(n)
        circuit.add_parametric_gate("RY", (0,))
        circuit.add_parametric_gate("RX", (1,))
        circuit.add_gate("CNOT", (0, 1))
        circuit.add_parametric_gate("RZ", (0,))
        params = rng.normal(size=circuit.n_params)
        state = amplitude_encode(rng.normal(size=4), n)
        weights = rng.normal(size=n)

        def linear_loss_head(psi):
            z = z_expectations(psi, range(n), n)
            loss = float(np.dot(weights, z))
            return loss, z_expectations_backward(psi, range(n), n, weights)

        _, grad_shift = parameter_shift_gradients(circuit, params, state,
                                                  linear_loss_head)
        _, grad_adj = circuit_gradients(circuit, params, state, linear_loss_head)
        np.testing.assert_allclose(grad_shift, grad_adj, atol=1e-8)

    def test_loss_head_wrong_gradient_length_raises(self):
        circuit = u3_cu3_ansatz(2, n_blocks=1)
        state = amplitude_encode(np.ones(4), 2)

        def bad_head(psi):
            return 0.0, np.zeros(2)

        with pytest.raises(ValueError):
            circuit_gradients(circuit, np.zeros(circuit.n_params), state, bad_head)
