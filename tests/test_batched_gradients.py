"""Parity tests for the batched adjoint gradient path.

The contract: :func:`repro.quantum.autodiff.circuit_gradients_batched` (and
the model/trainer layers built on it) must produce the same losses and
gradients as the per-sample adjoint sweep and the finite-difference ground
truth, on every backend, for both decoders, grouped and ungrouped ansätze,
and regardless of how the batch is chunked.
"""

import numpy as np
import pytest

from repro.backends import get_backend
from repro.core.config import QuGeoVQCConfig, TrainingConfig
from repro.core.training import QuantumTrainer, evaluate_predictions
from repro.core.vqc_model import QuGeoVQC
from repro.data.dataset import FWIDataset, FWISample
from repro.metrics import ssim, ssim_map
from repro.quantum import (
    amplitude_encode,
    circuit_gradients,
    circuit_gradients_batched,
    grouped_st_ansatz,
    u3_cu3_ansatz,
)
from repro.quantum.autodiff import finite_difference_gradients
from repro.quantum.measurement import (
    marginal_probabilities,
    marginal_probabilities_backward,
    marginal_probabilities_backward_batched,
    marginal_probabilities_batched,
    z_expectations,
    z_expectations_backward,
    z_expectations_backward_batched,
    z_expectations_batched,
)

BACKENDS = ("numpy", "einsum")


def _random_states(n_qubits, batch, rng):
    return np.stack([amplitude_encode(rng.normal(size=2**n_qubits), n_qubits)
                     for _ in range(batch)])


def _expectation_heads(n_qubits, targets):
    """Per-sample and batched Q-M-LY-style loss heads sharing ``targets``."""

    def single(target):
        def head(psi):
            z = z_expectations(psi, range(n_qubits), n_qubits)
            diff = (z + 1.0) / 2.0 - target
            loss = float(np.mean(diff**2))
            grad = diff * (2.0 / diff.size) * 0.5
            return loss, z_expectations_backward(psi, range(n_qubits),
                                                 n_qubits, grad)
        return head

    def batched(outputs):
        z = z_expectations_batched(outputs, range(n_qubits), n_qubits)
        diff = (z + 1.0) / 2.0 - targets
        losses = np.mean(diff**2, axis=1)
        grads = diff * (2.0 / n_qubits) * 0.5
        return losses, z_expectations_backward_batched(outputs, range(n_qubits),
                                                       n_qubits, grads)

    return single, batched


def _probability_heads(n_qubits, qubits, targets):
    """Per-sample and batched Q-M-PX-style loss heads sharing ``targets``."""

    def single(target):
        def head(psi):
            probs = marginal_probabilities(psi, qubits, n_qubits)
            diff = probs - target
            loss = float(np.sum(diff**2))
            return loss, marginal_probabilities_backward(psi, qubits, n_qubits,
                                                         2 * diff)
        return head

    def batched(outputs):
        probs = marginal_probabilities_batched(outputs, qubits, n_qubits)
        diff = probs - targets
        losses = np.sum(diff**2, axis=1)
        return losses, marginal_probabilities_backward_batched(
            outputs, qubits, n_qubits, 2 * diff)

    return single, batched


class TestBatchedMeasurementHeads:
    """The batched read-out heads must match their per-sample twins."""

    @pytest.mark.parametrize("qubits", [(0,), (2, 0), (1, 3, 2)])
    def test_z_expectations_batched(self, qubits):
        rng = np.random.default_rng(0)
        states = _random_states(4, 5, rng)
        batched = z_expectations_batched(states, qubits, 4)
        singles = np.stack([z_expectations(state, qubits, 4)
                            for state in states])
        np.testing.assert_allclose(batched, singles, atol=1e-14)

    @pytest.mark.parametrize("qubits", [(0,), (2, 0), (1, 3, 2)])
    def test_marginal_probabilities_batched(self, qubits):
        rng = np.random.default_rng(1)
        states = _random_states(4, 5, rng)
        batched = marginal_probabilities_batched(states, qubits, 4)
        singles = np.stack([marginal_probabilities(state, qubits, 4)
                            for state in states])
        np.testing.assert_allclose(batched, singles, atol=1e-14)

    def test_backward_rules_batched(self):
        rng = np.random.default_rng(2)
        states = _random_states(3, 4, rng)
        z_grads = rng.normal(size=(4, 2))
        batched = z_expectations_backward_batched(states, (0, 2), 3, z_grads)
        singles = np.stack([z_expectations_backward(state, (0, 2), 3, grad)
                            for state, grad in zip(states, z_grads)])
        np.testing.assert_allclose(batched, singles, atol=1e-14)

        m_grads = rng.normal(size=(4, 4))
        batched = marginal_probabilities_backward_batched(states, (1, 0), 3,
                                                          m_grads)
        singles = np.stack(
            [marginal_probabilities_backward(state, (1, 0), 3, grad)
             for state, grad in zip(states, m_grads)])
        np.testing.assert_allclose(batched, singles, atol=1e-14)

    def test_invalid_qubit_raises(self):
        states = np.zeros((2, 8), dtype=complex)
        with pytest.raises(ValueError):
            z_expectations_batched(states, (5,), 3)
        with pytest.raises(ValueError):
            marginal_probabilities_batched(states, (0, 0), 3)


class TestCircuitGradientsBatched:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("batch", [1, 5])
    def test_matches_per_sample_adjoint_expectation_loss(self, backend, batch):
        rng = np.random.default_rng(10)
        n = 3
        circuit = u3_cu3_ansatz(n, n_blocks=2)
        params = rng.normal(size=circuit.n_params)
        states = _random_states(n, batch, rng)
        targets = rng.random((batch, n))
        single, batched = _expectation_heads(n, targets)

        losses, grads = circuit_gradients_batched(circuit, params, states,
                                                  batched, backend=backend)
        assert losses.shape == (batch,)
        assert grads.shape == (batch, circuit.n_params)
        for b in range(batch):
            loss_s, grad_s = circuit_gradients(circuit, params, states[b],
                                               single(targets[b]),
                                               backend=backend)
            assert losses[b] == pytest.approx(loss_s, abs=1e-12)
            np.testing.assert_allclose(grads[b], grad_s, atol=1e-10)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_per_sample_adjoint_probability_loss(self, backend):
        rng = np.random.default_rng(11)
        n, batch = 3, 4
        circuit = u3_cu3_ansatz(n, n_blocks=2)
        params = rng.normal(size=circuit.n_params)
        states = _random_states(n, batch, rng)
        targets = rng.random((batch, 4))
        single, batched = _probability_heads(n, (0, 1), targets)

        losses, grads = circuit_gradients_batched(circuit, params, states,
                                                  batched, backend=backend)
        for b in range(batch):
            loss_s, grad_s = circuit_gradients(circuit, params, states[b],
                                               single(targets[b]),
                                               backend=backend)
            assert losses[b] == pytest.approx(loss_s, abs=1e-12)
            np.testing.assert_allclose(grads[b], grad_s, atol=1e-10)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_finite_difference(self, backend):
        rng = np.random.default_rng(12)
        n, batch = 3, 3
        circuit = u3_cu3_ansatz(n, n_blocks=2)
        params = rng.normal(size=circuit.n_params)
        states = _random_states(n, batch, rng)
        targets = rng.random((batch, n))
        single, batched = _expectation_heads(n, targets)

        _, grads = circuit_gradients_batched(circuit, params, states, batched,
                                             backend=backend)
        for b in range(batch):
            _, grad_fd = finite_difference_gradients(circuit, params,
                                                     states[b],
                                                     single(targets[b]),
                                                     backend=backend)
            np.testing.assert_allclose(grads[b], grad_fd, atol=1e-6)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_grouped_ansatz(self, backend):
        rng = np.random.default_rng(13)
        n, batch = 4, 3
        circuit = grouped_st_ansatz([(0, 1), (2, 3)], n, n_blocks=2)
        params = rng.normal(size=circuit.n_params)
        states = _random_states(n, batch, rng)
        targets = rng.random((batch, n))
        single, batched = _expectation_heads(n, targets)

        losses, grads = circuit_gradients_batched(circuit, params, states,
                                                  batched, backend=backend)
        for b in range(batch):
            loss_s, grad_s = circuit_gradients(circuit, params, states[b],
                                               single(targets[b]),
                                               backend=backend)
            assert losses[b] == pytest.approx(loss_s, abs=1e-12)
            np.testing.assert_allclose(grads[b], grad_s, atol=1e-10)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chunked_sweep_matches_single_pass(self, backend):
        """A tiny amplitude budget (checkpointed re-forward) changes nothing."""
        rng = np.random.default_rng(14)
        n, batch = 3, 6
        circuit = u3_cu3_ansatz(n, n_blocks=2)
        params = rng.normal(size=circuit.n_params)
        states = _random_states(n, batch, rng)
        targets = rng.random((batch, n))
        _, batched = _expectation_heads(n, targets)

        losses_a, grads_a = circuit_gradients_batched(circuit, params, states,
                                                      batched, backend=backend)
        tiny = 2 * (len(circuit.ops) + 1) * 2**n
        losses_b, grads_b = circuit_gradients_batched(circuit, params, states,
                                                      batched, backend=backend,
                                                      max_elements=tiny)
        np.testing.assert_allclose(losses_a, losses_b, atol=1e-13)
        np.testing.assert_allclose(grads_a, grads_b, atol=1e-12)

    def test_empty_batch(self):
        circuit = u3_cu3_ansatz(2, n_blocks=1)
        losses, grads = circuit_gradients_batched(
            circuit, np.zeros(circuit.n_params), np.zeros((0, 4)),
            lambda outputs: (np.zeros(0), np.zeros((0, 4))))
        assert losses.shape == (0,)
        assert grads.shape == (0, circuit.n_params)

    def test_bad_head_shapes_raise(self):
        circuit = u3_cu3_ansatz(2, n_blocks=1)
        states = _random_states(2, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            circuit_gradients_batched(
                circuit, np.zeros(circuit.n_params), states,
                lambda outputs: (np.zeros(2), np.zeros((3, 4))))
        with pytest.raises(ValueError):
            circuit_gradients_batched(
                circuit, np.zeros(circuit.n_params), states,
                lambda outputs: (np.zeros(3), np.zeros((3, 2))))


def _model_config(decoder, n_groups=1):
    if n_groups == 1:
        return QuGeoVQCConfig(n_groups=1, qubits_per_group=5, n_blocks=2,
                              decoder=decoder, output_shape=(4, 4))
    return QuGeoVQCConfig(n_groups=2, qubits_per_group=3, n_blocks=2,
                          decoder=decoder, output_shape=(4, 4))


class TestBaseClassBatchedFallbacks:
    """The loop fallbacks behind the batched adjoint contract stay correct
    on a backend that does not override them (``numpy``)."""

    def test_run_batched_return_intermediate(self):
        rng = np.random.default_rng(50)
        backend = get_backend("numpy")
        circuit = u3_cu3_ansatz(3, n_blocks=1)
        params = rng.normal(size=circuit.n_params)
        states = _random_states(3, 4, rng)
        outputs, intermediates = backend.run_batched(circuit, states, params,
                                                     return_intermediate=True)
        assert len(intermediates) == len(circuit.ops)
        for b in range(4):
            out, inter = backend.run(circuit, states[b], params,
                                     return_intermediate=True)
            np.testing.assert_allclose(outputs[b], out, atol=1e-14)
            for index in range(len(circuit.ops)):
                np.testing.assert_allclose(intermediates[index][b],
                                           inter[index], atol=1e-14)

    def test_apply_gate_batched_matches_per_state(self):
        rng = np.random.default_rng(51)
        backend = get_backend("numpy")
        states = _random_states(3, 4, rng)
        matrix = (rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4)))
        batched = backend.apply_gate_batched(states, matrix, (2, 0), 3)
        singles = np.stack([backend.apply_gate(state, matrix, (2, 0), 3)
                            for state in states])
        np.testing.assert_allclose(batched, singles, atol=1e-14)


class TestModelBatchedGradients:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("decoder", ["pixel", "layer"])
    @pytest.mark.parametrize("n_groups", [1, 2])
    def test_batch_matches_per_sample(self, backend, decoder, n_groups):
        rng = np.random.default_rng(20)
        model = QuGeoVQC(_model_config(decoder, n_groups), rng=1,
                         backend=backend)
        batch = 4
        capacity = model.encoder.capacity
        seismic = rng.normal(size=(batch, capacity))
        targets = rng.random((batch, 4, 4))

        losses, gradients = model.loss_and_gradients_batch(seismic, targets)
        assert gradients["theta"].shape == (batch, model.circuit.n_params)
        for b in range(batch):
            loss_s, grads_s = model.loss_and_gradients(seismic[b], targets[b])
            assert losses[b] == pytest.approx(loss_s, abs=1e-12)
            np.testing.assert_allclose(gradients["theta"][b], grads_s["theta"],
                                       atol=1e-10)
            if "output_scale" in grads_s:
                assert gradients["output_scale"][b] == pytest.approx(
                    float(grads_s["output_scale"][0]), abs=1e-12)

    @pytest.mark.parametrize("decoder", ["pixel", "layer"])
    def test_batch_matches_finite_difference(self, decoder):
        rng = np.random.default_rng(21)
        model = QuGeoVQC(_model_config(decoder), rng=2, backend="einsum")
        capacity = model.encoder.capacity
        seismic = rng.normal(size=(2, capacity))
        targets = rng.random((2, 4, 4))
        _, gradients = model.loss_and_gradients_batch(seismic, targets)

        epsilon = 1e-6
        for b in range(2):
            for index in rng.choice(model.circuit.n_params, size=4,
                                    replace=False):
                original = model.theta.data[index]
                model.theta.data[index] = original + epsilon
                plus, _ = model.loss_and_gradients(seismic[b], targets[b])
                model.theta.data[index] = original - epsilon
                minus, _ = model.loss_and_gradients(seismic[b], targets[b])
                model.theta.data[index] = original
                fd = (plus - minus) / (2 * epsilon)
                assert gradients["theta"][b, index] == pytest.approx(fd,
                                                                     abs=1e-5)

    def test_scale_gradient_survives_repeated_probes(self):
        """Regression: probing the loss terms repeatedly (as finite
        differences and parameter-shift sweeps do) must not clobber the
        read-out-scale gradient — it is an explicit return value now."""
        rng = np.random.default_rng(22)
        model = QuGeoVQC(_model_config("pixel"), rng=3, backend="einsum")
        seismic = rng.normal(size=model.encoder.capacity)
        target = rng.random((4, 4))
        _, reference = model.loss_and_gradients(seismic, target)

        # Probe the pure loss terms at perturbed parameters in between.
        outputs = model.run_circuit(seismic)[None, :]
        model.theta.data[0] += 0.1
        model._pixel_loss_terms(model.run_circuit(seismic)[None, :],
                                target[None])
        model.theta.data[0] -= 0.1
        _, _, scale_grads = model._pixel_loss_terms(outputs, target[None])
        assert scale_grads[0] == pytest.approx(
            float(reference["output_scale"][0]), abs=1e-12)

    def test_accumulate_batch_equals_weighted_accumulation(self):
        rng = np.random.default_rng(23)
        model_a = QuGeoVQC(_model_config("pixel"), rng=4, backend="einsum")
        model_b = QuGeoVQC(_model_config("pixel"), rng=4, backend="einsum")
        batch = 3
        seismic = rng.normal(size=(batch, model_a.encoder.capacity))
        targets = rng.random((batch, 4, 4))

        loss_a = 0.0
        for b in range(batch):
            loss_a += model_a.accumulate_gradients(seismic[b], targets[b],
                                                   weight=1.0 / batch) / batch
        loss_b = model_b.accumulate_gradients_batch(seismic, targets)
        assert loss_b == pytest.approx(loss_a, abs=1e-12)
        np.testing.assert_allclose(model_b.theta.grad, model_a.theta.grad,
                                   atol=1e-12)
        np.testing.assert_allclose(model_b.output_scale.grad,
                                   model_a.output_scale.grad, atol=1e-12)

    def test_empty_batch_raises(self):
        model = QuGeoVQC(_model_config("layer"), rng=0)
        with pytest.raises(ValueError):
            model.loss_and_gradients_batch([], [])


def _tiny_dataset(rng, n_samples, capacity):
    samples = [FWISample(seismic=rng.normal(size=capacity),
                         velocity=rng.random((4, 4)))
               for _ in range(n_samples)]
    return FWIDataset(samples)


class TestTrainerBatchedPath:
    @pytest.mark.parametrize("decoder", ["pixel", "layer"])
    def test_trajectories_match_across_gradient_paths(self, decoder):
        """Per-sample (numpy backend) and batched (einsum backend) training
        must follow the same parameter trajectory for a fixed seed."""
        rng = np.random.default_rng(30)
        config = _model_config(decoder)
        dataset = _tiny_dataset(rng, 6, 2**config.qubits_per_group)
        training = TrainingConfig(epochs=3, learning_rate=0.1, batch_size=3,
                                  eval_every=10, seed=0)

        final = {}
        losses = {}
        for backend in BACKENDS:
            model = QuGeoVQC(_model_config(decoder), rng=5, backend=backend)
            result = QuantumTrainer(training).train(model, dataset)
            final[backend] = model.theta.data.copy()
            losses[backend] = result.history("train_loss")
        np.testing.assert_allclose(final["einsum"], final["numpy"], atol=1e-9)
        np.testing.assert_allclose(losses["einsum"], losses["numpy"],
                                   atol=1e-10)

    def test_batched_path_is_taken_on_einsum(self, monkeypatch):
        rng = np.random.default_rng(31)
        config = _model_config("layer")
        dataset = _tiny_dataset(rng, 4, 2**config.qubits_per_group)
        model = QuGeoVQC(config, rng=6, backend="einsum")
        calls = {"batched": 0}
        original = model.accumulate_gradients_batch

        def counting(*args, **kwargs):
            calls["batched"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(model, "accumulate_gradients_batch", counting)
        training = TrainingConfig(epochs=1, learning_rate=0.1, batch_size=2,
                                  eval_every=10, seed=0)
        QuantumTrainer(training).train(model, dataset)
        assert calls["batched"] == 2  # 4 samples / batch 2


class TestBatchedSsim:
    def test_stack_matches_per_image(self):
        rng = np.random.default_rng(40)
        a = rng.random((5, 8, 8))
        b = rng.random((5, 8, 8))
        stacked = ssim(a, b, data_range=1.0)
        singles = [ssim(a[i], b[i], data_range=1.0) for i in range(5)]
        np.testing.assert_allclose(stacked, singles, atol=1e-13)

    def test_stack_default_data_range_is_per_image(self):
        rng = np.random.default_rng(41)
        a = rng.random((3, 8, 8))
        b = np.stack([rng.random((8, 8)),
                      5.0 * rng.random((8, 8)),
                      0.1 * rng.random((8, 8))])
        stacked = ssim(a, b)
        singles = [ssim(a[i], b[i]) for i in range(3)]
        np.testing.assert_allclose(stacked, singles, atol=1e-13)

    def test_uniform_window_stack(self):
        rng = np.random.default_rng(42)
        a = rng.random((4, 8, 8))
        b = rng.random((4, 8, 8))
        stacked = ssim_map(a, b, data_range=1.0, gaussian=False)
        for i in range(4):
            np.testing.assert_allclose(
                stacked[i], ssim_map(a[i], b[i], data_range=1.0,
                                     gaussian=False), atol=1e-13)

    def test_identical_stack_scores_one(self):
        image = np.random.default_rng(43).random((3, 6, 6))
        np.testing.assert_allclose(ssim(image, image.copy()), 1.0, atol=1e-12)

    def test_evaluate_predictions_uses_stack(self):
        rng = np.random.default_rng(44)
        predictions = rng.random((4, 6, 6))
        targets = rng.random((4, 6, 6))
        metrics = evaluate_predictions(predictions, targets)
        expected = np.mean([ssim(predictions[i], targets[i], data_range=1.0)
                            for i in range(4)])
        assert metrics["ssim"] == pytest.approx(expected, abs=1e-12)

    def test_invalid_rank_raises(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((2, 2, 2, 2)), np.zeros((2, 2, 2, 2)))
