"""Tests for QuGeoData: D-Sample, Q-D-FW and Q-D-CNN scalers."""

import numpy as np
import pytest

from repro.core.classical_models import CompressionCNN
from repro.core.config import QuGeoDataConfig
from repro.core.data_scaling import (
    CNNScaler,
    DSampleScaler,
    ForwardModelingScaler,
    ScaledSample,
    scale_dataset,
)
from repro.metrics import ssim


class TestDSampleScaler:
    def test_scaled_shapes(self, tiny_dataset, small_data_config):
        scaler = DSampleScaler(small_data_config)
        scaled = scaler.scale_sample(tiny_dataset[0])
        assert scaled.seismic.shape == small_data_config.scaled_seismic_shape
        assert scaled.velocity.shape == small_data_config.scaled_velocity_shape

    def test_velocity_normalised(self, tiny_dataset, small_data_config):
        scaled = DSampleScaler(small_data_config).scale_sample(tiny_dataset[0])
        assert scaled.velocity.min() >= 0.0
        assert scaled.velocity.max() <= 1.0

    def test_method_recorded(self, tiny_dataset, small_data_config):
        scaled = DSampleScaler(small_data_config).scale_sample(tiny_dataset[0])
        assert scaled.method == "D-Sample"
        assert isinstance(scaled, ScaledSample)

    def test_seismic_values_subset_of_original(self, tiny_dataset, small_data_config):
        sample = tiny_dataset[0]
        scaled = DSampleScaler(small_data_config).scale_sample(sample)
        assert np.all(np.isin(scaled.seismic, sample.seismic))

    def test_scale_dataset(self, tiny_dataset, small_data_config):
        scaler = DSampleScaler(small_data_config)
        scaled = scale_dataset(scaler, tiny_dataset)
        assert len(scaled) == len(tiny_dataset)

    def test_seismic_vector_length(self, tiny_dataset, small_data_config):
        scaled = DSampleScaler(small_data_config).scale_sample(tiny_dataset[0])
        assert scaled.seismic_vector().size == small_data_config.scaled_seismic_size


class TestForwardModelingScaler:
    def test_scaled_shapes(self, tiny_dataset, small_data_config):
        scaler = ForwardModelingScaler(small_data_config,
                                       simulation_shape=(16, 16),
                                       simulation_steps=64)
        scaled = scaler.scale_sample(tiny_dataset[0])
        assert scaled.seismic.shape == small_data_config.scaled_seismic_shape
        assert scaled.velocity.shape == small_data_config.scaled_velocity_shape
        assert scaled.method == "Q-D-FW"

    def test_produces_physical_waveforms(self, tiny_scaled_dataset):
        for sample in tiny_scaled_dataset:
            assert np.all(np.isfinite(sample.seismic))
            assert np.abs(sample.seismic).max() > 0

    def test_differs_from_naive_downsampling(self, tiny_dataset, small_data_config):
        """Re-simulated data must not equal nearest-neighbour decimation."""
        fw = ForwardModelingScaler(small_data_config, simulation_shape=(16, 16),
                                   simulation_steps=64)
        ds = DSampleScaler(small_data_config)
        sample = tiny_dataset[0]
        assert not np.allclose(fw.scale_sample(sample).seismic,
                               ds.scale_sample(sample).seismic)

    def test_scaled_frequency_lowered(self, small_data_config):
        scaler = ForwardModelingScaler(small_data_config)
        assert scaler.scaled_frequency(1000) == pytest.approx(
            small_data_config.scaled_peak_frequency)
        config = QuGeoDataConfig(scaled_seismic_shape=(1, 8, 8),
                                 scaled_velocity_shape=(6, 6),
                                 scaled_peak_frequency=None)
        derived = ForwardModelingScaler(config).scaled_frequency(1000)
        assert derived < config.original_peak_frequency

    def test_velocity_uses_bilinear(self, tiny_dataset, small_data_config):
        """Q-D-FW smooths the velocity map rather than picking nearest cells."""
        scaler = ForwardModelingScaler(small_data_config, simulation_shape=(16, 16),
                                       simulation_steps=64)
        scaled = scaler.scale_sample(tiny_dataset[0])
        original_unique = np.unique(tiny_dataset[0].velocity).size
        assert np.unique(scaled.velocity).size >= min(original_unique, 4)

    def test_simulation_steps_validation(self, small_data_config):
        with pytest.raises(ValueError):
            ForwardModelingScaler(small_data_config, simulation_steps=2)


class TestCNNScaler:
    @pytest.fixture(scope="class")
    def trained_scaler(self, tiny_dataset, small_data_config):
        reference = ForwardModelingScaler(small_data_config,
                                          simulation_shape=(16, 16),
                                          simulation_steps=64)
        return CNNScaler.train(tiny_dataset, config=small_data_config,
                               reference_scaler=reference, epochs=15,
                               learning_rate=0.01, batch_size=3, rng=0)

    def test_scaled_shapes(self, trained_scaler, tiny_dataset, small_data_config):
        scaled = trained_scaler.scale_sample(tiny_dataset[0])
        assert scaled.seismic.shape == small_data_config.scaled_seismic_shape
        assert scaled.method == "Q-D-CNN"

    def test_learns_to_approximate_physics_guided_data(self, trained_scaler,
                                                       tiny_dataset,
                                                       small_data_config):
        """The compressor output should resemble Q-D-FW more than noise does."""
        reference = ForwardModelingScaler(small_data_config,
                                          simulation_shape=(16, 16),
                                          simulation_steps=64)
        sample = tiny_dataset[0]
        target = reference.scale_seismic(sample).reshape(-1)
        predicted = trained_scaler.scale_seismic(sample).reshape(-1)
        rng = np.random.default_rng(0)
        noise = rng.normal(0, target.std() + 1e-9, size=target.size)
        error_cnn = np.mean((predicted - target) ** 2)
        error_noise = np.mean((noise - target) ** 2)
        assert error_cnn < error_noise

    def test_requires_training_data(self, small_data_config):
        with pytest.raises(ValueError):
            CNNScaler.train([], config=small_data_config)

    def test_wraps_existing_compressor(self, tiny_dataset, small_data_config):
        sample = tiny_dataset[0]
        compressor = CompressionCNN(input_shape=sample.seismic.shape,
                                    output_size=small_data_config.scaled_seismic_size,
                                    rng=0)
        scaler = CNNScaler(compressor, small_data_config)
        assert scaler.scale_sample(sample).seismic.shape == \
            small_data_config.scaled_seismic_shape


class TestScaledDataQuality:
    def test_velocity_targets_match_between_scalers(self, tiny_dataset,
                                                    small_data_config):
        """All scalers regress maps of the same shape and normalisation."""
        d_sample = DSampleScaler(small_data_config).scale_sample(tiny_dataset[0])
        fw = ForwardModelingScaler(small_data_config, simulation_shape=(16, 16),
                                   simulation_steps=64).scale_sample(tiny_dataset[0])
        assert d_sample.velocity.shape == fw.velocity.shape
        # Same underlying model, so the scaled maps must be highly similar.
        assert ssim(d_sample.velocity, fw.velocity, data_range=1.0) > 0.5

    def test_layered_structure_survives_scaling(self, tiny_scaled_dataset):
        """Deeper rows should not be slower than shallow rows on average."""
        for sample in tiny_scaled_dataset:
            profile = sample.velocity.mean(axis=1)
            assert profile[-1] >= profile[0] - 0.2
