"""Tests for repro.nn layers, losses, functional ops."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    Conv2d,
    Flatten,
    L1Loss,
    Linear,
    MaxPool2d,
    MSELoss,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
)
from repro.nn import functional as F


def numerical_gradient(fn, array, epsilon=1e-6):
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = fn()
        flat[i] = original - epsilon
        minus = fn()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * epsilon)
    return grad


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_1d_input_promoted_to_batch(self):
        layer = Linear(4, 3, rng=0)
        assert layer(Tensor(np.ones(4))).shape == (1, 3)

    def test_parameter_count(self):
        assert Linear(4, 3, rng=0).weight.size + Linear(4, 3, rng=0).bias.size == 15

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 2, rng=0)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))
        loss_fn = MSELoss()

        def value():
            out = x @ layer.weight.data.T + layer.bias.data
            return float(np.mean((out - target) ** 2))

        loss = loss_fn(layer(Tensor(x)), target)
        loss.backward()
        np.testing.assert_allclose(layer.weight.grad,
                                   numerical_gradient(value, layer.weight.data),
                                   atol=1e-6)
        np.testing.assert_allclose(layer.bias.grad,
                                   numerical_gradient(value, layer.bias.data),
                                   atol=1e-6)

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


class TestConv2d:
    def test_output_shape_no_padding(self):
        conv = Conv2d(1, 2, 3, rng=0)
        out = conv(Tensor(np.ones((2, 1, 8, 8))))
        assert out.shape == (2, 2, 6, 6)

    def test_output_shape_with_padding(self):
        conv = Conv2d(1, 2, 3, padding=1, rng=0)
        out = conv(Tensor(np.ones((2, 1, 8, 8))))
        assert out.shape == (2, 2, 8, 8)

    def test_stride(self):
        conv = Conv2d(1, 1, 3, stride=2, rng=0)
        out = conv(Tensor(np.ones((1, 1, 9, 9))))
        assert out.shape == (1, 1, 4, 4)

    def test_matches_manual_convolution(self):
        conv = Conv2d(1, 1, 2, bias=False, rng=0)
        conv.weight.data = np.array([[[[1.0, 0.0], [0.0, -1.0]]]])
        image = np.arange(9.0).reshape(1, 1, 3, 3)
        out = conv(Tensor(image)).numpy()
        expected = image[0, 0, :2, :2] - image[0, 0, 1:, 1:]
        np.testing.assert_allclose(out[0, 0], expected)

    def test_channel_mismatch_raises(self):
        conv = Conv2d(2, 1, 3, rng=0)
        with pytest.raises(ValueError):
            conv(Tensor(np.ones((1, 1, 5, 5))))

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(1)
        conv = Conv2d(2, 2, 3, padding=1, rng=0)
        x = rng.normal(size=(2, 2, 5, 5))
        target = rng.normal(size=(2, 2, 5, 5))
        loss_fn = MSELoss()

        def value():
            out = F.conv2d(Tensor(x), Tensor(conv.weight.data),
                           Tensor(conv.bias.data), padding=1).numpy()
            return float(np.mean((out - target) ** 2))

        loss = loss_fn(conv(Tensor(x)), target)
        loss.backward()
        np.testing.assert_allclose(conv.weight.grad,
                                   numerical_gradient(value, conv.weight.data),
                                   atol=1e-5)
        np.testing.assert_allclose(conv.bias.grad,
                                   numerical_gradient(value, conv.bias.data),
                                   atol=1e-5)

    def test_input_gradient(self):
        rng = np.random.default_rng(2)
        conv = Conv2d(1, 1, 3, rng=0)
        x_data = rng.normal(size=(1, 1, 5, 5))
        x = Tensor(x_data, requires_grad=True)
        conv(x).sum().backward()

        def value():
            out = F.conv2d(Tensor(x_data), Tensor(conv.weight.data),
                           Tensor(conv.bias.data)).numpy()
            return float(out.sum())

        np.testing.assert_allclose(x.grad, numerical_gradient(value, x_data),
                                   atol=1e-5)


class TestPooling:
    def test_avg_pool_value(self):
        image = np.arange(16.0).reshape(1, 1, 4, 4)
        out = AvgPool2d(2)(Tensor(image)).numpy()
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == pytest.approx(np.mean([0, 1, 4, 5]))

    def test_max_pool_value(self):
        image = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(Tensor(image)).numpy()
        assert out[0, 0, 1, 1] == 15.0

    def test_avg_pool_gradient_uniform(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        AvgPool2d(2)(x).sum().backward()
        np.testing.assert_allclose(x.grad, 0.25 * np.ones((1, 1, 4, 4)))

    def test_max_pool_gradient_routes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        MaxPool2d(2)(x).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)


class TestActivationsAndContainer:
    def test_relu_module(self):
        out = ReLU()(Tensor([-1.0, 1.0])).numpy()
        np.testing.assert_allclose(out, [0.0, 1.0])

    def test_sigmoid_range(self):
        out = Sigmoid()(Tensor([-10.0, 0.0, 10.0])).numpy()
        assert np.all(out > 0) and np.all(out < 1)

    def test_tanh_range(self):
        out = Tanh()(Tensor([-10.0, 10.0])).numpy()
        assert np.all(np.abs(out) < 1)

    def test_flatten(self):
        out = Flatten()(Tensor(np.ones((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_sequential_composition(self):
        model = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        assert model(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_sequential_len_and_getitem(self):
        model = Sequential(ReLU(), Flatten())
        assert len(model) == 2
        assert isinstance(model[0], ReLU)


class TestModuleParameters:
    def test_named_parameters_nested(self):
        model = Sequential(Linear(2, 3, rng=0), ReLU(), Linear(3, 1, rng=1))
        names = [name for name, _ in model.named_parameters()]
        assert any("layers.0.weight" in name for name in names)
        assert any("layers.2.bias" in name for name in names)

    def test_num_parameters(self):
        model = Sequential(Linear(2, 3, rng=0))
        assert model.num_parameters() == 2 * 3 + 3

    def test_zero_grad(self):
        model = Sequential(Linear(2, 2, rng=0))
        loss = MSELoss()(model(Tensor(np.ones((1, 2)))), np.zeros((1, 2)))
        loss.backward()
        assert model.parameters()[0].grad is not None
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_state_dict_roundtrip(self):
        model = Sequential(Linear(2, 2, rng=0))
        state = model.state_dict()
        other = Sequential(Linear(2, 2, rng=99))
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(model.named_parameters(), other.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_load_state_dict_rejects_mismatch(self):
        model = Sequential(Linear(2, 2, rng=0))
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.zeros(1)})


class TestLosses:
    def test_mse_value(self):
        loss = MSELoss()(Tensor([[1.0, 2.0]]), [[0.0, 0.0]])
        assert loss.item() == pytest.approx(2.5)

    def test_l1_value(self):
        loss = L1Loss()(Tensor([[1.0, -2.0]]), [[0.0, 0.0]])
        assert loss.item() == pytest.approx(1.5)

    def test_mse_zero_for_match(self):
        pred = Tensor(np.ones((2, 2)))
        assert MSELoss()(pred, np.ones((2, 2))).item() == 0.0
