"""Tests for repro.data: resampling, normalisation, datasets, synthetic OpenFWI."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    FWIDataset,
    FWISample,
    MinMaxNormalizer,
    OpenFWIConfig,
    SyntheticOpenFWI,
    VelocityNormalizer,
    bilinear_resample,
    build_flatvel_dataset,
    nearest_neighbor_resample,
    resample_2d,
    train_test_split,
)


class TestResampling:
    def test_nearest_downsample_shape(self):
        out = nearest_neighbor_resample(np.arange(100.0).reshape(10, 10), (4, 5))
        assert out.shape == (4, 5)

    def test_nearest_identity_when_same_shape(self):
        image = np.random.default_rng(0).random((6, 6))
        np.testing.assert_array_equal(nearest_neighbor_resample(image, (6, 6)), image)

    def test_nearest_preserves_values(self):
        image = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = nearest_neighbor_resample(image, (4, 4))
        assert set(np.unique(out)) <= {1.0, 2.0, 3.0, 4.0}

    def test_nearest_3d(self):
        cube = np.random.default_rng(1).random((5, 100, 70))
        out = nearest_neighbor_resample(cube, (4, 8, 8))
        assert out.shape == (4, 8, 8)

    def test_nearest_rank_mismatch_raises(self):
        with pytest.raises(ValueError):
            nearest_neighbor_resample(np.zeros((4, 4)), (2, 2, 2))

    def test_bilinear_shape(self):
        out = bilinear_resample(np.random.default_rng(2).random((70, 70)), (8, 8))
        assert out.shape == (8, 8)

    def test_bilinear_constant_image_unchanged(self):
        out = bilinear_resample(np.full((20, 20), 3.5), (7, 9))
        np.testing.assert_allclose(out, 3.5)

    def test_bilinear_preserves_range(self):
        image = np.random.default_rng(3).random((30, 30))
        out = bilinear_resample(image, (8, 8))
        assert out.min() >= image.min() - 1e-12
        assert out.max() <= image.max() + 1e-12

    def test_bilinear_requires_2d(self):
        with pytest.raises(ValueError):
            bilinear_resample(np.zeros(10), (2, 2))

    def test_resample_2d_dispatch(self):
        image = np.random.default_rng(4).random((16, 16))
        assert resample_2d(image, (4, 4), "nearest").shape == (4, 4)
        assert resample_2d(image, (4, 4), "bilinear").shape == (4, 4)
        with pytest.raises(ValueError):
            resample_2d(image, (4, 4), "bogus")

    def test_nearest_halfway_positions_round_up(self):
        """Regression: np.round's banker's rounding sent exact half-way
        positions alternately to the lower/upper neighbour; the standard
        nearest-neighbour convention is floor(x + 0.5)."""
        # Downsampling 4 -> 2 puts every target at a half-way position
        # (0.5 and 2.5): floor(x + 0.5) picks indices 1 and 3.
        row = np.array([[10.0, 20.0, 30.0, 40.0]])
        np.testing.assert_array_equal(
            nearest_neighbor_resample(row, (1, 2)), [[20.0, 40.0]])
        # Banker's rounding used to pick {0, 2} (inconsistent neighbours).
        longer = np.arange(8.0).reshape(1, 8)
        np.testing.assert_array_equal(
            nearest_neighbor_resample(longer, (1, 4)), [[1.0, 3.0, 5.0, 7.0]])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000),
           rows=st.integers(2, 12), cols=st.integers(2, 12))
    def test_nearest_values_come_from_source(self, seed, rows, cols):
        image = np.random.default_rng(seed).random((17, 13))
        out = nearest_neighbor_resample(image, (rows, cols))
        assert np.all(np.isin(out, image))


class TestNormalizers:
    def test_velocity_roundtrip(self):
        normalizer = VelocityNormalizer(1500.0, 4500.0)
        velocity = np.array([1500.0, 3000.0, 4500.0])
        normalized = normalizer.normalize(velocity)
        np.testing.assert_allclose(normalized, [0.0, 0.5, 1.0])
        np.testing.assert_allclose(normalizer.denormalize(normalized), velocity)

    def test_velocity_invalid_range(self):
        with pytest.raises(ValueError):
            VelocityNormalizer(2000.0, 1000.0)

    def test_minmax_roundtrip(self):
        data = np.random.default_rng(5).normal(size=100)
        normalizer = MinMaxNormalizer().fit(data)
        transformed = normalizer.transform(data)
        assert transformed.min() == pytest.approx(0.0)
        assert transformed.max() == pytest.approx(1.0)
        np.testing.assert_allclose(normalizer.inverse_transform(transformed), data)

    def test_minmax_requires_fit(self):
        with pytest.raises(RuntimeError):
            MinMaxNormalizer().transform(np.ones(3))

    def test_minmax_constant_data(self):
        normalizer = MinMaxNormalizer().fit(np.full(10, 2.0))
        out = normalizer.transform(np.full(10, 2.0))
        assert np.all(np.isfinite(out))

    def test_minmax_constant_data_round_trips(self):
        """Regression: fit() used to inflate ``maximum`` by 1.0 on constant
        data, recording a range the data never had."""
        data = np.full(10, 2.0)
        normalizer = MinMaxNormalizer().fit(data)
        assert normalizer.minimum == 2.0
        assert normalizer.maximum == 2.0
        round_trip = normalizer.inverse_transform(normalizer.transform(data))
        np.testing.assert_array_equal(round_trip, data)


class TestDataset:
    def _samples(self, count=5):
        rng = np.random.default_rng(6)
        return [FWISample(seismic=rng.random((2, 10, 8)),
                          velocity=rng.random((8, 8)),
                          metadata={"index": i}) for i in range(count)]

    def test_len_and_getitem(self):
        dataset = FWIDataset(self._samples())
        assert len(dataset) == 5
        assert isinstance(dataset[0], FWISample)

    def test_slice_returns_dataset(self):
        dataset = FWIDataset(self._samples())
        subset = dataset[:2]
        assert isinstance(subset, FWIDataset)
        assert len(subset) == 2

    def test_arrays_stacking(self):
        dataset = FWIDataset(self._samples())
        assert dataset.seismic_array().shape == (5, 2, 10, 8)
        assert dataset.velocity_array().shape == (5, 8, 8)

    def test_subset_and_shuffle(self):
        dataset = FWIDataset(self._samples())
        subset = dataset.subset([3, 1])
        assert subset[0].metadata["index"] == 3
        shuffled = dataset.shuffled(rng=0)
        assert len(shuffled) == len(dataset)

    def test_map(self):
        dataset = FWIDataset(self._samples())
        doubled = dataset.map(lambda s: FWISample(s.seismic * 2, s.velocity,
                                                  s.metadata))
        np.testing.assert_allclose(doubled[0].seismic, dataset[0].seismic * 2)

    def test_batches(self):
        dataset = FWIDataset(self._samples())
        batches = list(dataset.batches(2))
        assert [len(b) for b in batches] == [2, 2, 1]
        batches = list(dataset.batches(2, drop_last=True))
        assert [len(b) for b in batches] == [2, 2]

    def test_batches_invalid_size(self):
        with pytest.raises(ValueError):
            list(FWIDataset(self._samples()).batches(0))

    def test_train_test_split_sizes(self):
        dataset = FWIDataset(self._samples(10))
        train, test = train_test_split(dataset, train_size=7, rng=0)
        assert len(train) == 7
        assert len(test) == 3

    def test_train_test_split_disjoint(self):
        dataset = FWIDataset(self._samples(10))
        train, test = train_test_split(dataset, train_size=6, rng=1)
        train_ids = {s.metadata["index"] for s in train}
        test_ids = {s.metadata["index"] for s in test}
        assert not train_ids & test_ids

    def test_train_test_split_invalid(self):
        dataset = FWIDataset(self._samples(4))
        with pytest.raises(ValueError):
            train_test_split(dataset, train_size=4)
        with pytest.raises(ValueError):
            train_test_split(dataset, train_size=3, test_size=5)


class TestSyntheticOpenFWI:
    def test_config_defaults_match_paper(self):
        config = OpenFWIConfig()
        assert config.velocity_shape == (70, 70)
        assert config.n_sources == 5
        assert config.n_receivers == 70
        assert config.n_time_steps == 1000

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            OpenFWIConfig(n_samples=0)

    def test_build_small_dataset(self, tiny_dataset):
        assert len(tiny_dataset) == 6
        sample = tiny_dataset[0]
        assert sample.seismic.shape == (3, 120, 24)
        assert sample.velocity.shape == (24, 24)

    def test_samples_have_metadata(self, tiny_dataset):
        assert "dx" in tiny_dataset[0].metadata
        assert tiny_dataset[0].metadata["family"] == "flat"

    def test_seismic_data_is_finite_and_nonzero(self, tiny_dataset):
        for sample in tiny_dataset:
            assert np.all(np.isfinite(sample.seismic))
            assert np.abs(sample.seismic).max() > 0

    def test_velocities_within_openfwi_range(self, tiny_dataset):
        for sample in tiny_dataset:
            assert sample.velocity.min() >= 1500.0
            assert sample.velocity.max() <= 4500.0

    def test_deterministic_generation(self):
        a = build_flatvel_dataset(n_samples=2, velocity_shape=(16, 16),
                                  n_time_steps=40, n_sources=2, rng=3)
        b = build_flatvel_dataset(n_samples=2, velocity_shape=(16, 16),
                                  n_time_steps=40, n_sources=2, rng=3)
        np.testing.assert_allclose(a[0].seismic, b[0].seismic)
        np.testing.assert_allclose(a[1].velocity, b[1].velocity)

    def test_domain_width_sets_dx(self):
        dataset = build_flatvel_dataset(n_samples=1, velocity_shape=(16, 16),
                                        n_time_steps=30, n_sources=1, rng=0,
                                        domain_width=700.0)
        assert dataset[0].metadata["dx"] == pytest.approx(700.0 / 16)

    def test_curve_family(self):
        dataset = build_flatvel_dataset(n_samples=1, velocity_shape=(16, 16),
                                        n_time_steps=30, n_sources=1, rng=0,
                                        family="curve")
        assert dataset[0].metadata["family"] == "curve"

    def test_sample_velocities_only(self):
        generator = SyntheticOpenFWI(OpenFWIConfig(n_samples=3,
                                                   velocity_shape=(16, 16),
                                                   n_time_steps=10,
                                                   n_sources=1,
                                                   n_receivers=16))
        velocities = generator.sample_velocities(3)
        assert velocities.shape == (3, 16, 16)
