"""Tests for optimisers and learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import Adam, CosineAnnealingLR, Linear, MSELoss, SGD, Sequential, Tensor
from repro.nn.scheduler import StepLR


def _quadratic_problem(seed=0):
    """A tiny least-squares problem: minimise ||Xw - y||^2 over w."""
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(16, 3))
    true_w = np.array([1.0, -2.0, 0.5])
    targets = features @ true_w
    return features, targets


class TestSGD:
    def test_loss_decreases(self):
        features, targets = _quadratic_problem()
        w = Tensor(np.zeros(3), requires_grad=True)
        optimizer = SGD([w], lr=0.05)
        losses = []
        for _ in range(100):
            optimizer.zero_grad()
            residual = Tensor(features) @ w - Tensor(targets)
            loss = (residual * residual).mean()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < 0.05 * losses[0]

    def test_momentum_converges(self):
        features, targets = _quadratic_problem(1)
        w = Tensor(np.zeros(3), requires_grad=True)
        optimizer = SGD([w], lr=0.02, momentum=0.9)
        for _ in range(150):
            optimizer.zero_grad()
            residual = Tensor(features) @ w - Tensor(targets)
            (residual * residual).mean().backward()
            optimizer.step()
        np.testing.assert_allclose(w.data, [1.0, -2.0, 0.5], atol=0.05)

    def test_skips_parameters_without_grad(self):
        w = Tensor(np.ones(2), requires_grad=True)
        optimizer = SGD([w], lr=0.1)
        optimizer.step()  # no gradient accumulated
        np.testing.assert_array_equal(w.data, np.ones(2))

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.0)

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_recovers_linear_weights(self):
        features, targets = _quadratic_problem(2)
        w = Tensor(np.zeros(3), requires_grad=True)
        optimizer = Adam([w], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            residual = Tensor(features) @ w - Tensor(targets)
            (residual * residual).mean().backward()
            optimizer.step()
        np.testing.assert_allclose(w.data, [1.0, -2.0, 0.5], atol=0.02)

    def test_trains_small_network(self):
        rng = np.random.default_rng(3)
        inputs = rng.normal(size=(20, 4))
        targets = rng.normal(size=(20, 2))
        model = Sequential(Linear(4, 8, rng=0), Linear(8, 2, rng=1))
        optimizer = Adam(model.parameters(), lr=0.05)
        loss_fn = MSELoss()
        first = None
        for step in range(80):
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(inputs)), targets)
            loss.backward()
            optimizer.step()
            if step == 0:
                first = loss.item()
        assert loss.item() < first

    def test_weight_decay_shrinks_weights(self):
        w = Tensor(np.ones(4) * 10.0, requires_grad=True)
        optimizer = Adam([w], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            optimizer.zero_grad()
            (w * 0.0).sum().backward()  # zero data gradient, only decay acts
            optimizer.step()
        assert np.all(np.abs(w.data) < 10.0)

    def test_invalid_betas_raise(self):
        with pytest.raises(ValueError):
            Adam([Tensor([1.0], requires_grad=True)], lr=0.1, betas=(1.5, 0.9))


class TestSchedulers:
    def test_cosine_start_and_end(self):
        w = Tensor([0.0], requires_grad=True)
        optimizer = Adam([w], lr=0.1)
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.001)
        lrs = [scheduler.step() for _ in range(10)]
        assert lrs[0] < 0.1  # decays immediately after first epoch
        assert lrs[-1] == pytest.approx(0.001, abs=1e-9)

    def test_cosine_monotonically_decreasing(self):
        optimizer = Adam([Tensor([0.0], requires_grad=True)], lr=0.1)
        scheduler = CosineAnnealingLR(optimizer, t_max=20)
        lrs = [scheduler.step() for _ in range(20)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_cosine_updates_optimizer(self):
        optimizer = Adam([Tensor([0.0], requires_grad=True)], lr=0.1)
        scheduler = CosineAnnealingLR(optimizer, t_max=4)
        scheduler.step()
        assert optimizer.lr < 0.1

    def test_cosine_invalid_tmax(self):
        optimizer = Adam([Tensor([0.0], requires_grad=True)], lr=0.1)
        with pytest.raises(ValueError):
            CosineAnnealingLR(optimizer, t_max=0)

    def test_step_lr(self):
        optimizer = SGD([Tensor([0.0], requires_grad=True)], lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs[0] == pytest.approx(1.0)
        assert lrs[1] == pytest.approx(0.1)
        assert lrs[3] == pytest.approx(0.01)
