"""Tests for the sharded dataset store and parallel generation."""

import json
import pickle

import numpy as np
import pytest

from repro.core.training import ArrayDataSource, Trainer, predict_in_batches
from repro.data import (
    DatasetStore,
    FWIDataset,
    OpenFWIConfig,
    ParallelGenerator,
    ShardLoader,
    SyntheticOpenFWI,
    chunk_layout,
    dataset_fingerprint,
    load_dataset,
    open_or_build,
    save_dataset,
    train_test_split,
)
from repro.data.store import DATA_FORMAT_VERSION, content_fingerprint
from repro.seismic.acoustic2d import SimulationConfig
from repro.seismic.boundary import SpongeBoundary
from repro.seismic.forward_modeling import ForwardModel
from repro.seismic.survey import SurveyGeometry
from repro.seismic.velocity_models import VelocityModelConfig


def small_config(**overrides) -> OpenFWIConfig:
    defaults = dict(n_samples=10, velocity_shape=(16, 16), n_sources=2,
                    n_receivers=16, n_time_steps=40, dx=700.0 / 16,
                    boundary_width=4, chunk_size=3)
    defaults.update(overrides)
    return OpenFWIConfig(**defaults)


@pytest.fixture()
def counting_forward(monkeypatch):
    """Count in-process forward-modelling calls."""
    counter = {"calls": 0}
    original = ForwardModel.model_shots_batch

    def counting(self, *args, **kwargs):
        counter["calls"] += 1
        return original(self, *args, **kwargs)

    monkeypatch.setattr(ForwardModel, "model_shots_batch", counting)
    return counter


class TestChunkLayout:
    def test_partition_covers_total(self):
        layout = chunk_layout(10, 3)
        assert layout == [(0, 0, 3), (1, 3, 3), (2, 6, 3), (3, 9, 1)]

    def test_prefix_stability(self):
        """A shorter build shares its chunk layout with a longer one."""
        assert chunk_layout(6, 3) == chunk_layout(10, 3)[:2]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            chunk_layout(0, 3)
        with pytest.raises(ValueError):
            chunk_layout(5, 0)


class TestFingerprint:
    def test_stable_across_instances(self):
        assert (dataset_fingerprint(small_config(), 7)
                == dataset_fingerprint(small_config(), 7))

    def test_changes_with_seed(self):
        assert (dataset_fingerprint(small_config(), 7)
                != dataset_fingerprint(small_config(), 8))

    def test_changes_with_config(self):
        base = dataset_fingerprint(small_config(), 7)
        assert dataset_fingerprint(small_config(peak_frequency=10.0), 7) != base
        assert dataset_fingerprint(small_config(chunk_size=5), 7) != base
        assert dataset_fingerprint(small_config(n_time_steps=50), 7) != base

    def test_changes_with_sample_count(self):
        base = dataset_fingerprint(small_config(), 7)
        assert dataset_fingerprint(small_config(), 7, n_samples=4) != base

    def test_changes_with_propagator(self, monkeypatch):
        base = dataset_fingerprint(small_config(), 7)
        monkeypatch.setenv("QUGEO_PROPAGATOR", "scalar")
        assert dataset_fingerprint(small_config(), 7) != base

    def test_default_boundary_kernel_stride_leave_fingerprint_unchanged(self):
        # The bit-identity-preserving defaults must hash exactly like configs
        # minted before the fields existed, so cached shards stay addressable.
        base = dataset_fingerprint(small_config(), 7)
        assert dataset_fingerprint(small_config(boundary="sponge"), 7) == base
        assert dataset_fingerprint(small_config(record_every=1), 7) == base

    def test_changes_with_boundary_and_record_every(self):
        base = dataset_fingerprint(small_config(), 7)
        assert dataset_fingerprint(small_config(boundary="pml"), 7) != base
        assert dataset_fingerprint(small_config(record_every=4), 7) != base

    def test_changes_with_kernel_env(self, monkeypatch):
        base = dataset_fingerprint(small_config(), 7)
        monkeypatch.setenv("QUGEO_SEISMIC_KERNEL", "numba")
        assert dataset_fingerprint(small_config(), 7) != base
        monkeypatch.setenv("QUGEO_SEISMIC_KERNEL", "python")
        assert dataset_fingerprint(small_config(), 7) == base

    def test_content_fingerprint_is_order_sensitive(self):
        sums = np.array([1.0, 2.0, 3.0])
        vsums = np.array([4.0, 5.0, 6.0])
        forward = content_fingerprint((3, 8), (3, 2, 2), sums, vsums)
        backward = content_fingerprint((3, 8), (3, 2, 2), sums[::-1],
                                       vsums[::-1])
        assert forward != backward
        assert forward["seismic_sum"] == backward["seismic_sum"]


class TestConfigPickleStability:
    """Generation configs ship to multiprocessing workers — they must pickle."""

    @pytest.mark.parametrize("config", [
        small_config(),
        VelocityModelConfig(shape=(16, 16)),
        SimulationConfig(dx=10.0, dz=10.0, dt=0.001, n_steps=10,
                         boundary=SpongeBoundary(width=4)),
        SurveyGeometry(n_sources=2, n_receivers=8, nx=16),
        SpongeBoundary(width=4),
    ])
    def test_round_trip(self, config):
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config

    def test_survey_explicit_flags_survive_pickle(self):
        survey = SurveyGeometry(n_sources=2, n_receivers=8, nx=16,
                                source_columns=[2, 9])
        clone = pickle.loads(pickle.dumps(survey))
        assert clone.explicit_source_columns
        assert not clone.explicit_receiver_columns


class TestStoreRoundTrip:
    def test_shard_round_trip_equality(self, tmp_path):
        config = small_config()
        serial = SyntheticOpenFWI(config, rng=5).build()
        built = open_or_build(config, seed=5, cache_dir=tmp_path)
        np.testing.assert_array_equal(built.seismic_array(),
                                      serial.seismic_array())
        np.testing.assert_array_equal(built.velocity_array(),
                                      serial.velocity_array())
        assert built[0].metadata["family"] == "flat"

    def test_cache_hit_runs_zero_forward_calls(self, tmp_path,
                                               counting_forward):
        config = small_config()
        first = open_or_build(config, seed=5, cache_dir=tmp_path)
        assert counting_forward["calls"] > 0
        counting_forward["calls"] = 0
        second = open_or_build(config, seed=5, cache_dir=tmp_path)
        assert counting_forward["calls"] == 0
        np.testing.assert_array_equal(first.seismic_array(),
                                      second.seismic_array())
        np.testing.assert_array_equal(first.velocity_array(),
                                      second.velocity_array())

    def test_different_seed_is_a_different_entry(self, tmp_path):
        config = small_config(n_samples=4, chunk_size=2)
        a = open_or_build(config, seed=1, cache_dir=tmp_path)
        b = open_or_build(config, seed=2, cache_dir=tmp_path)
        assert len(DatasetStore(tmp_path).entries()) == 2
        assert not np.array_equal(a.velocity_array(), b.velocity_array())

    def test_save_and_load_generic_dataset(self, tmp_path):
        dataset = SyntheticOpenFWI(small_config(n_samples=4, chunk_size=2),
                                   rng=3).build()
        key = save_dataset(dataset, tmp_path, chunk_size=3)
        loaded = load_dataset(tmp_path, key)
        np.testing.assert_array_equal(loaded.seismic_array(),
                                      dataset.seismic_array())
        np.testing.assert_array_equal(loaded.velocity_array(),
                                      dataset.velocity_array())

    def test_load_incomplete_entry_raises(self, tmp_path):
        config = small_config()
        store = DatasetStore(tmp_path)
        fingerprint = dataset_fingerprint(config, 5)
        generator = SyntheticOpenFWI(config, rng=5)
        manifest = store.init_manifest(fingerprint,
                                       n_samples=config.n_samples,
                                       chunk_size=config.chunk_size)
        velocities, seismic = generator.build_chunk(0, 3)
        store.write_shard(fingerprint, manifest, 0, 0, seismic, velocities)
        with pytest.raises(ValueError, match="incomplete"):
            store.load(fingerprint)

    def test_format_version_mismatch_rejected(self, tmp_path):
        config = small_config(n_samples=4, chunk_size=2)
        open_or_build(config, seed=5, cache_dir=tmp_path)
        store = DatasetStore(tmp_path)
        fingerprint = dataset_fingerprint(config, 5)
        path = store.manifest_path(fingerprint)
        manifest = json.loads(path.read_text())
        manifest["format_version"] = DATA_FORMAT_VERSION + 1
        path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format version"):
            store.read_manifest(fingerprint)


class TestResume:
    def test_resume_after_partial_build(self, tmp_path, counting_forward):
        config = small_config()  # 10 samples in chunks of 3 -> 4 chunks
        serial = SyntheticOpenFWI(config, rng=9).build()
        store = DatasetStore(tmp_path)
        fingerprint = dataset_fingerprint(config, 9)
        generator = SyntheticOpenFWI(config, rng=9)
        manifest = store.init_manifest(fingerprint,
                                       n_samples=config.n_samples,
                                       chunk_size=config.chunk_size,
                                       config=config, seed=9,
                                       metadata=generator._sample_metadata())
        # Simulate an interrupted build: only chunks 0 and 2 were persisted.
        for chunk_index, start, count in [(0, 0, 3), (2, 6, 3)]:
            velocities, seismic = generator.build_chunk(chunk_index, count)
            store.write_shard(fingerprint, manifest, chunk_index, start,
                              seismic, velocities)
        assert not store.is_complete(fingerprint)

        counting_forward["calls"] = 0
        resumed = open_or_build(config, seed=9, cache_dir=tmp_path)
        # Only the two missing chunks were generated.
        assert counting_forward["calls"] == 2
        assert store.is_complete(fingerprint)
        np.testing.assert_array_equal(resumed.seismic_array(),
                                      serial.seismic_array())
        np.testing.assert_array_equal(resumed.velocity_array(),
                                      serial.velocity_array())

    def test_resume_rebuilds_only_truncated_shard(self, tmp_path,
                                                  counting_forward):
        """Regression: a shard truncated mid-write (torn copy, full disk)
        must be detected on resume and only that chunk regenerated."""
        config = small_config()  # 10 samples in chunks of 3 -> 4 chunks
        serial = SyntheticOpenFWI(config, rng=9).build()
        store = DatasetStore(tmp_path)
        fingerprint = dataset_fingerprint(config, 9)
        open_or_build(config, seed=9, cache_dir=tmp_path)
        assert store.is_complete(fingerprint)

        shard = store.shard_path(fingerprint, 1)
        shard.write_bytes(shard.read_bytes()[: shard.stat().st_size // 2])

        counting_forward["calls"] = 0
        with pytest.warns(UserWarning, match="checksum mismatch"):
            resumed = open_or_build(config, seed=9, cache_dir=tmp_path)
        # Only the truncated chunk was regenerated, and the repaired entry
        # is bit-identical to an uninterrupted serial build.
        assert counting_forward["calls"] == 1
        assert store.is_complete(fingerprint)
        assert store.validate_entry(fingerprint) == []
        np.testing.assert_array_equal(resumed.seismic_array(),
                                      serial.seismic_array())
        np.testing.assert_array_equal(resumed.velocity_array(),
                                      serial.velocity_array())

    def test_finalize_refuses_missing_chunks(self, tmp_path):
        config = small_config()
        store = DatasetStore(tmp_path)
        fingerprint = dataset_fingerprint(config, 9)
        manifest = store.init_manifest(fingerprint,
                                       n_samples=config.n_samples,
                                       chunk_size=config.chunk_size)
        with pytest.raises(ValueError, match="missing chunks"):
            store.finalize(fingerprint, manifest)


class TestParallelGeneration:
    def test_parallel_matches_serial_bit_for_bit(self):
        config = small_config()
        serial = SyntheticOpenFWI(config, rng=21).build()
        parallel = SyntheticOpenFWI(config, rng=21).build(workers=2)
        np.testing.assert_array_equal(serial.seismic_array(),
                                      parallel.seismic_array())
        np.testing.assert_array_equal(serial.velocity_array(),
                                      parallel.velocity_array())

    def test_parallel_store_build_matches_serial(self, tmp_path):
        config = small_config()
        serial = SyntheticOpenFWI(config, rng=21).build()
        stored = open_or_build(config, seed=21, cache_dir=tmp_path, workers=2)
        np.testing.assert_array_equal(serial.seismic_array(),
                                      stored.seismic_array())

    def test_parallel_generator_default_entry_point(self):
        config = small_config(n_samples=4, chunk_size=2)
        serial = SyntheticOpenFWI(config, rng=2).build()
        parallel = ParallelGenerator(config, seed=2, workers=2).generate()
        np.testing.assert_array_equal(serial.seismic_array(),
                                      parallel.seismic_array())

    def test_chunk_streams_are_execution_order_independent(self):
        generator = SyntheticOpenFWI(small_config(), rng=13)
        late_first = generator.build_chunk(2, 3)
        early = generator.build_chunk(0, 3)
        again = SyntheticOpenFWI(small_config(), rng=13)
        np.testing.assert_array_equal(again.build_chunk(2, 3)[0],
                                      late_first[0])
        np.testing.assert_array_equal(again.build_chunk(0, 3)[0], early[0])


class TestShardLoader:
    @pytest.fixture()
    def stored(self, tmp_path):
        config = small_config()
        dataset = open_or_build(config, seed=4, cache_dir=tmp_path)
        loader = open_or_build(config, seed=4, cache_dir=tmp_path,
                               stream=True)
        return dataset, loader

    def test_len_iteration_and_indexing(self, stored):
        dataset, loader = stored
        assert isinstance(loader, ShardLoader)
        assert len(loader) == len(dataset)
        np.testing.assert_array_equal(loader[3].seismic, dataset[3].seismic)
        stacked = np.stack([sample.velocity for sample in loader])
        np.testing.assert_array_equal(stacked, dataset.velocity_array())

    def test_gather_matches_materialized(self, stored):
        dataset, loader = stored
        indices = np.array([7, 0, 5, 5])
        seismic, velocity = loader.gather(indices)
        expected = np.stack([dataset[i].seismic.reshape(-1) for i in indices])
        np.testing.assert_array_equal(seismic, expected)
        np.testing.assert_array_equal(
            velocity, np.stack([dataset[i].velocity for i in indices]))

    def test_fingerprint_matches_array_source(self, stored):
        dataset, loader = stored
        source = ArrayDataSource(
            np.stack([s.seismic.reshape(-1) for s in dataset]),
            dataset.velocity_array())
        assert loader.fingerprint() == source.fingerprint()

    def test_subset_and_split(self, stored):
        dataset, loader = stored
        train, test = train_test_split(loader, train_size=7, rng=0)
        train_arrays, _ = train.gather(np.arange(len(train)))
        assert train_arrays.shape[0] == 7
        assert len(test) == 3
        # The same split of the materialized dataset selects the same rows.
        mat_train, _ = train_test_split(dataset, train_size=7, rng=0)
        np.testing.assert_array_equal(
            train_arrays,
            np.stack([s.seismic.reshape(-1) for s in mat_train]))

    def test_bounded_shard_cache(self, tmp_path):
        config = small_config()
        open_or_build(config, seed=4, cache_dir=tmp_path)
        loader = ShardLoader(DatasetStore(tmp_path),
                             dataset_fingerprint(config, 4),
                             max_cached_shards=1)
        loader.gather(np.arange(len(loader)))
        assert len(loader._cache) == 1

    def test_surfaces_time_axis_metadata(self, stored):
        dataset, loader = stored
        assert loader.record_every == 1
        dt = loader._metadata["dt"]
        assert loader.effective_dt == pytest.approx(dt)

    def test_effective_dt_reflects_record_stride(self, tmp_path):
        config = small_config(record_every=4)
        loader = open_or_build(config, seed=4, cache_dir=tmp_path,
                               stream=True)
        assert loader.record_every == 4
        assert loader.effective_dt == pytest.approx(
            loader._metadata["dt"] * 4)
        assert loader.seismic_sample_shape[1] == 10  # ceil(40 / 4)

    def test_effective_dt_none_for_legacy_manifests(self, stored):
        _, loader = stored
        legacy = loader.subset(np.arange(len(loader)))
        legacy._metadata = {k: v for k, v in loader._metadata.items()
                            if k not in ("dt", "effective_dt",
                                         "record_every")}
        assert legacy.record_every == 1
        assert legacy.effective_dt is None

    def test_predict_in_batches_streams(self, stored):
        dataset, loader = stored

        class EchoModel:
            def predict_batch(self, block):
                return np.asarray(block)[:, :4]

        streamed = predict_in_batches(EchoModel(), loader, batch_size=3)
        stacked = np.stack([s.seismic.reshape(-1) for s in dataset])
        np.testing.assert_array_equal(streamed, stacked[:, :4])


class TestTrainerIntegration:
    def test_training_from_shard_loader_matches_in_memory(self, tmp_path,
                                                          tiny_scaled_dataset):
        from repro.core.classical_models import build_cnn_ly
        from repro.core.config import TrainingConfig

        scaled = tiny_scaled_dataset
        key = save_dataset(FWIDataset(list(scaled), name="scaled"),
                           tmp_path, key="scaled-tiny", chunk_size=2)
        loader = load_dataset(tmp_path, key, stream=True)

        def run(dataset):
            model = build_cnn_ly(int(np.prod(scaled[0].seismic.shape)),
                                 scaled[0].velocity.shape, rng=0)
            trainer = Trainer(TrainingConfig(epochs=2, batch_size=2, seed=0))
            outcome = trainer.train(model, dataset)
            return model.state_dict(), outcome.final_metrics

        memory_state, memory_metrics = run(scaled)
        loader_state, loader_metrics = run(loader)
        assert memory_metrics == loader_metrics
        for name in memory_state:
            np.testing.assert_array_equal(memory_state[name],
                                          loader_state[name])


class TestExperimentPreparation:
    def test_prepare_dataset_uses_cache(self, tmp_path, counting_forward):
        from repro.core.experiment import prepare_dataset

        config = small_config(n_samples=4, chunk_size=2)
        first = prepare_dataset(config, seed=6, cache_dir=tmp_path)
        counting_forward["calls"] = 0
        second = prepare_dataset(config, seed=6, cache_dir=tmp_path)
        assert counting_forward["calls"] == 0
        np.testing.assert_array_equal(first.seismic_array(),
                                      second.seismic_array())

    def test_prepare_dataset_without_cache(self):
        from repro.core.experiment import prepare_dataset

        config = small_config(n_samples=4, chunk_size=2)
        dataset = prepare_dataset(config, seed=6)
        assert len(dataset) == 4


class TestStoreTelemetry:
    def test_cache_hit_records_zero_forward_model_spans(self, tmp_path):
        from repro.telemetry import capture

        config = small_config(n_samples=4, chunk_size=2)
        open_or_build(config, seed=5, cache_dir=tmp_path)  # cold build
        with capture("summary") as telemetry:
            open_or_build(config, seed=5, cache_dir=tmp_path)  # pure hit
            snapshot = telemetry.snapshot()
        assert not any("forward_model" in path for path in snapshot["spans"])
        assert "forward_model.calls" not in snapshot["counters"]
        # The hit is served from shards, which the registry does see.
        assert snapshot["counters"]["store.shard_reads"] > 0
        assert snapshot["counters"]["store.bytes_decompressed"] > 0

    def test_cold_build_records_forward_model_and_writes(self, tmp_path):
        from repro.telemetry import capture

        config = small_config(n_samples=4, chunk_size=2)
        with capture("summary") as telemetry:
            open_or_build(config, seed=5, cache_dir=tmp_path)
            snapshot = telemetry.snapshot()
        assert snapshot["counters"]["forward_model.calls"] > 0
        assert snapshot["counters"]["store.shard_writes"] == 2
        assert snapshot["counters"]["store.datagen.chunks"] == 2
        assert snapshot["timers"]["store.datagen.chunk"]["count"] == 2

    def test_warm_shard_loader_reports_lru_hits(self, tmp_path):
        from repro.telemetry import capture

        config = small_config()  # 10 samples in chunks of 3 -> 4 shards
        open_or_build(config, seed=4, cache_dir=tmp_path)
        with capture("summary") as telemetry:
            loader = open_or_build(config, seed=4, cache_dir=tmp_path,
                                   stream=True)
            loader.gather(np.arange(len(loader)))  # cold sweep
            loader.gather(np.arange(len(loader)))  # warm sweep
            counters = telemetry.snapshot()["counters"]
        assert counters["store.lru.hits"] > 0
        # Four shards fit the default cache: the warm sweep misses nothing.
        assert counters["store.lru.misses"] == 4
