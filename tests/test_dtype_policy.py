"""Dtype-policy tests: resolution, cache keying, no-silent-upcast, parity.

The float64 policy is the default and must leave every numeric path
bit-identical to the historical behaviour (the existing parity suites pin
that).  These tests cover the float32 side: resolution through
``QUGEO_DTYPE`` and explicit specs, dtype-aware memoisation caches, an
end-to-end check that a float32 run stays in float32 on the hot path, and
relaxed-tolerance parity of the float32 engines against their float64
references.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import EinsumBatchBackend, get_backend
from repro.quantum.autodiff import circuit_gradients_batched
from repro.quantum.circuit import ParameterizedCircuit
from repro.quantum.statevector import Statevector
from repro.seismic import (
    AcousticSimulator2D,
    BatchedAcousticSimulator2D,
    SimulationConfig,
    SpongeBoundary,
    VelocityModelConfig,
    flat_layer_model,
    ricker_wavelet,
    stable_time_step,
)
from repro.xm import (
    FLOAT32,
    FLOAT64,
    available_policies,
    ensure_complex,
    get_dtype_policy,
)

#: float32 carries ~7 decimal digits; accumulated over a short circuit or a
#: few dozen propagation steps the error stays well inside 1e-4.
F32_ATOL = 1e-4


# --------------------------------------------------------------------------- #
# policy resolution
# --------------------------------------------------------------------------- #
def test_policy_singletons_and_resolution(monkeypatch):
    assert set(available_policies()) == {"float64", "float32"}
    assert get_dtype_policy(None) is FLOAT64
    assert get_dtype_policy("float32") is FLOAT32
    assert get_dtype_policy(FLOAT32) is FLOAT32
    monkeypatch.setenv("QUGEO_DTYPE", "float32")
    assert get_dtype_policy(None) is FLOAT32
    with pytest.raises(ValueError):
        get_dtype_policy("float16")


def test_policy_dtypes():
    assert FLOAT64.real == np.dtype(np.float64)
    assert FLOAT64.complex == np.dtype(np.complex128)
    assert FLOAT32.real == np.dtype(np.float32)
    assert FLOAT32.complex == np.dtype(np.complex64)
    # Accumulation stays at double precision under both policies.
    for policy in (FLOAT64, FLOAT32):
        assert policy.accum_real == np.dtype(np.float64)
        assert policy.accum_complex == np.dtype(np.complex128)


def test_ensure_complex_preserves_complex_kind():
    c64 = np.ones(4, dtype=np.complex64)
    assert ensure_complex(c64).dtype == np.complex64
    real = np.ones(4, dtype=np.float64)
    assert ensure_complex(real).dtype == np.complex128
    assert ensure_complex(real, FLOAT32).dtype == np.complex64


# --------------------------------------------------------------------------- #
# dtype-keyed caches
# --------------------------------------------------------------------------- #
def test_gate_cast_cache_is_dtype_keyed():
    from repro.quantum.gates import GATES, _cast_gate

    h64 = _cast_gate(GATES["H"], np.dtype(np.complex128))
    h32 = _cast_gate(GATES["H"], np.dtype(np.complex64))
    assert h64.dtype == np.complex128 and h32.dtype == np.complex64
    # Casts of the canonical gates are memoised (stable identity) and frozen.
    assert _cast_gate(GATES["H"], np.dtype(np.complex64)) is h32
    assert not h32.flags.writeable


def test_sign_matrix_cache_is_dtype_keyed():
    from repro.quantum.measurement import _sign_matrix

    s64 = _sign_matrix(3, (0, 2))
    s32 = _sign_matrix(3, (0, 2), dtype=np.dtype(np.float32))
    assert s64.dtype == np.float64 and s32.dtype == np.float32
    np.testing.assert_allclose(s32, s64)


def test_einsum_fixed_tensor_cache_is_dtype_keyed():
    b64 = EinsumBatchBackend()
    b32 = EinsumBatchBackend(policy="float32")
    circuit = ParameterizedCircuit(2)
    circuit.add_gate("H", [0])
    circuit.add_gate("CNOT", [0, 1])
    state = np.zeros(4, dtype=np.complex128)
    state[0] = 1.0
    b64.run(circuit, state)
    b32.run(circuit, state)
    assert all(key[1] == np.dtype(np.complex128).str
               for key in b64._fixed_tensors)
    assert all(key[1] == np.dtype(np.complex64).str
               for key in b32._fixed_tensors)


# --------------------------------------------------------------------------- #
# no silent upcast on the float32 hot path
# --------------------------------------------------------------------------- #
def test_float32_backend_outputs_stay_complex64():
    backend = EinsumBatchBackend(policy="float32")
    assert backend.policy is FLOAT32
    rng = np.random.default_rng(0)
    circuit = ParameterizedCircuit(3)
    for q in range(3):
        circuit.add_parametric_gate("U3", [q])
    circuit.add_gate("CNOT", [0, 1])
    params = rng.normal(size=circuit.n_params)
    states = rng.normal(size=(4, 8)) + 1j * rng.normal(size=(4, 8))
    states /= np.linalg.norm(states, axis=1, keepdims=True)
    out = backend.run_batched(circuit, states, params)
    assert out.dtype == np.complex64
    out, intermediates = backend.run_batched(circuit, states, params,
                                             return_intermediate=True)
    assert out.dtype == np.complex64
    assert all(step.dtype == np.complex64 for step in intermediates)
    single = backend.run(circuit, states[0], params)
    assert single.dtype == np.complex64


def test_float32_statevector_round_trip():
    state = Statevector.zero_state(3, dtype=np.complex64)
    assert state.amplitudes.dtype == np.complex64
    evolved = state.apply(np.asarray([[1, 1], [1, -1]]) / np.sqrt(2.0), [0])
    assert evolved.amplitudes.dtype == np.complex64


def test_float32_propagator_computes_in_float32_and_accumulates_in_float64():
    velocity = flat_layer_model(
        VelocityModelConfig(shape=(24, 24), min_velocity=1500.0,
                            max_velocity=3500.0), rng=1)
    dt = stable_time_step(3500.0, dx=10.0, spatial_order=4)
    config = SimulationConfig(dx=10.0, dz=10.0, dt=dt, n_steps=40,
                              spatial_order=4,
                              boundary=SpongeBoundary(width=4))
    sim = BatchedAcousticSimulator2D(velocity, config, policy="float32")
    # Stencil operators and the boundary mask sit on the hot path: float32.
    assert sim._mask.dtype == np.float32
    assert sim._coeffs_z is None or sim._coeffs_z.dtype == np.float32
    wavelet = ricker_wavelet(config.n_steps, config.dt, 12.0)
    sources = [(1, 4), (1, 18)]
    receivers = [(1, c) for c in range(0, 24, 4)]
    gather, snaps = sim.simulate_shots(sources, wavelet, receivers,
                                       record_wavefield=True,
                                       wavefield_stride=10)
    # Receiver traces are gathered at accumulation precision; the recorded
    # wavefield snapshots are the raw compute buffers.
    assert gather.dtype == np.float64
    assert all(snap.dtype == np.float32 for snap in snaps)


# --------------------------------------------------------------------------- #
# float32 vs float64 relaxed-tolerance parity
# --------------------------------------------------------------------------- #
def test_float32_einsum_parity_relaxed():
    rng = np.random.default_rng(21)
    circuit = ParameterizedCircuit(4)
    for q in range(4):
        circuit.add_parametric_gate("U3", [q])
    circuit.add_gate("CNOT", [0, 1])
    circuit.add_gate("CZ", [2, 3])
    for q in range(4):
        circuit.add_parametric_gate("RY", [q])
    params = rng.normal(size=circuit.n_params)
    states = rng.normal(size=(5, 16)) + 1j * rng.normal(size=(5, 16))
    states /= np.linalg.norm(states, axis=1, keepdims=True)
    reference = EinsumBatchBackend().run_batched(circuit, states, params)
    result = EinsumBatchBackend(policy="float32").run_batched(circuit, states,
                                                              params)
    np.testing.assert_allclose(result, reference, atol=F32_ATOL, rtol=0)


def test_float32_batched_adjoint_parity_relaxed():
    rng = np.random.default_rng(22)
    circuit = ParameterizedCircuit(3)
    for q in range(3):
        circuit.add_parametric_gate("U3", [q])
    circuit.add_gate("CNOT", [0, 1])
    circuit.add_parametric_gate("CU3", [1, 2])
    params = rng.normal(size=circuit.n_params)
    states = rng.normal(size=(4, 8)) + 1j * rng.normal(size=(4, 8))
    states /= np.linalg.norm(states, axis=1, keepdims=True)
    signs = 1.0 - 2.0 * ((np.arange(8) >> 2) & 1)

    def loss_head(psis):
        losses = (np.abs(psis) ** 2) @ signs
        return losses, signs * psis

    loss64, grads64 = circuit_gradients_batched(
        circuit, params, states, loss_head, backend=get_backend("einsum"))
    loss32, grads32 = circuit_gradients_batched(
        circuit, params, states, loss_head,
        backend=EinsumBatchBackend(policy="float32"))
    # Gradients accumulate in float64 under both policies.
    assert grads32.dtype == np.float64
    np.testing.assert_allclose(loss32, loss64, atol=F32_ATOL, rtol=0)
    np.testing.assert_allclose(grads32, grads64, atol=F32_ATOL, rtol=0)


def test_float32_batched_propagator_parity_relaxed():
    velocity = flat_layer_model(
        VelocityModelConfig(shape=(24, 24), min_velocity=1500.0,
                            max_velocity=3500.0), rng=3)
    dt = stable_time_step(3500.0, dx=10.0, spatial_order=4)
    config = SimulationConfig(dx=10.0, dz=10.0, dt=dt, n_steps=50,
                              spatial_order=4,
                              boundary=SpongeBoundary(width=4))
    wavelet = ricker_wavelet(config.n_steps, config.dt, 12.0)
    sources = [(1, 3), (1, 12), (1, 20)]
    receivers = [(1, c) for c in range(0, 24, 3)]
    reference = AcousticSimulator2D(velocity, config).simulate_shots(
        sources, wavelet, receivers)
    result = BatchedAcousticSimulator2D(
        velocity, config, policy="float32").simulate_shots(
        sources, wavelet, receivers)
    scale = np.abs(reference).max()
    np.testing.assert_allclose(result / scale, reference / scale,
                               atol=F32_ATOL, rtol=0)


# --------------------------------------------------------------------------- #
# nn / config plumbing
# --------------------------------------------------------------------------- #
def test_tensor_preserves_float32():
    from repro.nn import Tensor

    t = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
    assert t.data.dtype == np.float32
    out = (t * 2.0 + 1.0).sum()
    out.backward()
    # Forward math stays in float32; gradients accumulate in float64.
    assert t.grad.dtype == np.float64
    explicit = Tensor([1.0, 2.0], dtype=np.float32)
    assert explicit.data.dtype == np.float32


def test_optimizer_keeps_param_dtype_and_float64_moments():
    from repro.nn import Adam, Tensor

    param = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    optim = Adam([param], lr=0.1)
    assert all(m.dtype == np.float64 for m in optim._m + optim._v)
    param.grad = np.full(3, 0.5)
    optim.step()
    assert param.data.dtype == np.float32
    state = optim.state_dict()
    optim.load_state_dict(state)
    assert all(m.dtype == np.float64 for m in optim._m + optim._v)


def test_normalizers_accept_dtype():
    from repro.data.normalization import MinMaxNormalizer, VelocityNormalizer

    vel = np.linspace(1500.0, 4500.0, 7)
    default = VelocityNormalizer().normalize(vel)
    assert default.dtype == np.float64
    f32 = VelocityNormalizer(dtype=np.float32).normalize(vel)
    assert f32.dtype == np.float32
    np.testing.assert_allclose(f32, default, atol=1e-6)
    mm = MinMaxNormalizer(dtype=np.float32).fit(vel)
    assert mm.transform(vel).dtype == np.float32
    assert MinMaxNormalizer().fit(vel).transform(vel).dtype == np.float64


def test_training_config_dtype_validated_and_resolved():
    from repro.core.config import TrainingConfig
    from repro.core.training import Trainer

    assert Trainer(TrainingConfig(dtype="float32")).policy is FLOAT32
    assert Trainer(TrainingConfig()).policy is FLOAT64
    with pytest.raises(ValueError, match="float16"):
        TrainingConfig(dtype="float16")


def test_checkpoint_config_roundtrips_dtype():
    from dataclasses import asdict

    from repro.core.config import TrainingConfig

    config = TrainingConfig(dtype="float32")
    assert TrainingConfig(**asdict(config)).dtype == "float32"
