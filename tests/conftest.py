"""Shared pytest fixtures.

The heavier fixtures (small synthetic datasets, scaled datasets) are session
scoped so the many tests that need example data do not repeatedly pay for
forward modelling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import QuGeoDataConfig
from repro.core.data_scaling import DSampleScaler, ForwardModelingScaler
from repro.data.openfwi import build_flatvel_dataset


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A very small full-resolution FlatVel-style dataset (fast to build)."""
    return build_flatvel_dataset(n_samples=6, velocity_shape=(24, 24),
                                 n_time_steps=120, n_sources=3, rng=7)


@pytest.fixture(scope="session")
def small_data_config():
    """Scaling targets small enough for fast quantum tests (64-value input).

    The 6x6 velocity map keeps both decoders valid on the 6 data qubits the
    64-value input needs (the pixel decoder reads 36 <= 2**6 amplitudes, the
    layer decoder needs one qubit per row).
    """
    return QuGeoDataConfig(scaled_seismic_shape=(1, 8, 8),
                           scaled_velocity_shape=(6, 6))


@pytest.fixture(scope="session")
def tiny_scaled_dataset(tiny_dataset, small_data_config):
    """The tiny dataset scaled with the physics-guided scaler (64 inputs)."""
    scaler = ForwardModelingScaler(small_data_config,
                                   simulation_shape=(16, 16),
                                   simulation_steps=64)
    return scaler.scale_dataset(tiny_dataset)


@pytest.fixture(scope="session")
def tiny_dsample_dataset(tiny_dataset, small_data_config):
    """The tiny dataset scaled with the nearest-neighbour baseline."""
    return DSampleScaler(small_data_config).scale_dataset(tiny_dataset)
