"""Tests for the QuGeo configuration dataclasses."""

import pytest

from repro.core.config import (
    QuGeoConfig,
    QuGeoDataConfig,
    QuGeoVQCConfig,
    TrainingConfig,
)


class TestQuGeoDataConfig:
    def test_defaults_match_paper(self):
        config = QuGeoDataConfig()
        assert config.scaled_seismic_size == 256
        assert config.scaled_velocity_shape == (8, 8)
        assert config.velocity_range == (1500.0, 4500.0)

    def test_sizes(self):
        config = QuGeoDataConfig(scaled_seismic_shape=(2, 4, 4),
                                 scaled_velocity_shape=(4, 4))
        assert config.scaled_seismic_size == 32
        assert config.scaled_velocity_size == 16

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            QuGeoDataConfig(scaled_seismic_shape=(0, 8, 8))
        with pytest.raises(ValueError):
            QuGeoDataConfig(scaled_velocity_shape=(8,))
        with pytest.raises(ValueError):
            QuGeoDataConfig(velocity_range=(4500.0, 1500.0))


class TestQuGeoVQCConfig:
    def test_paper_configuration(self):
        """8 qubits / 12 blocks / 256 inputs / <16 qubits budget."""
        config = QuGeoVQCConfig()
        assert config.data_qubits == 8
        assert config.total_qubits == 8
        assert config.input_size == 256
        assert config.n_blocks == 12
        assert config.total_qubits <= 16

    def test_qubit_budget_enforced(self):
        with pytest.raises(ValueError):
            QuGeoVQCConfig(n_groups=3, qubits_per_group=8, max_qubits=16)

    def test_batch_qubits_count_towards_budget(self):
        config = QuGeoVQCConfig(n_batch_qubits=2)
        assert config.total_qubits == 10
        assert config.batch_size == 4

    def test_pixel_decoder_needs_enough_readout(self):
        with pytest.raises(ValueError):
            QuGeoVQCConfig(qubits_per_group=4, decoder="pixel",
                           output_shape=(8, 8))

    def test_layer_decoder_needs_one_qubit_per_row(self):
        with pytest.raises(ValueError):
            QuGeoVQCConfig(qubits_per_group=4, decoder="layer",
                           output_shape=(8, 8))

    def test_invalid_decoder(self):
        with pytest.raises(ValueError):
            QuGeoVQCConfig(decoder="bogus")

    def test_readout_qubits_needed(self):
        assert QuGeoVQCConfig(output_shape=(8, 8)).readout_qubits_needed == 6


class TestTrainingConfig:
    def test_defaults_match_paper(self):
        config = TrainingConfig()
        assert config.epochs == 500
        assert config.learning_rate == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=-1)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)


class TestQuGeoConfig:
    def test_defaults_are_consistent(self):
        config = QuGeoConfig()
        assert config.data.scaled_seismic_size <= config.vqc.input_size
        assert config.data.scaled_velocity_shape == config.vqc.output_shape

    def test_rejects_capacity_mismatch(self):
        with pytest.raises(ValueError):
            QuGeoConfig(data=QuGeoDataConfig(scaled_seismic_shape=(8, 8, 8)))

    def test_rejects_output_shape_mismatch(self):
        with pytest.raises(ValueError):
            QuGeoConfig(data=QuGeoDataConfig(scaled_velocity_shape=(4, 4)))

    def test_rejects_unknown_scaling_method(self):
        with pytest.raises(ValueError):
            QuGeoConfig(scaling_method="bogus")
