"""Reverse-mode automatic differentiation over NumPy arrays.

:class:`Tensor` wraps a NumPy array and records the operations applied to it
in a dynamic computation graph.  Calling :meth:`Tensor.backward` on a scalar
result propagates gradients to every tensor created with
``requires_grad=True``.  The operator coverage is exactly what the QuGeo
classical models need: elementwise arithmetic, matrix multiplication,
reshaping, reductions, ReLU/sigmoid/tanh, and 2-D convolution / pooling
(implemented in :mod:`repro.nn.functional`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload.  Float32 arrays keep their dtype (the reduced
        precision of :class:`repro.xm.DTypePolicy`'s ``float32``); anything
        else is converted to ``float64`` exactly as before.  Pass ``dtype``
        to force a precision.
    requires_grad:
        Track operations on this tensor so gradients can flow back to it.
        Gradients are always accumulated in ``float64`` regardless of the
        data precision.
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 _parents: Tuple["Tensor", ...] = (), name: str = "",
                 dtype=None) -> None:
        if dtype is not None:
            self.data = np.asarray(data, dtype=dtype)
        else:
            data = np.asarray(data)
            if data.dtype == np.float32:
                self.data = data
            else:
                self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents = _parents
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    def _coerce(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        # Constants join the graph at this tensor's precision so a float32
        # network is not silently upcast by every scalar coefficient.
        return Tensor(other, dtype=self.data.dtype)

    def _make(self, data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=parents if requires else ())
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=np.float64)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.shape))

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data**(exponent - 1))

        return self._make(data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data)
                                     if self.data.ndim == 2 else grad * other.data)
                else:
                    self._accumulate(
                        _unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad)
                                      if other.data.ndim == 2 else self.data * grad)
                else:
                    other._accumulate(
                        _unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.shape))

        return self._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return self._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            if axis is None:
                self._accumulate(np.broadcast_to(grad, self.shape).copy())
                return
            if not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------ #
    # nonlinearities
    # ------------------------------------------------------------------ #
    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out * (1.0 - out))

        return self._make(out, (self,), backward)

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out**2))

        return self._make(out, (self,), backward)

    def exp(self) -> "Tensor":
        out = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out)

        return self._make(out, (self,), backward)

    def log(self) -> "Tensor":
        out = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return self._make(out, (self,), backward)

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1 for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without an explicit gradient "
                                 "requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64).reshape(self.shape)

        # Topologically order the graph (iteratively, to avoid recursion
        # limits on deep networks) so each node's backward runs after all of
        # its consumers have contributed their gradient.
        order: List[Tensor] = []
        visited: Set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)


def as_tensor(value: Union[Tensor, ArrayLike], requires_grad: bool = False) -> Tensor:
    """Return ``value`` as a :class:`Tensor` (no copy when already a tensor)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
