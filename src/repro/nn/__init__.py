"""A small NumPy autograd / neural-network substrate.

The paper trains its classical components (the Q-D-CNN data compressor and
the CNN-PX / CNN-LY baselines) in PyTorch; this package provides the minimal
equivalent so the reproduction has no deep-learning framework dependency:

* :class:`~repro.nn.tensor.Tensor` — reverse-mode autograd over NumPy arrays,
* layers — ``Linear``, ``Conv2d``, ``ReLU``, ``Flatten``, pooling, ``Sequential``,
* losses — ``MSELoss``, ``L1Loss``,
* optimisers — ``SGD``, ``Adam``,
* schedulers — ``CosineAnnealingLR`` (the schedule used in the paper).
"""

from repro.nn.tensor import Tensor
from repro.nn.layers import (
    Module,
    Linear,
    Conv2d,
    ReLU,
    Sigmoid,
    Tanh,
    Flatten,
    AvgPool2d,
    MaxPool2d,
    Sequential,
)
from repro.nn.losses import MSELoss, L1Loss
from repro.nn.optim import SGD, Adam
from repro.nn.scheduler import CosineAnnealingLR, StepLR

__all__ = [
    "Tensor",
    "Module",
    "Linear",
    "Conv2d",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "AvgPool2d",
    "MaxPool2d",
    "Sequential",
    "MSELoss",
    "L1Loss",
    "SGD",
    "Adam",
    "CosineAnnealingLR",
    "StepLR",
]
