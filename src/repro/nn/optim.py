"""Gradient-descent optimisers operating on :class:`~repro.nn.tensor.Tensor` parameters.

The same optimisers drive both the classical CNNs and the variational quantum
circuits (whose parameters are plain NumPy vectors wrapped in tensors), so
the training loops in :mod:`repro.core.training` are framework-agnostic.  The
paper trains everything with Adam (initial LR 0.1, cosine annealing).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.nn.tensor import Tensor


def _copy_arrays(arrays: Sequence[np.ndarray]) -> List[np.ndarray]:
    return [np.asarray(array).copy() for array in arrays]


def _load_arrays(target: List[np.ndarray],
                 arrays: Sequence[np.ndarray], name: str) -> None:
    """Replace ``target``'s buffers with copies of ``arrays``, validating shapes.

    Loaded values are cast to each buffer's own dtype, so restoring a
    float64 checkpoint into a float32 run (or vice versa) lands at the
    optimiser's working precision instead of silently changing it.
    """
    if len(arrays) != len(target):
        raise ValueError(f"{name} count mismatch: "
                         f"{len(arrays)} vs {len(target)}")
    loaded = []
    for current, value in zip(target, arrays):
        value = np.asarray(value, dtype=current.dtype)
        if value.shape != current.shape:
            raise ValueError(f"{name} shape mismatch: "
                             f"{value.shape} vs {current.shape}")
        loaded.append(value.copy())
    target[:] = loaded


class Optimizer:
    """Base optimiser holding a list of parameters."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients of every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """Copy of the optimiser state (subclasses add their buffers)."""
        return {"lr": self.lr}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        self.lr = float(state["lr"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        # Velocity accumulates in float64 whatever the parameter precision.
        self._velocity = [np.zeros(p.data.shape, dtype=np.float64)
                          for p in self.parameters]

    def step(self) -> None:
        """Apply one SGD update using the accumulated gradients."""
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            # The update is computed in float64 (gradients and moments are
            # accumulation-precision) and cast back to the parameter dtype.
            dtype = param.data.dtype
            param.data = (param.data - self.lr * update).astype(dtype,
                                                                copy=False)

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["velocity"] = _copy_arrays(self._velocity)
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        _load_arrays(self._velocity, state["velocity"], "velocity")


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.001,
                 betas: Sequence[float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        # Moments accumulate in float64 whatever the parameter precision.
        self._m = [np.zeros(p.data.shape, dtype=np.float64)
                   for p in self.parameters]
        self._v = [np.zeros(p.data.shape, dtype=np.float64)
                   for p in self.parameters]

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            dtype = param.data.dtype
            param.data = (param.data
                          - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
                          ).astype(dtype, copy=False)

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["step_count"] = self._step_count
        state["m"] = _copy_arrays(self._m)
        state["v"] = _copy_arrays(self._v)
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._step_count = int(state["step_count"])
        _load_arrays(self._m, state["m"], "m")
        _load_arrays(self._v, state["v"], "v")
