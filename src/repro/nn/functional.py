"""Functional building blocks: convolution and pooling with autograd support.

The convolution is implemented with the classic ``im2col`` trick so that both
the forward pass and the gradients reduce to matrix multiplications, which
keeps the tiny CNNs in this repository fast enough to train inside tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.tensor import Tensor


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError("expected a pair")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _im2col(images: np.ndarray, kernel: Tuple[int, int],
            stride: Tuple[int, int], padding: Tuple[int, int]):
    """Unfold ``images`` (N, C, H, W) into columns for convolution."""
    n, c, h, w = images.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("kernel larger than padded input")
    padded = np.pad(images, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=images.dtype)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            cols[:, :, i, j, :, :] = padded[:, :, i:i_end:sh, j:j_end:sw]
    return cols.reshape(n, c * kh * kw, out_h * out_w), (out_h, out_w)


def _col2im(cols: np.ndarray, image_shape, kernel, stride, padding) -> np.ndarray:
    """Fold columns back into image space (adjoint of :func:`_im2col`)."""
    n, c, h, w = image_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, :, i:i_end:sh, j:j_end:sw] += cols[:, :, i, j, :, :]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph:ph + h, pw:pw + w]


def conv2d(inputs: Tensor, weight: Tensor, bias: Tensor = None,
           stride=1, padding=0) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    inputs:
        Tensor of shape ``(N, C_in, H, W)``.
    weight:
        Tensor of shape ``(C_out, C_in, kH, kW)``.
    bias:
        Optional tensor of shape ``(C_out,)``.
    """
    if inputs.ndim != 4:
        raise ValueError("conv2d expects inputs of shape (N, C, H, W)")
    if weight.ndim != 4:
        raise ValueError("conv2d expects weight of shape (C_out, C_in, kH, kW)")
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, h, w = inputs.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} != weight channels {c_in_w}")

    cols, (out_h, out_w) = _im2col(inputs.data, (kh, kw), stride, padding)
    w_mat = weight.data.reshape(c_out, -1)
    # The autodiff NN stack is a deliberately host-NumPy training harness
    # (Tensor wraps np.ndarray); it sits outside the xm simulation waist.
    out = np.einsum("ok,nkl->nol", w_mat, cols)  # qugeo-lint: disable=QG003 -- host-numpy autodiff stack by design
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1)
    out = out.reshape(n, c_out, out_h, out_w)

    parents = (inputs, weight) if bias is None else (inputs, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, c_out, out_h * out_w)
        if weight.requires_grad:
            grad_w = np.einsum("nol,nkl->ok", grad_mat, cols).reshape(weight.shape)  # qugeo-lint: disable=QG003 -- host-numpy autodiff stack by design
            weight._accumulate(grad_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=(0, 2)))
        if inputs.requires_grad:
            grad_cols = np.einsum("ok,nol->nkl", w_mat, grad_mat)  # qugeo-lint: disable=QG003 -- host-numpy autodiff stack by design
            grad_input = _col2im(grad_cols, inputs.shape, (kh, kw), stride, padding)
            inputs._accumulate(grad_input)

    return inputs._make(out, parents, backward)


def avg_pool2d(inputs: Tensor, kernel_size, stride=None) -> Tensor:
    """Average pooling over non-overlapping (or strided) windows."""
    kernel = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel
    n, c, h, w = inputs.shape
    cols, (out_h, out_w) = _im2col(inputs.data, kernel, stride, (0, 0))
    cols = cols.reshape(n, c, kernel[0] * kernel[1], out_h * out_w)
    out = cols.mean(axis=2).reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        if not inputs.requires_grad:
            return
        grad_cols = np.repeat(
            grad.reshape(n, c, 1, out_h * out_w) / (kernel[0] * kernel[1]),
            kernel[0] * kernel[1], axis=2)
        grad_input = _col2im(grad_cols.reshape(n, c * kernel[0] * kernel[1], -1),
                             inputs.shape, kernel, stride, (0, 0))
        inputs._accumulate(grad_input)

    return inputs._make(out, (inputs,), backward)


def max_pool2d(inputs: Tensor, kernel_size, stride=None) -> Tensor:
    """Max pooling over windows; gradients route to the argmax element."""
    kernel = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel
    n, c, h, w = inputs.shape
    cols, (out_h, out_w) = _im2col(inputs.data, kernel, stride, (0, 0))
    cols = cols.reshape(n, c, kernel[0] * kernel[1], out_h * out_w)
    argmax = cols.argmax(axis=2)
    out = cols.max(axis=2).reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        if not inputs.requires_grad:
            return
        grad_cols = np.zeros_like(cols)
        flat_grad = grad.reshape(n, c, out_h * out_w)
        n_idx, c_idx, l_idx = np.meshgrid(np.arange(n), np.arange(c),
                                          np.arange(out_h * out_w), indexing="ij")
        grad_cols[n_idx, c_idx, argmax, l_idx] = flat_grad
        grad_input = _col2im(grad_cols.reshape(n, c * kernel[0] * kernel[1], -1),
                             inputs.shape, kernel, stride, (0, 0))
        inputs._accumulate(grad_input)

    return inputs._make(out, (inputs,), backward)


def linear(inputs: Tensor, weight: Tensor, bias: Tensor = None) -> Tensor:
    """Affine map ``inputs @ weight.T + bias`` for 2-D inputs ``(N, features)``."""
    out = inputs @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out
