"""Weight initialisation schemes for the NN substrate."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


def kaiming_uniform(shape, fan_in: int, rng: RngLike = None) -> np.ndarray:
    """He/Kaiming uniform initialisation (matches PyTorch's Conv/Linear default)."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    rng = ensure_rng(rng)
    bound = np.sqrt(1.0 / fan_in) * np.sqrt(3.0)
    return rng.uniform(-bound, bound, size=shape)


def uniform_bias(shape, fan_in: int, rng: RngLike = None) -> np.ndarray:
    """Uniform bias initialisation in ``[-1/sqrt(fan_in), 1/sqrt(fan_in)]``."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    rng = ensure_rng(rng)
    bound = 1.0 / np.sqrt(fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape, fan_in: int, fan_out: int, rng: RngLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    rng = ensure_rng(rng)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)
