"""Neural-network layers built on the autograd :class:`~repro.nn.tensor.Tensor`.

Only the layers the QuGeo classical models need are provided (LeNet-style
CNNs): convolution, linear, activations, flatten, pooling and a sequential
container.  Every layer exposes ``parameters()`` and ``named_parameters()``
for the optimisers and for parameter counting (Table 2 of the paper matches
parameter budgets across quantum and classical models).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor
from repro.utils.rng import RngLike, ensure_rng


class Module:
    """Base class for layers and models.

    Subclasses register :class:`Tensor` parameters as attributes; the base
    class discovers them (and the parameters of sub-modules) recursively.
    """

    def forward(self, inputs: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, inputs: Tensor) -> Tensor:
        if not isinstance(inputs, Tensor):
            inputs = Tensor(inputs)
        return self.forward(inputs)

    # ------------------------------------------------------------------ #
    # parameter discovery
    # ------------------------------------------------------------------ #
    def named_tensors(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield every ``(name, Tensor)`` of this module and its children.

        Unlike :meth:`named_parameters` this includes tensors with
        ``requires_grad=False`` (frozen buffers), so serialisation round
        trips the full module state, not just what the optimiser updates.
        """
        for name, value in vars(self).items():
            full_name = f"{prefix}{name}"
            if isinstance(value, Tensor):
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_tensors(prefix=f"{full_name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_tensors(
                            prefix=f"{full_name}.{index}.")
                    elif isinstance(item, Tensor):
                        yield f"{full_name}.{index}", item

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield ``(name, parameter)`` pairs of this module and its children."""
        for name, tensor in self.named_tensors(prefix=prefix):
            if tensor.requires_grad:
                yield name, tensor

    def parameters(self) -> List[Tensor]:
        """Return the list of trainable parameters."""
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return int(sum(param.size for param in self.parameters()))

    def zero_grad(self) -> None:
        """Clear the gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every tensor array keyed by name.

        Frozen (``requires_grad=False``) tensors are included so a loaded
        module reproduces the saved one exactly.
        """
        return {name: tensor.data.copy() for name, tensor in self.named_tensors()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load tensor arrays produced by :meth:`state_dict`."""
        own = dict(self.named_tensors())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            # Cast to the live tensor's dtype so loading a float64 checkpoint
            # into a float32 module keeps the module's working precision.
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{value.shape} vs {param.shape}")
            param.data = value.copy()


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: RngLike = None) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        rng = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init.kaiming_uniform((out_features, in_features),
                                                  fan_in=in_features, rng=rng),
                             requires_grad=True)
        self.bias = (Tensor(init.uniform_bias((out_features,), in_features, rng=rng),
                            requires_grad=True) if bias else None)

    def forward(self, inputs: Tensor) -> Tensor:
        if inputs.ndim == 1:
            inputs = inputs.reshape(1, -1)
        return F.linear(inputs, self.weight, self.bias)


class Conv2d(Module):
    """2-D convolution layer over ``(N, C, H, W)`` inputs."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bias: bool = True,
                 rng: RngLike = None) -> None:
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        rng = ensure_rng(rng)
        kh, kw = F._pair(kernel_size)
        fan_in = in_channels * kh * kw
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.weight = Tensor(
            init.kaiming_uniform((out_channels, in_channels, kh, kw),
                                 fan_in=fan_in, rng=rng),
            requires_grad=True)
        self.bias = (Tensor(init.uniform_bias((out_channels,), fan_in, rng=rng),
                            requires_grad=True) if bias else None)

    def forward(self, inputs: Tensor) -> Tensor:
        return F.conv2d(inputs, self.weight, self.bias,
                        stride=self.stride, padding=self.padding)


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.tanh()


class Flatten(Module):
    """Flatten all dimensions except the batch dimension."""

    def forward(self, inputs: Tensor) -> Tensor:
        batch = inputs.shape[0]
        return inputs.reshape(batch, -1)


class AvgPool2d(Module):
    """Average pooling layer."""

    def __init__(self, kernel_size, stride=None) -> None:
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, inputs: Tensor) -> Tensor:
        return F.avg_pool2d(inputs, self.kernel_size, self.stride)


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size, stride=None) -> None:
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, inputs: Tensor) -> Tensor:
        return F.max_pool2d(inputs, self.kernel_size, self.stride)


class Sequential(Module):
    """Container applying modules in order."""

    def __init__(self, *modules: Module) -> None:
        self.layers = list(modules)

    def forward(self, inputs: Tensor) -> Tensor:
        out = inputs
        for layer in self.layers:
            out = layer(out)
        return out

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
