"""Loss functions for the classical models."""

from __future__ import annotations

from repro.nn.layers import Module
from repro.nn.tensor import Tensor, as_tensor


class MSELoss(Module):
    """Mean squared error, the loss used for both decoders in the paper."""

    def forward(self, prediction: Tensor, target=None) -> Tensor:  # type: ignore[override]
        raise NotImplementedError("call the loss with (prediction, target)")

    def __call__(self, prediction: Tensor, target) -> Tensor:  # type: ignore[override]
        prediction = as_tensor(prediction)
        target = as_tensor(target)
        diff = prediction - target
        return (diff * diff).mean()


class L1Loss(Module):
    """Mean absolute error."""

    def forward(self, prediction: Tensor, target=None) -> Tensor:  # type: ignore[override]
        raise NotImplementedError("call the loss with (prediction, target)")

    def __call__(self, prediction: Tensor, target) -> Tensor:  # type: ignore[override]
        prediction = as_tensor(prediction)
        target = as_tensor(target)
        return (prediction - target).abs().mean()
