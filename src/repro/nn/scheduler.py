"""Learning-rate schedules.

The paper trains every model with Adam at an initial learning rate of 0.1
"followed by a cosine annealing schedule"; :class:`CosineAnnealingLR`
reproduces that schedule.  :class:`StepLR` is provided for ablations.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.nn.optim import Optimizer


class LRScheduler:
    """Base class: adjusts ``optimizer.lr`` each time :meth:`step` is called."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and update the optimiser's learning rate."""
        self.last_epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr

    def state_dict(self) -> Dict[str, float]:
        """The schedule position (the optimiser's LR is saved with it)."""
        return {"base_lr": self.base_lr, "last_epoch": self.last_epoch}

    def load_state_dict(self, state: Dict[str, float]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        self.base_lr = float(state["base_lr"])
        self.last_epoch = int(state["last_epoch"])


class CosineAnnealingLR(LRScheduler):
    """Cosine annealing from the base LR down to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * progress))


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self) -> float:
        return self.base_lr * self.gamma**(self.last_epoch // self.step_size)
