"""Parameterised gates with analytic parameter derivatives.

Each gate is described by a :class:`ParametricGate`: a function producing the
unitary matrix from its parameter values and a function producing the list of
derivative matrices (one per parameter).  The reverse-mode differentiation in
:mod:`repro.quantum.autodiff` consumes these derivative matrices directly, so
no finite differences or parameter-shift evaluations are needed during
training.

The ansatz of the paper uses the TorchQuantum ``U3 + CU3`` block: a general
single-qubit rotation ``U3(theta, phi, lambda)`` on every qubit followed by a
ring of controlled ``CU3`` gates, each carrying three parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np


# --------------------------------------------------------------------------- #
# single-qubit rotations
# --------------------------------------------------------------------------- #
def rx_matrix(params: Sequence[float]) -> np.ndarray:
    """Rotation about X: ``exp(-i theta X / 2)``."""
    (theta,) = params
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)


def rx_derivatives(params: Sequence[float]) -> List[np.ndarray]:
    (theta,) = params
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return [0.5 * np.array([[-s, -1j * c], [-1j * c, -s]], dtype=np.complex128)]


def ry_matrix(params: Sequence[float]) -> np.ndarray:
    """Rotation about Y: ``exp(-i theta Y / 2)``."""
    (theta,) = params
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=np.complex128)


def ry_derivatives(params: Sequence[float]) -> List[np.ndarray]:
    (theta,) = params
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return [0.5 * np.array([[-s, -c], [c, -s]], dtype=np.complex128)]


def rz_matrix(params: Sequence[float]) -> np.ndarray:
    """Rotation about Z: ``exp(-i theta Z / 2)``."""
    (theta,) = params
    return np.array([[np.exp(-0.5j * theta), 0],
                     [0, np.exp(0.5j * theta)]], dtype=np.complex128)


def rz_derivatives(params: Sequence[float]) -> List[np.ndarray]:
    (theta,) = params
    return [np.array([[-0.5j * np.exp(-0.5j * theta), 0],
                      [0, 0.5j * np.exp(0.5j * theta)]], dtype=np.complex128)]


# --------------------------------------------------------------------------- #
# U3 and controlled-U3
# --------------------------------------------------------------------------- #
def u3_matrix(params: Sequence[float]) -> np.ndarray:
    """General single-qubit unitary ``U3(theta, phi, lam)`` (OpenQASM convention)."""
    theta, phi, lam = params
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([
        [c, -np.exp(1j * lam) * s],
        [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
    ], dtype=np.complex128)


def u3_derivatives(params: Sequence[float]) -> List[np.ndarray]:
    """Partial derivatives of :func:`u3_matrix` w.r.t. theta, phi, lam."""
    theta, phi, lam = params
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    d_theta = 0.5 * np.array([
        [-s, -np.exp(1j * lam) * c],
        [np.exp(1j * phi) * c, -np.exp(1j * (phi + lam)) * s],
    ], dtype=np.complex128)
    d_phi = np.array([
        [0, 0],
        [1j * np.exp(1j * phi) * s, 1j * np.exp(1j * (phi + lam)) * c],
    ], dtype=np.complex128)
    d_lam = np.array([
        [0, -1j * np.exp(1j * lam) * s],
        [0, 1j * np.exp(1j * (phi + lam)) * c],
    ], dtype=np.complex128)
    return [d_theta, d_phi, d_lam]


def cu3_matrix(params: Sequence[float]) -> np.ndarray:
    """Controlled-U3 on (control, target): identity block plus ``U3`` block."""
    u = u3_matrix(params)
    out = np.eye(4, dtype=np.complex128)
    out[2:, 2:] = u
    return out


def cu3_derivatives(params: Sequence[float]) -> List[np.ndarray]:
    derivatives = []
    for du in u3_derivatives(params):
        d = np.zeros((4, 4), dtype=np.complex128)
        d[2:, 2:] = du
        derivatives.append(d)
    return derivatives


def crx_matrix(params: Sequence[float]) -> np.ndarray:
    """Controlled-RX on (control, target)."""
    out = np.eye(4, dtype=np.complex128)
    out[2:, 2:] = rx_matrix(params)
    return out


def crx_derivatives(params: Sequence[float]) -> List[np.ndarray]:
    d = np.zeros((4, 4), dtype=np.complex128)
    d[2:, 2:] = rx_derivatives(params)[0]
    return [d]


# --------------------------------------------------------------------------- #
# vectorised constructors: per-parameter value arrays -> (batch, 2^k, 2^k)
#
# These are the batched twins of the scalar matrix functions above (kept in
# this module so each gate's unitary has a single source of truth); the
# einsum backend uses them to build a whole stack of gate matrices without a
# Python loop when executing batched parameter sweeps.
# --------------------------------------------------------------------------- #
def rx_stack(theta: np.ndarray) -> np.ndarray:
    """Batched :func:`rx_matrix` for an array of angles."""
    theta = np.asarray(theta, dtype=np.float64)
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    m = np.empty(theta.shape + (2, 2), dtype=np.complex128)
    m[..., 0, 0] = c
    m[..., 0, 1] = -1j * s
    m[..., 1, 0] = -1j * s
    m[..., 1, 1] = c
    return m


def ry_stack(theta: np.ndarray) -> np.ndarray:
    """Batched :func:`ry_matrix` for an array of angles."""
    theta = np.asarray(theta, dtype=np.float64)
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    m = np.empty(theta.shape + (2, 2), dtype=np.complex128)
    m[..., 0, 0] = c
    m[..., 0, 1] = -s
    m[..., 1, 0] = s
    m[..., 1, 1] = c
    return m


def rz_stack(theta: np.ndarray) -> np.ndarray:
    """Batched :func:`rz_matrix` for an array of angles."""
    theta = np.asarray(theta, dtype=np.float64)
    m = np.zeros(theta.shape + (2, 2), dtype=np.complex128)
    m[..., 0, 0] = np.exp(-0.5j * theta)
    m[..., 1, 1] = np.exp(0.5j * theta)
    return m


def u3_stack(theta: np.ndarray, phi: np.ndarray, lam: np.ndarray) -> np.ndarray:
    """Batched :func:`u3_matrix` for arrays of (theta, phi, lam)."""
    theta = np.asarray(theta, dtype=np.float64)
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    m = np.empty(theta.shape + (2, 2), dtype=np.complex128)
    m[..., 0, 0] = c
    m[..., 0, 1] = -np.exp(1j * lam) * s
    m[..., 1, 0] = np.exp(1j * phi) * s
    m[..., 1, 1] = np.exp(1j * (phi + lam)) * c
    return m


def controlled_stack(block: np.ndarray) -> np.ndarray:
    """Embed a ``(batch, 2, 2)`` block as the 11-block of a controlled gate."""
    out = np.zeros(block.shape[:-2] + (4, 4), dtype=np.complex128)
    out[..., 0, 0] = 1.0
    out[..., 1, 1] = 1.0
    out[..., 2:, 2:] = block
    return out


def cu3_stack(theta: np.ndarray, phi: np.ndarray, lam: np.ndarray) -> np.ndarray:
    """Batched :func:`cu3_matrix`."""
    return controlled_stack(u3_stack(theta, phi, lam))


def crx_stack(theta: np.ndarray) -> np.ndarray:
    """Batched :func:`crx_matrix`."""
    return controlled_stack(rx_stack(theta))


@dataclass(frozen=True)
class ParametricGate:
    """Description of a parameterised gate family.

    Attributes
    ----------
    name:
        Gate identifier used in circuit programs.
    n_qubits:
        Number of qubits the gate acts on.
    n_params:
        Number of real parameters.
    matrix_fn:
        ``params -> unitary matrix``.
    derivative_fn:
        ``params -> [d(unitary)/d(param_i)]``.
    stack_fn:
        Optional vectorised constructor ``(*param_columns) -> (batch, 2^k,
        2^k)`` building one matrix per row of a parameter batch; ``None``
        falls back to a per-row :attr:`matrix_fn` loop.
    """

    name: str
    n_qubits: int
    n_params: int
    matrix_fn: Callable[[Sequence[float]], np.ndarray]
    derivative_fn: Callable[[Sequence[float]], List[np.ndarray]]
    stack_fn: Optional[Callable[..., np.ndarray]] = None

    def matrix(self, params: Sequence[float]) -> np.ndarray:
        if len(params) != self.n_params:
            raise ValueError(f"{self.name} expects {self.n_params} parameters, "
                             f"got {len(params)}")
        return self.matrix_fn(params)

    def derivatives(self, params: Sequence[float]) -> List[np.ndarray]:
        if len(params) != self.n_params:
            raise ValueError(f"{self.name} expects {self.n_params} parameters, "
                             f"got {len(params)}")
        return self.derivative_fn(params)

    def matrix_stack(self, columns: Sequence[np.ndarray]) -> np.ndarray:
        """One gate matrix per batch row, given per-parameter value arrays."""
        if len(columns) != self.n_params:
            raise ValueError(f"{self.name} expects {self.n_params} parameter "
                             f"columns, got {len(columns)}")
        if self.stack_fn is not None:
            return self.stack_fn(*columns)
        batch = len(columns[0]) if columns else 0
        return np.stack([self.matrix_fn([float(column[row])
                                         for column in columns])
                         for row in range(batch)])


PARAMETRIC_GATES: Dict[str, ParametricGate] = {
    "RX": ParametricGate("RX", 1, 1, rx_matrix, rx_derivatives, rx_stack),
    "RY": ParametricGate("RY", 1, 1, ry_matrix, ry_derivatives, ry_stack),
    "RZ": ParametricGate("RZ", 1, 1, rz_matrix, rz_derivatives, rz_stack),
    "U3": ParametricGate("U3", 1, 3, u3_matrix, u3_derivatives, u3_stack),
    "CU3": ParametricGate("CU3", 2, 3, cu3_matrix, cu3_derivatives, cu3_stack),
    "CRX": ParametricGate("CRX", 2, 1, crx_matrix, crx_derivatives, crx_stack),
}
