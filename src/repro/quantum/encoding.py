"""Data encoding onto qubit amplitudes.

Three encoders are provided, mirroring the paper:

* :func:`amplitude_encode` — classic amplitude encoding of a real vector of
  length ``2**k`` onto ``k`` qubits (the vector is L2-normalised, which is the
  "data normalisation within quantum state constraints" discussed around
  Figure 6 of the paper).
* :class:`STEncoder` — the spatial-temporal encoder of QuGeoVQC: the input is
  split into groups (one per seismic source, Section 3.2.1), each group is
  amplitude-encoded on its own block of qubits, and the register state is the
  tensor product of the group states.
* :class:`QuBatchEncoder` — QuBatch (Section 3.3): ``2**b`` samples are packed
  into a single register by prepending ``b`` batch qubits per group; the whole
  batched vector is normalised jointly, trading data precision for SIMD-style
  parallel processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def normalize_for_encoding(data: np.ndarray) -> Tuple[np.ndarray, float]:
    """L2-normalise ``data`` and return ``(normalised, norm)``.

    A zero vector is mapped to the basis state ``|0...0>`` (norm reported as
    0) so downstream code never divides by zero.
    """
    data = np.asarray(data, dtype=np.float64).reshape(-1)
    norm = float(np.linalg.norm(data))
    if norm == 0:
        encoded = np.zeros_like(data)
        encoded[0] = 1.0
        return encoded, 0.0
    return data / norm, norm


def amplitude_encode(data: np.ndarray, n_qubits: int = None) -> np.ndarray:
    """Amplitude-encode a real vector onto ``n_qubits`` qubits.

    The vector is zero-padded to the next power of two if needed, then
    L2-normalised.  Returns the complex statevector.
    """
    data = np.asarray(data, dtype=np.float64).reshape(-1)
    if n_qubits is None:
        length = max(2, int(2**np.ceil(np.log2(data.size))))
        n_qubits = int(np.log2(length))
    length = 2**n_qubits
    if data.size > length:
        raise ValueError(f"data of size {data.size} does not fit {n_qubits} qubits")
    padded = np.zeros(length, dtype=np.float64)
    padded[:data.size] = data
    encoded, _ = normalize_for_encoding(padded)
    return encoded.astype(np.complex128)


@dataclass
class STEncoder:
    """Spatial-temporal grouped amplitude encoder.

    Parameters
    ----------
    n_groups:
        Number of encoder groups.  The paper groups seismic data by source so
        each group holds the traces of one physical shot.
    qubits_per_group:
        Number of qubits per group; each group encodes ``2**qubits_per_group``
        values.
    """

    n_groups: int = 1
    qubits_per_group: int = 8

    def __post_init__(self) -> None:
        if self.n_groups <= 0:
            raise ValueError("n_groups must be positive")
        if self.qubits_per_group <= 0:
            raise ValueError("qubits_per_group must be positive")

    @property
    def n_qubits(self) -> int:
        """Total number of data qubits."""
        return self.n_groups * self.qubits_per_group

    @property
    def values_per_group(self) -> int:
        return 2**self.qubits_per_group

    @property
    def capacity(self) -> int:
        """Total number of classical values the encoder accepts."""
        return self.n_groups * self.values_per_group

    def group_qubits(self, group: int) -> Tuple[int, ...]:
        """Qubit indices belonging to ``group`` (0-based)."""
        if not 0 <= group < self.n_groups:
            raise ValueError(f"group {group} out of range")
        start = group * self.qubits_per_group
        return tuple(range(start, start + self.qubits_per_group))

    def split_groups(self, data: np.ndarray) -> List[np.ndarray]:
        """Split a flat data vector into per-group chunks (zero-padded)."""
        data = np.asarray(data, dtype=np.float64).reshape(-1)
        if data.size > self.capacity:
            raise ValueError(
                f"data of size {data.size} exceeds encoder capacity {self.capacity}")
        padded = np.zeros(self.capacity, dtype=np.float64)
        padded[:data.size] = data
        return [padded[g * self.values_per_group:(g + 1) * self.values_per_group]
                for g in range(self.n_groups)]

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``data`` into the tensor-product state of all groups."""
        groups = self.split_groups(data)
        state = None
        for chunk in groups:
            normalised, _ = normalize_for_encoding(chunk)
            group_state = normalised.astype(np.complex128)
            state = group_state if state is None else np.kron(state, group_state)
        return state

    def normalized_view(self, data: np.ndarray) -> np.ndarray:
        """Return the classically-interpretable data after quantum normalisation.

        This is the quantity visualised in Figure 6(b) of the paper: the data
        each group actually presents to the circuit, i.e. per-group
        L2-normalised values concatenated back into the original layout.
        """
        groups = self.split_groups(data)
        views = [normalize_for_encoding(chunk)[0] for chunk in groups]
        return np.concatenate(views)


@dataclass
class QuBatchEncoder:
    """QuBatch batched amplitude encoder.

    Packs ``batch_size = 2**n_batch_qubits`` samples into one register by
    prepending ``n_batch_qubits`` qubits in front of each data group.  For the
    single-group case used in Table 1 of the paper, the register amplitudes
    are simply the concatenation of all samples, normalised jointly.

    Parameters
    ----------
    encoder:
        The underlying :class:`STEncoder` describing the per-sample layout.
    n_batch_qubits:
        Number of extra qubits; the batch size is ``2**n_batch_qubits``.
    """

    encoder: STEncoder
    n_batch_qubits: int = 1

    def __post_init__(self) -> None:
        if self.n_batch_qubits < 0:
            raise ValueError("n_batch_qubits must be non-negative")

    @property
    def batch_size(self) -> int:
        return 2**self.n_batch_qubits

    @property
    def n_qubits(self) -> int:
        """Total register size: batch qubits for each group plus data qubits."""
        return self.encoder.n_qubits + self.n_batch_qubits * self.encoder.n_groups

    def data_qubits_of_group(self, group: int) -> Tuple[int, ...]:
        """Qubit indices holding the data of ``group`` in the batched register."""
        per_group = self.n_batch_qubits + self.encoder.qubits_per_group
        start = group * per_group + self.n_batch_qubits
        return tuple(range(start, start + self.encoder.qubits_per_group))

    def batch_qubits_of_group(self, group: int) -> Tuple[int, ...]:
        """Batch-index qubit indices of ``group`` in the batched register."""
        per_group = self.n_batch_qubits + self.encoder.qubits_per_group
        start = group * per_group
        return tuple(range(start, start + self.n_batch_qubits))

    def encode(self, batch: Sequence[np.ndarray]) -> np.ndarray:
        """Encode up to ``batch_size`` samples into one register state.

        Missing samples (when ``len(batch) < batch_size``) are zero blocks.
        """
        batch = [np.asarray(sample, dtype=np.float64).reshape(-1) for sample in batch]
        if len(batch) > self.batch_size:
            raise ValueError(
                f"got {len(batch)} samples but batch capacity is {self.batch_size}")
        state = None
        for group in range(self.encoder.n_groups):
            block_size = self.encoder.values_per_group
            stacked = np.zeros(self.batch_size * block_size, dtype=np.float64)
            for b, sample in enumerate(batch):
                chunk = self.encoder.split_groups(sample)[group]
                stacked[b * block_size:(b + 1) * block_size] = chunk
            normalised, _ = normalize_for_encoding(stacked)
            group_state = normalised.astype(np.complex128)
            state = group_state if state is None else np.kron(state, group_state)
        return state
