"""NumPy statevector quantum-computing substrate.

The paper implements QuGeoVQC on TorchQuantum; this package provides the
equivalent simulation stack from scratch:

* :mod:`repro.quantum.gates` — fixed gate matrices and statevector application,
* :mod:`repro.quantum.parametric` — parameterised gates (RX/RY/RZ/U3/CU3)
  with analytic parameter derivatives,
* :mod:`repro.quantum.statevector` — the :class:`Statevector` container,
* :mod:`repro.quantum.circuit` — :class:`ParameterizedCircuit` (an ordered
  gate program over a shared parameter vector),
* :mod:`repro.quantum.measurement` — Z expectations and marginal
  probabilities (the two decoder read-outs used by QuGeo),
* :mod:`repro.quantum.encoding` — amplitude / spatial-temporal ("ST")
  encoding and the QuBatch batched encoding,
* :mod:`repro.quantum.autodiff` — reverse-mode (adjoint) differentiation of
  scalar losses through a circuit, plus parameter-shift as a cross-check,
* :mod:`repro.quantum.ansatz` — the U3+CU3 block ansatz and grouped ST-VQC
  construction used by QuGeoVQC.
"""

from repro.quantum.statevector import Statevector
from repro.quantum.circuit import ParameterizedCircuit, GateOp
from repro.quantum.gates import GATES, apply_matrix
from repro.quantum.parametric import PARAMETRIC_GATES, u3_matrix, cu3_matrix
from repro.quantum.measurement import (
    z_expectations,
    z_expectations_batched,
    marginal_probabilities,
    marginal_probabilities_batched,
    all_probabilities,
)
from repro.quantum.encoding import (
    amplitude_encode,
    STEncoder,
    QuBatchEncoder,
)
from repro.quantum.autodiff import (
    circuit_gradients,
    circuit_gradients_batched,
    parameter_shift_gradients,
)
from repro.quantum.ansatz import u3_cu3_ansatz, grouped_st_ansatz

__all__ = [
    "Statevector",
    "ParameterizedCircuit",
    "GateOp",
    "GATES",
    "apply_matrix",
    "PARAMETRIC_GATES",
    "u3_matrix",
    "cu3_matrix",
    "z_expectations",
    "z_expectations_batched",
    "marginal_probabilities",
    "marginal_probabilities_batched",
    "all_probabilities",
    "amplitude_encode",
    "STEncoder",
    "QuBatchEncoder",
    "circuit_gradients",
    "circuit_gradients_batched",
    "parameter_shift_gradients",
    "u3_cu3_ansatz",
    "grouped_st_ansatz",
]
