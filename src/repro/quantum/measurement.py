"""Measurement read-outs and their gradients with respect to the statevector.

QuGeoVQC uses two decoders:

* **Pixel-wise (Q-M-PX)** — the magnitudes of a block of amplitudes, obtained
  here as the marginal probabilities of a subset of qubits
  (:func:`marginal_probabilities`),
* **Layer-wise (Q-M-LY)** — independent Pauli-Z expectations of each qubit
  (:func:`z_expectations`).

Each read-out also provides the backward rule ``dL/d(psi*)`` needed by the
reverse-mode differentiation in :mod:`repro.quantum.autodiff`: for a real
loss ``L`` of the complex state ``psi``, the gradient with respect to a
circuit parameter is ``2 Re(lambda^dagger dU/dtheta psi)`` where ``lambda =
dL/d(psi*)``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def _bit_signs(n_qubits: int, qubit: int) -> np.ndarray:
    """Return +-1 for each basis index depending on the value of ``qubit``.

    +1 when the qubit is 0, -1 when it is 1 (qubit 0 is the most significant
    bit of the basis index).
    """
    indices = np.arange(2**n_qubits)
    bit = (indices >> (n_qubits - 1 - qubit)) & 1
    return 1.0 - 2.0 * bit


def all_probabilities(state: np.ndarray) -> np.ndarray:
    """Probabilities of every computational basis state."""
    state = np.asarray(state)
    return np.abs(state) ** 2


def z_expectations(state: np.ndarray, qubits: Sequence[int],
                   n_qubits: int) -> np.ndarray:
    """Pauli-Z expectation value of each qubit in ``qubits``."""
    state = np.asarray(state, dtype=np.complex128).reshape(-1)
    if state.size != 2**n_qubits:
        raise ValueError("state length does not match n_qubits")
    probs = np.abs(state) ** 2
    values = []
    for qubit in qubits:
        if not 0 <= qubit < n_qubits:
            raise ValueError(f"qubit {qubit} outside register")
        values.append(float(np.dot(_bit_signs(n_qubits, qubit), probs)))
    return np.array(values)


def z_expectations_backward(state: np.ndarray, qubits: Sequence[int],
                            n_qubits: int, grad_output: np.ndarray) -> np.ndarray:
    """Return ``dL/d(psi*)`` for a loss with gradient ``grad_output`` w.r.t.
    the vector of Z expectations."""
    state = np.asarray(state, dtype=np.complex128).reshape(-1)
    grad_output = np.asarray(grad_output, dtype=np.float64).reshape(-1)
    if grad_output.size != len(qubits):
        raise ValueError("grad_output length must match number of qubits")
    lam = np.zeros_like(state)
    for qubit, g in zip(qubits, grad_output):
        lam += g * _bit_signs(n_qubits, qubit) * state
    return lam


def marginal_probabilities(state: np.ndarray, qubits: Sequence[int],
                           n_qubits: int) -> np.ndarray:
    """Joint outcome probabilities of measuring ``qubits`` (others traced out).

    The returned vector has length ``2**len(qubits)``; outcome index treats
    ``qubits[0]`` as its most significant bit.
    """
    state = np.asarray(state, dtype=np.complex128).reshape(-1)
    if state.size != 2**n_qubits:
        raise ValueError("state length does not match n_qubits")
    qubits = tuple(int(q) for q in qubits)
    if len(set(qubits)) != len(qubits):
        raise ValueError("duplicate qubits")
    for q in qubits:
        if not 0 <= q < n_qubits:
            raise ValueError(f"qubit {q} outside register")
    probs = (np.abs(state) ** 2).reshape((2,) * n_qubits)
    others = tuple(q for q in range(n_qubits) if q not in qubits)
    marginal = probs.sum(axis=others) if others else probs
    # Ensure axis order matches the requested qubit order.
    remaining_order = [q for q in range(n_qubits) if q in qubits]
    permutation = [remaining_order.index(q) for q in qubits]
    marginal = np.transpose(marginal, permutation)
    return marginal.reshape(-1)


def marginal_probabilities_backward(state: np.ndarray, qubits: Sequence[int],
                                    n_qubits: int,
                                    grad_output: np.ndarray) -> np.ndarray:
    """Return ``dL/d(psi*)`` for a loss with gradient ``grad_output`` w.r.t.
    the marginal probability vector of ``qubits``."""
    state = np.asarray(state, dtype=np.complex128).reshape(-1)
    qubits = tuple(int(q) for q in qubits)
    grad_output = np.asarray(grad_output, dtype=np.float64).reshape(-1)
    if grad_output.size != 2**len(qubits):
        raise ValueError("grad_output length must be 2**len(qubits)")
    # Each basis state j contributes |psi_j|^2 to exactly one outcome k(j);
    # dL/d(psi*_j) = grad_output[k(j)] * psi_j.
    indices = np.arange(2**n_qubits)
    outcome = np.zeros_like(indices)
    for position, qubit in enumerate(qubits):
        bit = (indices >> (n_qubits - 1 - qubit)) & 1
        outcome |= bit << (len(qubits) - 1 - position)
    return grad_output[outcome] * state


def sample_counts(state: np.ndarray, n_shots: int,
                  rng=None) -> np.ndarray:
    """Sample measurement outcomes of the full register.

    Real near-term devices estimate probabilities and expectation values from
    a finite number of shots; this helper draws ``n_shots`` computational
    basis outcomes from the exact distribution and returns the per-outcome
    counts, so the shot-noise sensitivity of QuGeoVQC's decoders can be
    studied without a hardware backend.
    """
    from repro.utils.rng import ensure_rng

    if n_shots <= 0:
        raise ValueError("n_shots must be positive")
    probs = all_probabilities(np.asarray(state).reshape(-1))
    probs = probs / probs.sum()
    rng = ensure_rng(rng)
    outcomes = rng.choice(probs.size, size=n_shots, p=probs)
    return np.bincount(outcomes, minlength=probs.size)


def sampled_probabilities(state: np.ndarray, n_shots: int,
                          rng=None) -> np.ndarray:
    """Shot-noise estimate of the basis-state probabilities."""
    counts = sample_counts(state, n_shots, rng=rng)
    return counts / float(n_shots)


def sampled_z_expectations(state: np.ndarray, qubits: Sequence[int],
                           n_qubits: int, n_shots: int,
                           rng=None) -> np.ndarray:
    """Shot-noise estimate of the Pauli-Z expectations used by Q-M-LY."""
    state = np.asarray(state, dtype=np.complex128).reshape(-1)
    if state.size != 2**n_qubits:
        raise ValueError("state length does not match n_qubits")
    estimated = sampled_probabilities(state, n_shots, rng=rng)
    values = []
    for qubit in qubits:
        if not 0 <= qubit < n_qubits:
            raise ValueError(f"qubit {qubit} outside register")
        values.append(float(np.dot(_bit_signs(n_qubits, qubit), estimated)))
    return np.array(values)


def conditional_block_probabilities(state: np.ndarray, batch_qubits: int,
                                    n_qubits: int) -> Tuple[np.ndarray, np.ndarray]:
    """Split the probability vector into QuBatch blocks.

    With ``batch_qubits`` most-significant qubits indexing the batch, the
    state's probability vector splits into ``2**batch_qubits`` contiguous
    blocks of ``2**(n_qubits - batch_qubits)`` entries.  Returns the block
    matrix ``(n_batches, block_size)`` and the per-block total probability.
    """
    state = np.asarray(state, dtype=np.complex128).reshape(-1)
    if state.size != 2**n_qubits:
        raise ValueError("state length does not match n_qubits")
    if not 0 <= batch_qubits < n_qubits:
        raise ValueError("batch_qubits must be in [0, n_qubits)")
    n_batches = 2**batch_qubits
    block = state.reshape(n_batches, -1)
    probs = np.abs(block) ** 2
    return probs, probs.sum(axis=1)
