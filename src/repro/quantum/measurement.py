"""Measurement read-outs and their gradients with respect to the statevector.

QuGeoVQC uses two decoders:

* **Pixel-wise (Q-M-PX)** — the magnitudes of a block of amplitudes, obtained
  here as the marginal probabilities of a subset of qubits
  (:func:`marginal_probabilities`),
* **Layer-wise (Q-M-LY)** — independent Pauli-Z expectations of each qubit
  (:func:`z_expectations`).

Each read-out also provides the backward rule ``dL/d(psi*)`` needed by the
reverse-mode differentiation in :mod:`repro.quantum.autodiff`: for a real
loss ``L`` of the complex state ``psi``, the gradient with respect to a
circuit parameter is ``2 Re(lambda^dagger dU/dtheta psi)`` where ``lambda =
dL/d(psi*)``.

Every read-out comes in two forms: the scalar one taking a single state of
length ``2**n`` and a ``*_batched`` twin taking a ``(batch, 2**n)`` stack
and vectorising over the leading axis.  The batched forms feed the stacked
adjoint sweep in :func:`repro.quantum.autodiff.circuit_gradients_batched`.
The index material both need — the ``(len(qubits), 2**n)`` Z-sign matrix and
the basis-index -> outcome-index map of a marginal — depends only on
``(n_qubits, qubits)`` and is memoised.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from repro.xm import ensure_complex


def _bit_signs(n_qubits: int, qubit: int) -> np.ndarray:
    """Return +-1 for each basis index depending on the value of ``qubit``.

    +1 when the qubit is 0, -1 when it is 1 (qubit 0 is the most significant
    bit of the basis index).
    """
    indices = np.arange(2**n_qubits)
    bit = (indices >> (n_qubits - 1 - qubit)) & 1
    return 1.0 - 2.0 * bit


@lru_cache(maxsize=None)
def _sign_matrix(n_qubits: int, qubits: Tuple[int, ...],
                 dtype: np.dtype = np.dtype(np.float64)) -> np.ndarray:
    """Memoised ``(len(qubits), 2**n)`` matrix of per-qubit basis signs.

    Row ``r`` is :func:`_bit_signs` of ``qubits[r]``, so Z expectations of
    every read-out qubit reduce to one matmul with the probability vector
    instead of rebuilding the sign array per qubit per call.  ``dtype`` is
    part of the memoisation key, so a float32 request can never be served a
    float64 matrix (or vice versa) from an earlier call.
    """
    for qubit in qubits:
        if not 0 <= qubit < n_qubits:
            raise ValueError(f"qubit {qubit} outside register")
    signs = np.empty((len(qubits), 2**n_qubits), dtype=dtype)
    for row, qubit in enumerate(qubits):
        signs[row] = _bit_signs(n_qubits, qubit)
    signs.setflags(write=False)
    return signs


@lru_cache(maxsize=None)
def _outcome_indices(n_qubits: int, qubits: Tuple[int, ...]) -> np.ndarray:
    """Memoised map from each basis index to its marginal outcome index.

    Entry ``j`` is the outcome of measuring ``qubits`` on basis state ``j``
    (``qubits[0]`` as the outcome's most significant bit).
    """
    if len(set(qubits)) != len(qubits):
        raise ValueError("duplicate qubits")
    for qubit in qubits:
        if not 0 <= qubit < n_qubits:
            raise ValueError(f"qubit {qubit} outside register")
    indices = np.arange(2**n_qubits)
    outcome = np.zeros_like(indices)
    for position, qubit in enumerate(qubits):
        bit = (indices >> (n_qubits - 1 - qubit)) & 1
        outcome |= bit << (len(qubits) - 1 - position)
    outcome.setflags(write=False)
    return outcome


def _validate_batched(states: np.ndarray, n_qubits: int) -> np.ndarray:
    # Complex stacks keep their precision (a complex64 batch from a float32
    # engine is measured as complex64); real inputs are promoted to
    # complex128 exactly as before.
    states = ensure_complex(states)
    if states.ndim != 2 or states.shape[1] != 2**n_qubits:
        raise ValueError(
            f"states must have shape (batch, {2**n_qubits}), got {states.shape}")
    return states


def all_probabilities(state: np.ndarray) -> np.ndarray:
    """Probabilities of every computational basis state."""
    state = np.asarray(state)
    return np.abs(state) ** 2


def z_expectations(state: np.ndarray, qubits: Sequence[int],
                   n_qubits: int) -> np.ndarray:
    """Pauli-Z expectation value of each qubit in ``qubits``."""
    state = np.asarray(state, dtype=np.complex128).reshape(-1)
    if state.size != 2**n_qubits:
        raise ValueError("state length does not match n_qubits")
    probs = np.abs(state) ** 2
    return _sign_matrix(n_qubits, tuple(int(q) for q in qubits)) @ probs


def z_expectations_batched(states: np.ndarray, qubits: Sequence[int],
                           n_qubits: int) -> np.ndarray:
    """Per-state Z expectations of a ``(batch, 2**n)`` stack.

    Returns an array of shape ``(batch, len(qubits))``.
    """
    states = _validate_batched(states, n_qubits)
    probs = np.abs(states) ** 2
    return probs @ _sign_matrix(n_qubits, tuple(int(q) for q in qubits)).T


def z_expectations_backward(state: np.ndarray, qubits: Sequence[int],
                            n_qubits: int, grad_output: np.ndarray) -> np.ndarray:
    """Return ``dL/d(psi*)`` for a loss with gradient ``grad_output`` w.r.t.
    the vector of Z expectations."""
    state = np.asarray(state, dtype=np.complex128).reshape(-1)
    grad_output = np.asarray(grad_output, dtype=np.float64).reshape(-1)
    if grad_output.size != len(qubits):
        raise ValueError("grad_output length must match number of qubits")
    signs = _sign_matrix(n_qubits, tuple(int(q) for q in qubits))
    return (grad_output @ signs) * state


def z_expectations_backward_batched(states: np.ndarray, qubits: Sequence[int],
                                    n_qubits: int,
                                    grad_outputs: np.ndarray) -> np.ndarray:
    """Batched :func:`z_expectations_backward`.

    ``grad_outputs`` has shape ``(batch, len(qubits))``; the returned co-state
    stack has shape ``(batch, 2**n)``.
    """
    states = _validate_batched(states, n_qubits)
    grad_outputs = np.asarray(grad_outputs, dtype=np.float64)
    if grad_outputs.shape != (states.shape[0], len(qubits)):
        raise ValueError("grad_outputs must have shape (batch, len(qubits))")
    signs = _sign_matrix(n_qubits, tuple(int(q) for q in qubits))
    return (grad_outputs @ signs) * states


def marginal_probabilities(state: np.ndarray, qubits: Sequence[int],
                           n_qubits: int) -> np.ndarray:
    """Joint outcome probabilities of measuring ``qubits`` (others traced out).

    The returned vector has length ``2**len(qubits)``; outcome index treats
    ``qubits[0]`` as its most significant bit.
    """
    state = np.asarray(state, dtype=np.complex128).reshape(-1)
    if state.size != 2**n_qubits:
        raise ValueError("state length does not match n_qubits")
    qubits = tuple(int(q) for q in qubits)
    if len(set(qubits)) != len(qubits):
        raise ValueError("duplicate qubits")
    for q in qubits:
        if not 0 <= q < n_qubits:
            raise ValueError(f"qubit {q} outside register")
    probs = (np.abs(state) ** 2).reshape((2,) * n_qubits)
    others = tuple(q for q in range(n_qubits) if q not in qubits)
    marginal = probs.sum(axis=others) if others else probs
    # Ensure axis order matches the requested qubit order.
    remaining_order = [q for q in range(n_qubits) if q in qubits]
    permutation = [remaining_order.index(q) for q in qubits]
    marginal = np.transpose(marginal, permutation)
    return marginal.reshape(-1)


def marginal_probabilities_batched(states: np.ndarray, qubits: Sequence[int],
                                   n_qubits: int) -> np.ndarray:
    """Batched :func:`marginal_probabilities`.

    Returns a ``(batch, 2**len(qubits))`` matrix of per-state marginals.
    """
    states = _validate_batched(states, n_qubits)
    qubits = tuple(int(q) for q in qubits)
    if len(set(qubits)) != len(qubits):
        raise ValueError("duplicate qubits")
    for q in qubits:
        if not 0 <= q < n_qubits:
            raise ValueError(f"qubit {q} outside register")
    batch = states.shape[0]
    probs = (np.abs(states) ** 2).reshape((batch,) + (2,) * n_qubits)
    others = tuple(q + 1 for q in range(n_qubits) if q not in qubits)
    marginal = probs.sum(axis=others) if others else probs
    remaining_order = [q for q in range(n_qubits) if q in qubits]
    permutation = [0] + [remaining_order.index(q) + 1 for q in qubits]
    marginal = np.transpose(marginal, permutation)
    return marginal.reshape(batch, -1)


def marginal_probabilities_backward(state: np.ndarray, qubits: Sequence[int],
                                    n_qubits: int,
                                    grad_output: np.ndarray) -> np.ndarray:
    """Return ``dL/d(psi*)`` for a loss with gradient ``grad_output`` w.r.t.
    the marginal probability vector of ``qubits``."""
    state = np.asarray(state, dtype=np.complex128).reshape(-1)
    qubits = tuple(int(q) for q in qubits)
    grad_output = np.asarray(grad_output, dtype=np.float64).reshape(-1)
    if grad_output.size != 2**len(qubits):
        raise ValueError("grad_output length must be 2**len(qubits)")
    # Each basis state j contributes |psi_j|^2 to exactly one outcome k(j);
    # dL/d(psi*_j) = grad_output[k(j)] * psi_j.
    return grad_output[_outcome_indices(n_qubits, qubits)] * state


def marginal_probabilities_backward_batched(states: np.ndarray,
                                            qubits: Sequence[int],
                                            n_qubits: int,
                                            grad_outputs: np.ndarray
                                            ) -> np.ndarray:
    """Batched :func:`marginal_probabilities_backward`.

    ``grad_outputs`` has shape ``(batch, 2**len(qubits))``; the returned
    co-state stack has shape ``(batch, 2**n)``.
    """
    states = _validate_batched(states, n_qubits)
    qubits = tuple(int(q) for q in qubits)
    grad_outputs = np.asarray(grad_outputs, dtype=np.float64)
    if grad_outputs.shape != (states.shape[0], 2**len(qubits)):
        raise ValueError("grad_outputs must have shape (batch, 2**len(qubits))")
    return grad_outputs[:, _outcome_indices(n_qubits, qubits)] * states


def z_expectations_from_probabilities(probs: np.ndarray,
                                      qubits: Sequence[int],
                                      n_qubits: int) -> np.ndarray:
    """Pauli-Z expectations computed from a full-register probability vector.

    ``probs`` may be exact (``|psi|^2``) or a shot-noise estimate from
    :func:`sampled_probabilities`; the same sign-matrix contraction serves
    both, which is what lets the finite-shot readout policy reuse the ideal
    decoders unchanged.
    """
    probs = np.asarray(probs, dtype=np.float64).reshape(-1)
    if probs.size != 2**n_qubits:
        raise ValueError("probability vector length does not match n_qubits")
    return _sign_matrix(n_qubits, tuple(int(q) for q in qubits)) @ probs


def marginal_probabilities_from_probabilities(probs: np.ndarray,
                                              qubits: Sequence[int],
                                              n_qubits: int) -> np.ndarray:
    """Marginal outcome probabilities from a full-register probability vector.

    Accumulates each basis-state probability into its outcome bucket through
    the memoised basis-index -> outcome-index map, so exact and shot-noise
    probability vectors share one marginalisation path.
    """
    probs = np.asarray(probs, dtype=np.float64).reshape(-1)
    if probs.size != 2**n_qubits:
        raise ValueError("probability vector length does not match n_qubits")
    qubits = tuple(int(q) for q in qubits)
    outcome = _outcome_indices(n_qubits, qubits)
    return np.bincount(outcome, weights=probs, minlength=2**len(qubits))


def sample_counts(state: np.ndarray, n_shots: int,
                  rng=None) -> np.ndarray:
    """Sample measurement outcomes of the full register.

    Real near-term devices estimate probabilities and expectation values from
    a finite number of shots; this helper draws ``n_shots`` computational
    basis outcomes from the exact distribution and returns the per-outcome
    counts, so the shot-noise sensitivity of QuGeoVQC's decoders can be
    studied without a hardware backend.

    Determinism: ``rng`` accepts anything :func:`repro.utils.rng.ensure_rng`
    does — an integer seed, a :class:`numpy.random.SeedSequence`, an existing
    generator, or ``None``.  The same ``(state, n_shots, seed)`` triple
    always returns bit-identical counts, so sampled readouts are exactly
    reproducible across runs and across the ``sampled_*`` helpers built on
    top of this one.
    """
    from repro.utils.rng import ensure_rng

    if n_shots <= 0:
        raise ValueError("n_shots must be positive")
    probs = all_probabilities(np.asarray(state).reshape(-1))
    probs = probs / probs.sum()
    rng = ensure_rng(rng)
    outcomes = rng.choice(probs.size, size=n_shots, p=probs)
    return np.bincount(outcomes, minlength=probs.size)


def sampled_probabilities(state: np.ndarray, n_shots: int,
                          rng=None) -> np.ndarray:
    """Shot-noise estimate of the basis-state probabilities.

    Seed-deterministic: see :func:`sample_counts`.
    """
    counts = sample_counts(state, n_shots, rng=rng)
    return counts / float(n_shots)


def sampled_z_expectations(state: np.ndarray, qubits: Sequence[int],
                           n_qubits: int, n_shots: int,
                           rng=None) -> np.ndarray:
    """Shot-noise estimate of the Pauli-Z expectations used by Q-M-LY.

    Seed-deterministic: see :func:`sample_counts`.  All randomness lives in
    the single :func:`sampled_probabilities` draw; the decode is the same
    sign-matrix contraction as the exact :func:`z_expectations`.
    """
    state = np.asarray(state, dtype=np.complex128).reshape(-1)
    if state.size != 2**n_qubits:
        raise ValueError("state length does not match n_qubits")
    estimated = sampled_probabilities(state, n_shots, rng=rng)
    return z_expectations_from_probabilities(estimated, qubits, n_qubits)


def sampled_marginal_probabilities(state: np.ndarray, qubits: Sequence[int],
                                   n_qubits: int, n_shots: int,
                                   rng=None) -> np.ndarray:
    """Shot-noise estimate of the marginal outcome probabilities (Q-M-PX).

    Seed-deterministic: see :func:`sample_counts`.
    """
    state = np.asarray(state, dtype=np.complex128).reshape(-1)
    if state.size != 2**n_qubits:
        raise ValueError("state length does not match n_qubits")
    estimated = sampled_probabilities(state, n_shots, rng=rng)
    return marginal_probabilities_from_probabilities(estimated, qubits,
                                                     n_qubits)


def conditional_block_probabilities(state: np.ndarray, batch_qubits: int,
                                    n_qubits: int) -> Tuple[np.ndarray, np.ndarray]:
    """Split the probability vector into QuBatch blocks.

    With ``batch_qubits`` most-significant qubits indexing the batch, the
    state's probability vector splits into ``2**batch_qubits`` contiguous
    blocks of ``2**(n_qubits - batch_qubits)`` entries.  Returns the block
    matrix ``(n_batches, block_size)`` and the per-block total probability.
    """
    state = np.asarray(state, dtype=np.complex128).reshape(-1)
    if state.size != 2**n_qubits:
        raise ValueError("state length does not match n_qubits")
    if not 0 <= batch_qubits < n_qubits:
        raise ValueError("batch_qubits must be in [0, n_qubits)")
    n_batches = 2**batch_qubits
    block = state.reshape(n_batches, -1)
    probs = np.abs(block) ** 2
    return probs, probs.sum(axis=1)
