"""Fixed (non-parameterised) gate matrices and statevector application.

Convention: a state over ``n`` qubits is a complex vector of length ``2**n``.
When reshaped to ``(2,) * n``, axis ``q`` corresponds to qubit ``q``; the
basis index of a bitstring ``b_0 b_1 ... b_{n-1}`` is therefore
``sum(b_q * 2**(n-1-q))`` (qubit 0 is the most significant bit).  All helpers
in :mod:`repro.quantum` follow this convention.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

_SQRT2 = np.sqrt(2.0)

GATES: Dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=np.complex128),
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
    "H": np.array([[1, 1], [1, -1]], dtype=np.complex128) / _SQRT2,
    "S": np.array([[1, 0], [0, 1j]], dtype=np.complex128),
    "T": np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=np.complex128),
    "CNOT": np.array([[1, 0, 0, 0],
                      [0, 1, 0, 0],
                      [0, 0, 0, 1],
                      [0, 0, 1, 0]], dtype=np.complex128),
    "CZ": np.diag([1, 1, 1, -1]).astype(np.complex128),
    "SWAP": np.array([[1, 0, 0, 0],
                      [0, 0, 1, 0],
                      [0, 1, 0, 0],
                      [0, 0, 0, 1]], dtype=np.complex128),
}

# Freeze the canonical matrices: caches key off their identity, so in-place
# mutation would silently serve stale results.
for _gate_matrix in GATES.values():
    _gate_matrix.setflags(write=False)
del _gate_matrix


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Return ``True`` if ``matrix`` is unitary within tolerance ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))


def apply_matrix(state: np.ndarray, matrix: np.ndarray,
                 targets: Sequence[int], n_qubits: int,
                 dtype=None) -> np.ndarray:
    """Apply a ``2^k x 2^k`` matrix to ``targets`` qubits of ``state``.

    Parameters
    ----------
    state:
        Complex statevector of length ``2**n_qubits``.
    matrix:
        Gate matrix acting on ``len(targets)`` qubits.  ``targets[0]`` is the
        most significant qubit of the gate's own index space (so for CNOT,
        ``targets = (control, target)``).
    targets:
        Distinct qubit indices the gate acts on.
    n_qubits:
        Total number of qubits of the register.
    dtype:
        Complex dtype the state and matrix are computed in.  ``None`` (the
        default) keeps the historical ``complex128`` behaviour; backends
        pass their policy's complex compute dtype.

    Returns
    -------
    numpy.ndarray
        The new statevector (a fresh array; the input is not modified).
    """
    targets = tuple(int(t) for t in targets)
    k = len(targets)
    if len(set(targets)) != k:
        raise ValueError(f"duplicate target qubits: {targets}")
    for t in targets:
        if not 0 <= t < n_qubits:
            raise ValueError(f"target qubit {t} outside register of {n_qubits}")
    dtype = np.dtype(np.complex128 if dtype is None else dtype)
    matrix = _cast_gate(np.asarray(matrix), dtype)
    if matrix.shape != (2**k, 2**k):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match {k} target qubit(s)")
    state = np.asarray(state, dtype=dtype)
    if state.size != 2**n_qubits:
        raise ValueError(
            f"state length {state.size} does not match {n_qubits} qubits")

    if k == 1:
        return _apply_single_qubit(state, matrix, targets[0], n_qubits)
    if k == 2:
        return _apply_two_qubit(state, matrix, targets[0], targets[1], n_qubits)
    tensor = state.reshape((2,) * n_qubits)
    gate = matrix.reshape((2,) * (2 * k))
    # Contract the gate's input indices (last k axes) with the target axes.
    moved = np.tensordot(gate, tensor, axes=(tuple(range(k, 2 * k)), targets))  # qugeo-lint: disable=QG003 -- reference simulator is host-numpy by design
    # tensordot puts the gate's output axes first; move them back into place.
    moved = np.moveaxis(moved, tuple(range(k)), targets)
    return np.ascontiguousarray(moved.reshape(-1))


def _apply_single_qubit(state: np.ndarray, matrix: np.ndarray,
                        target: int, n_qubits: int) -> np.ndarray:
    """Fast path: apply a 2x2 matrix to one qubit.

    With qubit 0 as the most significant bit, the state reshapes to
    ``(2**target, 2, 2**(n-1-target))`` and the gate mixes the middle axis.
    """
    left = 1 << target
    right = 1 << (n_qubits - 1 - target)
    tensor = state.reshape(left, 2, right)
    zero = tensor[:, 0, :]
    one = tensor[:, 1, :]
    out = np.empty_like(tensor)
    out[:, 0, :] = matrix[0, 0] * zero + matrix[0, 1] * one
    out[:, 1, :] = matrix[1, 0] * zero + matrix[1, 1] * one
    return out.reshape(-1)


def _apply_two_qubit(state: np.ndarray, matrix: np.ndarray,
                     first: int, second: int, n_qubits: int) -> np.ndarray:
    """Fast path: apply a 4x4 matrix to the qubit pair ``(first, second)``.

    The gate's own basis orders ``first`` as the more significant bit (so for
    controlled gates ``first`` is the control).
    """
    low, high = (first, second) if first < second else (second, first)
    left = 1 << low
    mid = 1 << (high - low - 1)
    right = 1 << (n_qubits - 1 - high)
    tensor = state.reshape(left, 2, mid, 2, right)
    blocks = [tensor[:, a, :, b, :] for a in (0, 1) for b in (0, 1)]
    out = np.empty_like(tensor)
    terms = _fixed_two_qubit_terms(matrix, first < second)
    if terms is not None:
        for a in (0, 1):
            for b in (0, 1):
                acc = None
                for block_index, coeff in terms[(a << 1) | b]:
                    term = coeff * blocks[block_index]
                    acc = term if acc is None else acc + term
                out[:, a, :, b, :] = 0.0 if acc is None else acc
        return out.reshape(-1)
    # Parameterised matrices are fresh arrays: scan and accumulate in one
    # pass, exactly the pre-cache hot path.
    if first < second:
        def gate_index(low_bit, high_bit):
            return (low_bit << 1) | high_bit
    else:
        def gate_index(low_bit, high_bit):
            return (high_bit << 1) | low_bit
    for a in (0, 1):
        for b in (0, 1):
            row = gate_index(a, b)
            acc = None
            for c in (0, 1):
                for d in (0, 1):
                    coeff = matrix[row, gate_index(c, d)]
                    if coeff == 0:
                        continue
                    term = coeff * blocks[(c << 1) | d]
                    acc = term if acc is None else acc + term
            out[:, a, :, b, :] = 0.0 if acc is None else acc
    return out.reshape(-1)


# The module-level GATES matrices are immortal and frozen read-only, so
# their ids are stable cache keys for the memoised term structures.  The
# set also admits the per-dtype casts minted by _cast_gate below (equally
# immortal and frozen), so reduced-precision runs keep the memoised path.
_FIXED_GATE_IDS = set(id(m) for m in GATES.values())
_FIXED_GATE_TERMS: Dict[Tuple[int, bool],
                        Tuple[Tuple[Tuple[int, complex], ...], ...]] = {}

# Per-dtype casts of the canonical matrices, keyed by (id, dtype) so a
# complex64 request can never be served a stale complex128 cast (or vice
# versa).  Non-canonical (parameterised) matrices are never cached here.
_CAST_GATES: Dict[Tuple[int, str], np.ndarray] = {}


def _cast_gate(matrix: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Cast a gate matrix to ``dtype``, memoising casts of ``GATES`` constants.

    Casting a canonical matrix would otherwise mint a fresh array per call,
    losing the identity that keys the fixed-gate term memoisation.  The cast
    is frozen and its id registered as canonical, so every dtype gets its own
    stable, memoisable copy.
    """
    if matrix.dtype == dtype:
        return matrix
    if id(matrix) not in _FIXED_GATE_IDS:
        return matrix.astype(dtype)
    key = (id(matrix), dtype.str)
    cached = _CAST_GATES.get(key)
    if cached is None:
        cached = matrix.astype(dtype)
        cached.setflags(write=False)
        _FIXED_GATE_IDS.add(id(cached))
        _CAST_GATES[key] = cached
    return cached


def _fixed_two_qubit_terms(matrix: np.ndarray, low_is_first: bool):
    """Memoised non-zero term structure of a fixed 4x4 gate on an axis pair.

    ``terms[(a << 1) | b]`` lists ``(input_block_index, coefficient)`` pairs
    for the output block with low-axis bit ``a`` and high-axis bit ``b``,
    already skipping zero entries — so the sparsity scan of CNOT/CZ/SWAP
    happens once per (gate, axis order) instead of per application.
    Returns ``None`` for matrices that are not the canonical ``GATES``
    constants (e.g. parameterised gates); ``low_is_first`` records whether
    the gate's more significant qubit is the lower state axis.
    """
    key = (id(matrix), low_is_first)
    if key[0] not in _FIXED_GATE_IDS:
        return None
    terms = _FIXED_GATE_TERMS.get(key)
    if terms is None:
        entries = []
        for a in (0, 1):
            for b in (0, 1):
                if low_is_first:
                    row = (a << 1) | b
                else:
                    row = (b << 1) | a
                cell = []
                for c in (0, 1):
                    for d in (0, 1):
                        column = (c << 1) | d if low_is_first else (d << 1) | c
                        coeff = matrix[row, column]
                        if coeff != 0:
                            cell.append(((c << 1) | d, complex(coeff)))
                entries.append(tuple(cell))
        terms = tuple(entries)
        _FIXED_GATE_TERMS[key] = terms
    return terms
