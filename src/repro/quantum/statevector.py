"""The :class:`Statevector` container.

A thin, validated wrapper around the complex amplitude vector with the
operations the rest of the stack needs: gate application, normalisation,
probabilities and fidelity.  Heavier lifting (encoding, measurement layers,
gradients) lives in the sibling modules and operates on raw arrays for speed;
this class is the user-facing entry point.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.quantum.gates import apply_matrix


class Statevector:
    """An ``n``-qubit pure state.

    Parameters
    ----------
    amplitudes:
        Complex vector of length ``2**n``.  Normalised on construction unless
        ``normalize=False`` (in which case it must already have unit norm).
    dtype:
        Complex dtype of the stored amplitudes.  ``None`` (the default)
        keeps the historical ``complex128``; pass ``numpy.complex64`` (or a
        :class:`repro.xm.DTypePolicy`'s ``complex``) for reduced precision.
    """

    def __init__(self, amplitudes, normalize: bool = True,
                 dtype=None) -> None:
        dtype = np.dtype(np.complex128 if dtype is None else dtype)
        if dtype.kind != "c":
            raise ValueError(f"Statevector dtype must be complex, got {dtype}")
        data = np.asarray(amplitudes, dtype=dtype).reshape(-1)
        n_qubits = int(np.log2(data.size))
        if 2**n_qubits != data.size:
            raise ValueError(f"amplitude length {data.size} is not a power of two")
        norm = np.linalg.norm(data)
        if norm == 0:
            raise ValueError("cannot build a state from the zero vector")
        if normalize:
            data = data / norm
        else:
            # Normalisation drift scales with the amplitude precision.
            atol = 1e-9 if np.finfo(dtype).eps < 1e-10 else 1e-5
            if not np.isclose(norm, 1.0, atol=atol):
                raise ValueError(f"state is not normalised (norm={norm})")
        self._data = data
        self._n_qubits = n_qubits

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zero_state(cls, n_qubits: int, dtype=None) -> "Statevector":
        """Return the computational basis state ``|0...0>``."""
        if n_qubits <= 0:
            raise ValueError("n_qubits must be positive")
        data = np.zeros(2**n_qubits,
                        dtype=np.complex128 if dtype is None else dtype)
        data[0] = 1.0
        return cls(data, normalize=False, dtype=dtype)

    @classmethod
    def basis_state(cls, n_qubits: int, index: int,
                    dtype=None) -> "Statevector":
        """Return the computational basis state ``|index>``."""
        if not 0 <= index < 2**n_qubits:
            raise ValueError("basis index out of range")
        data = np.zeros(2**n_qubits,
                        dtype=np.complex128 if dtype is None else dtype)
        data[index] = 1.0
        return cls(data, normalize=False, dtype=dtype)

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def n_qubits(self) -> int:
        return self._n_qubits

    @property
    def amplitudes(self) -> np.ndarray:
        """The underlying complex amplitude vector (no copy)."""
        return self._data

    def probabilities(self) -> np.ndarray:
        """Measurement probabilities of every computational basis state."""
        return np.abs(self._data) ** 2

    def norm(self) -> float:
        """Euclidean norm of the amplitude vector (1 for a valid state)."""
        return float(np.linalg.norm(self._data))

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    def apply(self, matrix: np.ndarray, targets: Sequence[int]) -> "Statevector":
        """Return the state after applying ``matrix`` to ``targets`` qubits."""
        new = apply_matrix(self._data, matrix, targets, self._n_qubits,
                           dtype=self._data.dtype)
        return Statevector(new, normalize=False, dtype=self._data.dtype)

    def fidelity(self, other: "Statevector") -> float:
        """Squared overlap ``|<self|other>|^2`` with another state."""
        if other.n_qubits != self.n_qubits:
            raise ValueError("states have different qubit counts")
        return float(np.abs(np.vdot(self._data, other._data)) ** 2)

    def expectation_z(self, qubit: int) -> float:
        """Expectation value of Pauli-Z on ``qubit``."""
        from repro.quantum.measurement import z_expectations

        return float(z_expectations(self._data, [qubit], self._n_qubits)[0])

    def __len__(self) -> int:
        return self._data.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Statevector(n_qubits={self._n_qubits})"
