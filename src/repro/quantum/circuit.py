"""Parameterised circuit programs.

A :class:`ParameterizedCircuit` is an ordered list of :class:`GateOp`
entries.  Each op is either a fixed gate (``"H"``, ``"CNOT"``, ``"SWAP"`` ...)
or a parameterised gate (``"U3"``, ``"CU3"`` ...) whose parameters are slices
of one shared parameter vector.  Sharing a single flat vector keeps the
optimiser interface identical to the classical models and makes the adjoint
gradient computation in :mod:`repro.quantum.autodiff` straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.quantum.gates import GATES
from repro.quantum.parametric import PARAMETRIC_GATES


@dataclass(frozen=True)
class GateOp:
    """One gate application inside a circuit.

    Attributes
    ----------
    name:
        Gate name; either a key of :data:`repro.quantum.gates.GATES` or of
        :data:`repro.quantum.parametric.PARAMETRIC_GATES`.
    qubits:
        Target qubit indices (for controlled gates: ``(control, target)``).
    param_indices:
        Indices into the circuit's flat parameter vector, empty for fixed
        gates.
    """

    name: str
    qubits: Tuple[int, ...]
    param_indices: Tuple[int, ...] = ()

    @property
    def is_parametric(self) -> bool:
        return bool(self.param_indices)


class ParameterizedCircuit:
    """An ordered gate program over ``n_qubits`` and a flat parameter vector."""

    def __init__(self, n_qubits: int) -> None:
        if n_qubits <= 0:
            raise ValueError("n_qubits must be positive")
        self.n_qubits = int(n_qubits)
        self.ops: List[GateOp] = []
        self._n_params = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @property
    def n_params(self) -> int:
        """Number of trainable parameters referenced by the circuit."""
        return self._n_params

    def _validate_qubits(self, qubits: Sequence[int], expected: int, name: str) -> Tuple[int, ...]:
        qubits = tuple(int(q) for q in qubits)
        if len(qubits) != expected:
            raise ValueError(f"{name} acts on {expected} qubit(s), got {qubits}")
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"duplicate qubits in {qubits}")
        for q in qubits:
            if not 0 <= q < self.n_qubits:
                raise ValueError(f"qubit {q} outside register of {self.n_qubits}")
        return qubits

    def add_gate(self, name: str, qubits: Sequence[int]) -> "ParameterizedCircuit":
        """Append a fixed (non-parameterised) gate."""
        if name not in GATES:
            raise ValueError(f"unknown fixed gate {name!r}")
        matrix = GATES[name]
        expected = int(np.log2(matrix.shape[0]))
        qubits = self._validate_qubits(qubits, expected, name)
        self.ops.append(GateOp(name=name, qubits=qubits))
        return self

    def add_parametric_gate(self, name: str, qubits: Sequence[int],
                            param_indices: Optional[Sequence[int]] = None
                            ) -> "ParameterizedCircuit":
        """Append a parameterised gate.

        If ``param_indices`` is omitted, fresh parameter slots are allocated
        at the end of the parameter vector (the usual case); passing explicit
        indices allows parameter sharing between gates.
        """
        if name not in PARAMETRIC_GATES:
            raise ValueError(f"unknown parametric gate {name!r}")
        spec = PARAMETRIC_GATES[name]
        qubits = self._validate_qubits(qubits, spec.n_qubits, name)
        if param_indices is None:
            param_indices = tuple(range(self._n_params, self._n_params + spec.n_params))
            self._n_params += spec.n_params
        else:
            param_indices = tuple(int(i) for i in param_indices)
            if len(param_indices) != spec.n_params:
                raise ValueError(f"{name} needs {spec.n_params} parameters")
            if param_indices:
                self._n_params = max(self._n_params, max(param_indices) + 1)
        self.ops.append(GateOp(name=name, qubits=qubits, param_indices=param_indices))
        return self

    def extend(self, other: "ParameterizedCircuit") -> "ParameterizedCircuit":
        """Append every op of ``other`` (parameters are re-indexed after ours)."""
        if other.n_qubits != self.n_qubits:
            raise ValueError("circuits act on different register sizes")
        offset = self._n_params
        for op in other.ops:
            shifted = tuple(i + offset for i in op.param_indices)
            self.ops.append(GateOp(op.name, op.qubits, shifted))
        self._n_params += other.n_params
        return self

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def op_matrix(self, op: GateOp, params: np.ndarray) -> np.ndarray:
        """Return the unitary of ``op`` for the given parameter vector."""
        if op.is_parametric:
            gate_params = [float(params[i]) for i in op.param_indices]
            return PARAMETRIC_GATES[op.name].matrix(gate_params)
        return GATES[op.name]

    def run(self, state: np.ndarray, params: Optional[np.ndarray] = None,
            return_intermediate: bool = False, backend=None):
        """Apply the full circuit to ``state``.

        Parameters
        ----------
        state:
            Input statevector of length ``2**n_qubits``.
        params:
            Flat parameter vector of length :attr:`n_params`.
        return_intermediate:
            Also return the list of statevectors *before* each gate (used by
            the reverse-mode gradient computation).
        backend:
            Simulation engine: a registered name, a
            :class:`~repro.backends.base.SimulationBackend` instance, or
            ``None`` for the process default (see :mod:`repro.backends`).

        Returns
        -------
        numpy.ndarray
            The output statevector.
        """
        # Imported lazily: repro.backends pulls in the gate modules of this
        # package, so a module-level import would be circular.  Input
        # validation lives in SimulationBackend.validate_state/params.
        from repro.backends import get_backend

        return get_backend(backend).run(self, state, params,
                                        return_intermediate=return_intermediate)

    def run_batched(self, states: np.ndarray,
                    params: Optional[np.ndarray] = None,
                    backend=None) -> np.ndarray:
        """Apply the circuit to a ``(batch, 2**n_qubits)`` stack of states.

        ``params`` is a shared vector or, on backends advertising
        ``batched_params``, a ``(batch, n_params)`` matrix.  Backends with
        ``batched_states`` (e.g. ``"einsum"``) execute the whole stack as
        vectorised contractions; others fall back to a loop.
        """
        from repro.backends import get_backend

        return get_backend(backend).run_batched(self, states, params)

    def depth_estimate(self) -> int:
        """Greedy depth estimate: gates on disjoint qubits share a layer."""
        layers: List[set] = []
        for op in self.ops:
            placed = False
            for layer in reversed(layers):
                if layer & set(op.qubits):
                    break
                placed = False
            # Greedy: place in the last layer that does not conflict,
            # scanning from the end.
            index = len(layers)
            while index > 0 and not (layers[index - 1] & set(op.qubits)):
                index -= 1
            if index == len(layers):
                layers.append(set(op.qubits))
            else:
                layers[index] |= set(op.qubits)
                placed = True
            del placed
        return len(layers)

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ParameterizedCircuit(n_qubits={self.n_qubits}, "
                f"n_ops={len(self.ops)}, n_params={self.n_params})")
