"""Ansatz construction: the QuGeoVQC circuit structure.

The paper's QuGeoVQC uses the TorchQuantum ``U3 + CU3`` block (one general
single-qubit rotation on every qubit followed by a ring of controlled-U3
gates) repeated 12 times, giving ``12 * (3 + 3) * n_qubits = 576`` parameters
for 8 qubits.  :func:`u3_cu3_ansatz` builds that circuit for a single group;
:func:`grouped_st_ansatz` builds the grouped ST-VQC variant where each group
is processed by its own sub-VQC and the groups are entangled gradually with
cross-group CU3 gates (Section 3.2.2).
"""

from __future__ import annotations

from typing import Optional, Sequence


from repro.quantum.circuit import ParameterizedCircuit


def u3_cu3_block(circuit: ParameterizedCircuit,
                 qubits: Sequence[int]) -> ParameterizedCircuit:
    """Append one U3+CU3 block acting on ``qubits`` to ``circuit``.

    The block is a U3 on each qubit followed by a ring of CU3 gates
    ``(q_i -> q_{i+1 mod k})``.  A single qubit gets only the U3 (no
    self-entanglement is possible).
    """
    qubits = list(qubits)
    for q in qubits:
        circuit.add_parametric_gate("U3", (q,))
    if len(qubits) >= 2:
        for i, q in enumerate(qubits):
            target = qubits[(i + 1) % len(qubits)]
            if target == q:
                continue
            circuit.add_parametric_gate("CU3", (q, target))
    return circuit


def u3_cu3_ansatz(n_qubits: int, n_blocks: int = 12,
                  qubits: Optional[Sequence[int]] = None,
                  circuit: Optional[ParameterizedCircuit] = None
                  ) -> ParameterizedCircuit:
    """Build the ``n_blocks`` x (U3+CU3) ansatz used by QuGeoVQC.

    Parameters
    ----------
    n_qubits:
        Register size of the circuit.
    n_blocks:
        Number of repeated blocks (the paper uses 12).
    qubits:
        Subset of qubits the ansatz acts on; defaults to all of them.  This is
        how QuBatch integrates: the ansatz targets only data qubits while the
        batch qubits carry an implicit identity, realising the
        ``I (x) U(theta)`` structure of Figure 3 in the paper.
    circuit:
        Existing circuit to append to; a new one is created if omitted.
    """
    if n_blocks <= 0:
        raise ValueError("n_blocks must be positive")
    if circuit is None:
        circuit = ParameterizedCircuit(n_qubits)
    if qubits is None:
        qubits = tuple(range(n_qubits))
    for _ in range(n_blocks):
        u3_cu3_block(circuit, qubits)
    return circuit


def grouped_st_ansatz(group_qubits: Sequence[Sequence[int]], n_qubits: int,
                      n_blocks: int = 12,
                      inter_group_blocks: int = 1) -> ParameterizedCircuit:
    """Build the grouped ST-VQC: per-group sub-VQCs plus cross-group coupling.

    Parameters
    ----------
    group_qubits:
        Qubit indices of each encoder group.
    n_qubits:
        Total register size.
    n_blocks:
        U3+CU3 blocks inside each group's sub-VQC.
    inter_group_blocks:
        Number of cross-group entangling passes appended after the per-group
        sub-VQCs; each pass adds a CU3 between the last qubit of a group and
        the first qubit of the next group, gradually communicating features
        between groups as described in Section 3.2.2 of the paper.
    """
    groups = [tuple(int(q) for q in g) for g in group_qubits]
    if not groups:
        raise ValueError("need at least one group")
    circuit = ParameterizedCircuit(n_qubits)
    for group in groups:
        u3_cu3_ansatz(n_qubits, n_blocks=n_blocks, qubits=group, circuit=circuit)
    if len(groups) >= 2:
        for _ in range(max(0, inter_group_blocks)):
            for index in range(len(groups)):
                source_group = groups[index]
                target_group = groups[(index + 1) % len(groups)]
                control = source_group[-1]
                target = target_group[0]
                if control != target:
                    circuit.add_parametric_gate("CU3", (control, target))
    return circuit


def ansatz_parameter_count(n_qubits: int, n_blocks: int) -> int:
    """Closed-form parameter count of :func:`u3_cu3_ansatz` on all qubits.

    ``n_blocks * (3 * n_qubits + 3 * n_ring)`` where the CU3 ring has
    ``n_qubits`` gates when ``n_qubits >= 2`` and none otherwise.  For the
    paper's configuration (8 qubits, 12 blocks) this is 576.
    """
    ring = n_qubits if n_qubits >= 2 else 0
    return n_blocks * (3 * n_qubits + 3 * ring)
