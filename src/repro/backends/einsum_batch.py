"""Vectorised batched-statevector engine.

:class:`EinsumBatchBackend` keeps a leading batch axis on the state tensor
(``(batch,) + (2,) * n_qubits``) and applies every gate to the *whole* batch
with one cached :func:`numpy.einsum` contraction, so a QuBatch mini-batch or
a stacked parameter-shift sweep executes as a handful of BLAS-sized
contractions instead of a Python loop over samples and gates.

Three optimisations on top of the plain batched contraction:

* **cached einsum subscripts** — the contraction string for a gate depends
  only on ``(n_qubits, targets, gate_batched)`` and is memoised, so the
  per-call cost is the contraction itself;
* **single-qubit gate fusion** — adjacent single-qubit gates on the same
  wire (with no intervening op touching that wire) are multiplied into one
  2x2 matrix before application, halving the number of full-state passes
  for rotation chains;
* **memoised fixed-gate tensors** — the ``(2,) * 2k`` tensor forms of the
  fixed gates (H, CNOT, CZ, SWAP, ...) are built once per engine, and
  batched parameter sweeps build each gate's ``(batch, 2**k, 2**k)`` matrix
  stack without a Python loop via
  :meth:`repro.quantum.parametric.ParametricGate.matrix_stack`.

The engine also advertises ``batched_adjoint``: ``run_batched(...,
return_intermediate=True)`` records the pre-gate state stack of every op and
:meth:`EinsumBatchBackend.apply_gate_batched` pulls a whole co-state stack
through one matrix in a single contraction, which is what lets
:func:`repro.quantum.autodiff.circuit_gradients_batched` run a mini-batch of
reverse-mode gradients as a handful of BLAS-dispatched contractions per gate.
"""

from __future__ import annotations

import string
from functools import lru_cache
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.backends.base import BackendCapabilities, SimulationBackend
from repro.quantum.gates import GATES
from repro.quantum.parametric import PARAMETRIC_GATES
from repro.telemetry import get_telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.quantum.circuit import GateOp, ParameterizedCircuit

_LETTERS = string.ascii_lowercase + string.ascii_uppercase


@lru_cache(maxsize=None)
def _apply_subscripts(n_qubits: int, targets: Tuple[int, ...],
                      gate_batched: bool) -> str:
    """Einsum subscripts applying a ``k``-qubit gate to a batched state.

    The state operand is ``(batch,) + (2,) * n_qubits``; the gate operand is
    ``(2,) * 2k`` (or with a leading batch axis when ``gate_batched``).
    """
    # Body only runs on a cache miss; paired with the request counter at the
    # call site this yields the subscript-cache hit ratio for free.
    get_telemetry().counter("backend.einsum.subscripts.misses").inc()
    k = len(targets)
    needed = n_qubits + k + 1
    if needed > len(_LETTERS):
        raise ValueError(
            f"register of {n_qubits} qubits with a {k}-qubit gate exceeds "
            f"the einsum index budget")
    state = list(_LETTERS[:n_qubits])
    out = list(_LETTERS[n_qubits:n_qubits + k])
    batch = _LETTERS[n_qubits + k]
    gate = "".join(out) + "".join(state[t] for t in targets)
    if gate_batched:
        gate = batch + gate
    new_state = list(state)
    for letter, target in zip(out, targets):
        new_state[target] = letter
    return f"{gate},{batch}{''.join(state)}->{batch}{''.join(new_state)}"


class EinsumBatchBackend(SimulationBackend):
    """Batched statevector simulation via cached einsum contractions."""

    name = "einsum"
    capabilities = BackendCapabilities(batched_states=True,
                                       batched_params=True,
                                       gate_fusion=True,
                                       adjoint=True,
                                       batched_adjoint=True)

    #: State tensors with at least this many elements route through a
    #: precomputed BLAS-dispatching contraction path; smaller ones stay on
    #: the plain C einsum kernel, whose per-call overhead is lower.
    path_threshold: int = 1 << 13

    def __init__(self, fuse_single_qubit_gates: bool = True,
                 xm=None, policy=None) -> None:
        super().__init__(xm=xm, policy=policy)
        self.fuse_single_qubit_gates = bool(fuse_single_qubit_gates)
        self._fixed_tensors: Dict[Tuple[str, str], np.ndarray] = {}
        self._paths: Dict[Tuple[str, Tuple[int, ...], Tuple[int, ...]], list] = {}
        self._telemetry = get_telemetry()

    # ------------------------------------------------------------------ #
    # gate material
    # ------------------------------------------------------------------ #
    def _fixed_tensor(self, name: str):
        """Memoised ``(2,) * 2k`` tensor form of a fixed gate.

        Cached per ``(gate name, complex dtype)`` so a policy change on the
        instance can never serve a tensor of the wrong precision, and stored
        as the array module's native type (device-resident on GPU modules).
        """
        dtype = self.policy.complex
        key = (name, dtype.str)
        tensor = self._fixed_tensors.get(key)
        if tensor is None:
            if self._telemetry.enabled:
                self._telemetry.counter(
                    "backend.einsum.gate_tensors.misses").inc()
            matrix = GATES[name]
            k = int(np.log2(matrix.shape[0]))
            host = np.ascontiguousarray(
                matrix.reshape((2,) * (2 * k)).astype(dtype, copy=False))
            tensor = self.xm.asarray(host, dtype=dtype)
            if isinstance(tensor, np.ndarray):
                tensor.setflags(write=False)
            self._fixed_tensors[key] = tensor
        elif self._telemetry.enabled:
            self._telemetry.counter("backend.einsum.gate_tensors.hits").inc()
        return tensor

    def _op_matrix(self, op: "GateOp", params: np.ndarray,
                   params_batched: bool) -> Tuple[np.ndarray, bool]:
        """Gate material for one op as ``(matrix, batched)``.

        ``matrix`` is a native ``(2**k, 2**k)`` matrix, its ``(2,) * 2k``
        tensor form (fixed gates, memoised) or a ``(batch, 2**k, 2**k)``
        stack; :meth:`_apply_batched` reshapes uniformly.
        """
        if not op.is_parametric:
            return self._fixed_tensor(op.name), False
        if params_batched:
            columns = tuple(params[:, i] for i in op.param_indices)
            stack = PARAMETRIC_GATES[op.name].matrix_stack(columns)
            return self.xm.asarray(stack, dtype=self.policy.complex), True
        gate_params = [float(params[i]) for i in op.param_indices]
        matrix = PARAMETRIC_GATES[op.name].matrix(gate_params)
        return self.xm.asarray(matrix, dtype=self.policy.complex), False

    # ------------------------------------------------------------------ #
    # fused gate stream
    # ------------------------------------------------------------------ #
    def _gate_stream(self, circuit: "ParameterizedCircuit", params: np.ndarray,
                     params_batched: bool
                     ) -> Iterator[Tuple[np.ndarray, Tuple[int, ...], bool]]:
        """Yield ``(matrix, targets, batched)`` with single-qubit fusion.

        A single-qubit gate is held back per wire and composed with later
        single-qubit gates on the same wire; it is flushed as one matrix
        when a multi-qubit gate touches the wire (or at the end of the
        circuit).  Deferral is safe because gates on disjoint wires commute.
        """
        if not self.fuse_single_qubit_gates:
            for op in circuit.ops:
                matrix, batched = self._op_matrix(op, params, params_batched)
                yield matrix, op.qubits, batched
            return
        pending: Dict[int, Tuple[np.ndarray, bool]] = {}
        order: List[int] = []
        for op in circuit.ops:
            matrix, batched = self._op_matrix(op, params, params_batched)
            if len(op.qubits) == 1:
                wire = op.qubits[0]
                held = pending.get(wire)
                if held is None:
                    pending[wire] = (matrix, batched)
                    order.append(wire)
                else:
                    # Later gate multiplies from the left: state -> M_new M_old.
                    pending[wire] = (matrix @ held[0], batched or held[1])
            else:
                for wire in op.qubits:
                    held = pending.pop(wire, None)
                    if held is not None:
                        order.remove(wire)
                        yield held[0], (wire,), held[1]
                yield matrix, op.qubits, batched
        for wire in order:
            held = pending[wire]
            yield held[0], (wire,), held[1]

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _apply_batched(self, tensor: np.ndarray, matrix: np.ndarray,
                       targets: Tuple[int, ...], n_qubits: int,
                       gate_batched: bool) -> np.ndarray:
        """One einsum contraction over the whole batch (native arrays)."""
        k = len(targets)
        gate_shape = ((matrix.shape[0],) if gate_batched else ()) + (2,) * (2 * k)
        gate = self.xm.reshape(matrix, gate_shape)
        if self._telemetry.enabled:
            self._telemetry.counter("backend.einsum.subscripts.requests").inc()
        subscripts = _apply_subscripts(n_qubits, tuple(targets), gate_batched)
        if (self.xm.supports_einsum_path
                and self.xm.size(tensor) >= self.path_threshold):
            # The optimize= contraction-path cache is a host-NumPy-only fast
            # path: the guard above required supports_einsum_path, and the
            # generic branch below stays on the xm waist.
            return np.einsum(subscripts, gate, tensor,  # qugeo-lint: disable=QG003 -- host-numpy fast path by design
                             optimize=self._contraction_path(
                                 subscripts, gate, tensor))
        return self.xm.einsum(subscripts, gate, tensor)

    def _contraction_path(self, subscripts: str, gate: np.ndarray,
                          tensor: np.ndarray) -> list:
        """Memoised ``einsum_path`` so the path search is paid once per shape.

        On large state tensors the optimised executor dispatches the
        contraction to BLAS (``tensordot``), which is several times faster
        than the plain C einsum kernel for middle-axis targets.
        """
        key = (subscripts, gate.shape, tensor.shape)
        path = self._paths.get(key)
        if path is None:
            path = np.einsum_path(subscripts, gate, tensor,
                                  optimize="optimal")[0]
            self._paths[key] = path
        return path

    def run_batched(self, circuit: "ParameterizedCircuit", states: np.ndarray,
                    params: Optional[np.ndarray] = None,
                    return_intermediate: bool = False):
        host_states = np.asarray(states)
        if host_states.ndim != 2:
            raise ValueError("states must have shape (batch, 2**n_qubits)")
        n = circuit.n_qubits
        if host_states.shape[1] != 2**n:
            raise ValueError(
                f"state length {host_states.shape[1]} does not match {n} qubits")
        batch = host_states.shape[0]
        states = self.xm.asarray(host_states, dtype=self.policy.complex)
        params, params_batched = self._normalise_params(circuit, batch, params)
        telemetry = self._telemetry
        if telemetry.enabled:
            telemetry.counter("backend.einsum.run_batched.calls").inc()
            telemetry.counter("backend.einsum.run_batched.samples").inc(batch)
            telemetry.gauge("backend.einsum.last_batch_size").set(batch)
        tensor = self.xm.reshape(states, (batch,) + (2,) * n)
        if return_intermediate:
            # Batched adjoint path: the gradient sweep needs the state stack
            # before every op, so fusion is disabled and each op is applied
            # individually (still one whole-batch contraction per op).  The
            # intermediates cross the engine boundary as host arrays, which
            # is the contract the adjoint sweep relies on.
            with telemetry.span("einsum.run_batched"):
                intermediates: List[np.ndarray] = []
                for op in circuit.ops:
                    intermediates.append(
                        self.xm.to_numpy(self.xm.reshape(tensor, (batch, -1))))
                    matrix, batched = self._op_matrix(op, params,
                                                      params_batched)
                    tensor = self._apply_batched(tensor, matrix, op.qubits, n,
                                                 batched)
                out = self.xm.to_numpy(self.xm.reshape(tensor, (batch, -1)))
                return np.ascontiguousarray(out), intermediates
        with telemetry.span("einsum.run_batched"):
            for matrix, targets, batched in self._gate_stream(circuit, params,
                                                              params_batched):
                tensor = self._apply_batched(tensor, matrix, targets, n,
                                             batched)
            out = self.xm.to_numpy(self.xm.reshape(tensor, (batch, -1)))
            return np.ascontiguousarray(out)

    def apply_gate_batched(self, states: np.ndarray, matrix: np.ndarray,
                           targets, n_qubits: int) -> np.ndarray:
        """Apply one gate matrix to the whole stack with one contraction."""
        host_states = np.asarray(states)
        if host_states.ndim != 2:
            raise ValueError("states must have shape (batch, 2**n_qubits)")
        batch = host_states.shape[0]
        states = self.xm.asarray(host_states, dtype=self.policy.complex)
        tensor = self.xm.reshape(states, (batch,) + (2,) * n_qubits)
        matrix = self.xm.asarray(matrix, dtype=self.policy.complex)
        out = self._apply_batched(tensor, matrix, tuple(targets), n_qubits,
                                  False)
        return self.xm.to_numpy(self.xm.reshape(out, (batch, -1)))

    def run(self, circuit: "ParameterizedCircuit", state: np.ndarray,
            params: Optional[np.ndarray] = None,
            return_intermediate: bool = False):
        state = self.validate_state(circuit, state)
        if not return_intermediate:
            return self.run_batched(circuit, state[None, :], params)[0]
        # Adjoint path: the gradient sweep needs the state before every op,
        # so fusion is disabled and each op is applied individually.
        params, params_batched = self._normalise_params(circuit, 1, params)
        if params_batched:  # a single-row matrix is just a shared vector here
            params = params.reshape(-1)
        n = circuit.n_qubits
        intermediates: List[np.ndarray] = []
        current = self.xm.asarray(state, dtype=self.policy.complex)
        for op in circuit.ops:
            intermediates.append(self.xm.to_numpy(current))
            matrix, _ = self._op_matrix(op, params, False)
            tensor = self.xm.reshape(current, (1,) + (2,) * n)
            current = self.xm.reshape(
                self._apply_batched(tensor, matrix, op.qubits, n, False),
                (-1,))
        return self.xm.to_numpy(current), intermediates

    def _normalise_params(self, circuit: "ParameterizedCircuit", batch: int,
                          params: Optional[np.ndarray]
                          ) -> Tuple[np.ndarray, bool]:
        """Validate params and report whether they vary across the batch."""
        if params is None or np.ndim(params) <= 1:
            return self.validate_params(circuit, params), False
        params = np.asarray(params, dtype=self.policy.accum_real)
        if params.ndim == 2:
            if params.shape[1] != circuit.n_params:
                raise ValueError(
                    f"expected {circuit.n_params} parameters per row, got "
                    f"{params.shape[1]}")
            if params.shape[0] != batch:
                raise ValueError(
                    f"parameter batch {params.shape[0]} does not match state "
                    f"batch {batch}")
            return params, True
        raise ValueError("params must be a vector or a (batch, n_params) matrix")

    # ------------------------------------------------------------------ #
    # measurement heads (vectorised)
    # ------------------------------------------------------------------ #
    def expectation_batched(self, circuit: "ParameterizedCircuit",
                            states: np.ndarray,
                            params: Optional[np.ndarray] = None,
                            qubits: Optional[Tuple[int, ...]] = None
                            ) -> np.ndarray:
        n = circuit.n_qubits
        if qubits is None:
            qubits = tuple(range(n))
        outputs = self.run_batched(circuit, states, params)
        probs = np.abs(outputs) ** 2
        indices = np.arange(2**n)
        values = np.empty((outputs.shape[0], len(qubits)))
        for column, qubit in enumerate(qubits):
            if not 0 <= qubit < n:
                raise ValueError(f"qubit {qubit} outside register")
            signs = 1.0 - 2.0 * ((indices >> (n - 1 - qubit)) & 1)
            values[:, column] = probs @ signs
        return values
