"""String-keyed registry of simulation backends.

Engines register a factory under a short name (``"numpy"``, ``"einsum"``,
...) and callers resolve them with :func:`get_backend`.  Resolution order for
the default backend mirrors entry-point-style tooling:

1. an explicit name (or ready instance) passed by the caller — e.g. from
   :attr:`repro.core.config.QuGeoVQCConfig.backend`;
2. the ``QUGEO_BACKEND`` environment variable;
3. the process-wide default set with :func:`set_default_backend`
   (``"numpy"`` out of the box, the bit-exact legacy engine).

Factories are instantiated lazily and the instances cached, so repeated
``get_backend("einsum")`` calls share one engine (and therefore its memoised
gate tensors and einsum subscripts).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from repro.backends.base import SimulationBackend
from repro.utils import env

#: Environment variable consulted when no explicit backend is requested.
BACKEND_ENV_VAR = env.BACKEND

_FACTORIES: Dict[str, Callable[[], SimulationBackend]] = {}
_INSTANCES: Dict[str, SimulationBackend] = {}
_DEFAULT_NAME = "numpy"

BackendSpec = Union[None, str, SimulationBackend]


class BackendError(RuntimeError):
    """Base class for backend registry failures."""


class UnknownBackendError(BackendError, KeyError):
    """Raised when resolving a name no engine was registered under."""

    def __init__(self, name: str) -> None:
        self.name = name
        available = ", ".join(sorted(_FACTORIES)) or "<none>"
        super().__init__(
            f"unknown simulation backend {name!r}; registered backends: "
            f"{available}")

    def __str__(self) -> str:  # KeyError would quote the repr of args[0]
        return self.args[0]


class DuplicateBackendError(BackendError, ValueError):
    """Raised when registering a name that is already taken."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(
            f"simulation backend {name!r} is already registered; pass "
            f"replace=True to override it")


def register_backend(name: str,
                     factory: Callable[[], SimulationBackend],
                     *, replace: bool = False) -> None:
    """Register ``factory`` (a zero-arg callable) under ``name``.

    Registering an existing name raises :class:`DuplicateBackendError`
    unless ``replace=True``, in which case any cached instance is dropped.
    """
    if not name or not isinstance(name, str):
        raise ValueError("backend name must be a non-empty string")
    if not callable(factory):
        raise TypeError("backend factory must be callable")
    if name in _FACTORIES and not replace:
        raise DuplicateBackendError(name)
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def unregister_backend(name: str) -> None:
    """Remove ``name`` from the registry (mainly for tests)."""
    if name not in _FACTORIES:
        raise UnknownBackendError(name)
    del _FACTORIES[name]
    _INSTANCES.pop(name, None)


def available_backends() -> List[str]:
    """Sorted names of every registered engine."""
    return sorted(_FACTORIES)


def default_backend_name() -> str:
    """The name :func:`get_backend` resolves when given ``None``."""
    return env.get_str(env.BACKEND, _DEFAULT_NAME)


def set_default_backend(name: str) -> None:
    """Set the process-wide default engine (must already be registered)."""
    global _DEFAULT_NAME
    if name not in _FACTORIES:
        raise UnknownBackendError(name)
    _DEFAULT_NAME = name


def get_backend(spec: BackendSpec = None) -> SimulationBackend:
    """Resolve ``spec`` to a ready :class:`SimulationBackend` instance.

    ``spec`` may be ``None`` (use the environment / process default), a
    registered name, or an already-constructed backend (returned as-is, so
    callers can thread a custom engine through without registering it).
    """
    if isinstance(spec, SimulationBackend):
        return spec
    if spec is None:
        spec = default_backend_name()
    if not isinstance(spec, str):
        raise TypeError(
            f"backend spec must be None, a name or a SimulationBackend, "
            f"got {type(spec).__name__}")
    if spec not in _FACTORIES:
        raise UnknownBackendError(spec)
    if spec not in _INSTANCES:
        instance = _FACTORIES[spec]()
        if not isinstance(instance, SimulationBackend):
            raise TypeError(
                f"factory for backend {spec!r} returned "
                f"{type(instance).__name__}, not a SimulationBackend")
        _INSTANCES[spec] = instance
    return _INSTANCES[spec]
