"""The abstract simulation-backend interface.

A :class:`SimulationBackend` owns the execution of a
:class:`~repro.quantum.circuit.ParameterizedCircuit` on statevectors.  The
rest of the codebase (circuit ``run``, the adjoint differentiation, the
QuGeoVQC / QuBatchVQC models and every benchmark) talks to simulation only
through this interface, so alternative engines — vectorised NumPy, GPU,
sparse, remote hardware — can be swapped in via the registry in
:mod:`repro.backends.registry` without touching callers.

Conventions shared by all backends (see :mod:`repro.quantum.gates`):

* a state over ``n`` qubits is a complex vector of length ``2**n`` with
  qubit 0 as the most significant bit of the basis index;
* a batch of states is an array of shape ``(batch, 2**n)``;
* gate matrices order ``targets[0]`` as the most significant qubit of the
  gate's own index space (for controlled gates: ``(control, target)``).

The batched adjoint contract: ``run_batched(..., return_intermediate=True)``
returns ``(outputs, intermediates)`` where ``intermediates[i]`` is the
``(batch, 2**n)`` state stack *before* op ``i`` (gate fusion disabled), and
:meth:`SimulationBackend.apply_gate_batched` applies one matrix to a whole
stack.  Engines that implement them natively advertise
``capabilities.batched_adjoint`` and are picked up by the trainer's batched
gradient path; on every other backend
:func:`repro.quantum.autodiff.circuit_gradients_batched` stays correct by
driving the plain per-sample ``run`` / ``apply_gate`` contract instead (and
the base class still provides correct loop fallbacks for both batched
methods, so calling them directly is always safe).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.xm import get_array_module, get_dtype_policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.quantum.circuit import ParameterizedCircuit
    from repro.xm import ArrayOps, DTypePolicy


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do natively (callers may use these to pick paths).

    Attributes
    ----------
    batched_states:
        ``run_batched`` executes a whole stack of states in one vectorised
        pass instead of looping.
    batched_params:
        ``run_batched`` accepts a ``(batch, n_params)`` parameter matrix and
        evaluates a *different* parameter vector per state in the same pass
        (used to stack parameter-shift sweeps).
    gate_fusion:
        Adjacent single-qubit gates on the same wire are fused into one
        matrix before application.
    adjoint:
        ``run(..., return_intermediate=True)`` is supported, which the
        reverse-mode gradient in :mod:`repro.quantum.autodiff` requires.
    batched_adjoint:
        ``run_batched(..., return_intermediate=True)`` and
        :meth:`SimulationBackend.apply_gate_batched` execute natively on the
        whole state stack, so
        :func:`repro.quantum.autodiff.circuit_gradients_batched` runs a
        mini-batch of adjoint sweeps as stacked contractions.  The base-class
        fallbacks make the batched gradient path *correct* on every backend;
        this flag tells callers (e.g. ``QuantumTrainer``) that it is also
        *fast*.
    """

    batched_states: bool = False
    batched_params: bool = False
    gate_fusion: bool = False
    adjoint: bool = True
    batched_adjoint: bool = False


class SimulationBackend(ABC):
    """Abstract statevector simulation engine.

    Concrete engines implement :meth:`run` (and usually override
    :meth:`run_batched` with something faster than the default loop) and
    register themselves under a string key with
    :func:`repro.backends.registry.register_backend`.
    """

    #: Registry key and display name of the engine.
    name: str = "abstract"

    #: Capability flags; override in subclasses.
    capabilities: BackendCapabilities = BackendCapabilities()

    def __init__(self, xm: "ArrayOps" = None,
                 policy: "DTypePolicy" = None) -> None:
        """Bind the engine to an array module and a dtype policy.

        Both default to the ambient resolution (``QUGEO_ARRAY_MODULE`` /
        ``QUGEO_DTYPE`` environment variables, then ``numpy`` / ``float64``),
        which reproduces the historical hard-coded behaviour exactly.
        """
        self.xm = get_array_module(xm)
        self.policy = get_dtype_policy(policy)

    # ------------------------------------------------------------------ #
    # core execution
    # ------------------------------------------------------------------ #
    @abstractmethod
    def run(self, circuit: "ParameterizedCircuit", state: np.ndarray,
            params: Optional[np.ndarray] = None,
            return_intermediate: bool = False):
        """Apply ``circuit`` to one statevector.

        Parameters
        ----------
        circuit:
            The gate program to execute.
        state:
            Input statevector of length ``2**circuit.n_qubits``.
        params:
            Flat parameter vector of length ``circuit.n_params`` (``None``
            means all-zero parameters).
        return_intermediate:
            Also return the list of statevectors *before* each gate, in op
            order, as required by the adjoint gradient sweep.

        Returns
        -------
        numpy.ndarray or (numpy.ndarray, list[numpy.ndarray])
            The output statevector, plus the per-op intermediates when
            ``return_intermediate`` is true.
        """

    def run_batched(self, circuit: "ParameterizedCircuit", states: np.ndarray,
                    params: Optional[np.ndarray] = None,
                    return_intermediate: bool = False):
        """Apply ``circuit`` to a ``(batch, 2**n)`` stack of statevectors.

        ``params`` may be a shared ``(n_params,)`` vector or — when the
        backend advertises ``batched_params`` — a ``(batch, n_params)``
        matrix giving each state its own parameters.  With
        ``return_intermediate`` the per-op pre-gate state stacks are also
        returned (one ``(batch, 2**n)`` array per op, in op order), which is
        the contract the batched adjoint sweep in
        :func:`repro.quantum.autodiff.circuit_gradients_batched` relies on.
        The default implementation loops over :meth:`run`.
        """
        states = np.asarray(states, dtype=self.policy.complex)
        if states.ndim != 2:
            raise ValueError("states must have shape (batch, 2**n_qubits)")
        per_state_params = self._per_state_params(circuit, states.shape[0], params)
        if not return_intermediate:
            return np.stack([self.run(circuit, state, p)
                             for state, p in zip(states, per_state_params)])
        outputs: List[np.ndarray] = []
        per_state: List[List[np.ndarray]] = []
        for state, p in zip(states, per_state_params):
            output, intermediates = self.run(circuit, state, p,
                                             return_intermediate=True)
            outputs.append(output)
            per_state.append(intermediates)
        stacked = [np.stack([row[index] for row in per_state])
                   for index in range(len(circuit.ops))]
        return np.stack(outputs), stacked

    def _per_state_params(self, circuit: "ParameterizedCircuit", batch: int,
                          params: Optional[np.ndarray]) -> List[Optional[np.ndarray]]:
        """Expand ``params`` into one parameter vector per batch entry."""
        if params is None:
            return [None] * batch
        params = np.asarray(params, dtype=np.float64)
        if params.ndim <= 1:
            return [params] * batch
        if params.ndim == 2:
            if params.shape[0] != batch:
                raise ValueError(
                    f"parameter batch {params.shape[0]} does not match "
                    f"state batch {batch}")
            return list(params)
        raise ValueError("params must be a vector or a (batch, n_params) matrix")

    # ------------------------------------------------------------------ #
    # shared input validation (one copy of the run() contract)
    # ------------------------------------------------------------------ #
    def validate_state(self, circuit: "ParameterizedCircuit",
                       state: np.ndarray) -> np.ndarray:
        """Coerce ``state`` to a flat complex vector of the register size.

        The vector is cast to the policy's complex compute dtype
        (``complex128`` by default, ``complex64`` under the float32 policy).
        """
        state = np.asarray(state, dtype=self.policy.complex).reshape(-1)
        if state.size != 2**circuit.n_qubits:
            raise ValueError(
                f"state length {state.size} does not match "
                f"{circuit.n_qubits} qubits")
        return state

    def validate_params(self, circuit: "ParameterizedCircuit",
                        params: Optional[np.ndarray]) -> np.ndarray:
        """Coerce ``params`` to a flat float vector (``None`` -> zeros).

        Parameters (gate angles) always stay in the accumulation precision:
        they are few, they parameterise trig evaluations, and gradients with
        respect to them are accumulated in float64 under every policy.
        """
        if params is None:
            return np.zeros(circuit.n_params, dtype=self.policy.accum_real)
        params = np.asarray(params, dtype=self.policy.accum_real).reshape(-1)
        if params.size != circuit.n_params:
            raise ValueError(
                f"expected {circuit.n_params} parameters, got {params.size}")
        return params

    # ------------------------------------------------------------------ #
    # primitives shared with the adjoint sweep
    # ------------------------------------------------------------------ #
    def apply_gate(self, state: np.ndarray, matrix: np.ndarray,
                   targets: Sequence[int], n_qubits: int) -> np.ndarray:
        """Apply one gate matrix to one statevector.

        The adjoint sweep uses this to pull the co-state back through
        ``U^dagger``; the default delegates to the reference implementation
        in :mod:`repro.quantum.gates`.
        """
        from repro.quantum.gates import apply_matrix

        return apply_matrix(state, matrix, targets, n_qubits,
                            dtype=self.policy.complex)

    def apply_gate_batched(self, states: np.ndarray, matrix: np.ndarray,
                           targets: Sequence[int], n_qubits: int) -> np.ndarray:
        """Apply one gate matrix to a ``(batch, 2**n)`` state stack.

        The batched adjoint sweep uses this to pull the whole co-state stack
        back through ``U^dagger`` in one call.  The default loops over
        :meth:`apply_gate`; backends advertising ``batched_adjoint``
        override it with a vectorised kernel.
        """
        states = np.asarray(states, dtype=self.policy.complex)
        if states.ndim != 2:
            raise ValueError("states must have shape (batch, 2**n_qubits)")
        return np.stack([self.apply_gate(state, matrix, targets, n_qubits)
                         for state in states])

    # ------------------------------------------------------------------ #
    # measurement heads
    # ------------------------------------------------------------------ #
    def expectation(self, circuit: "ParameterizedCircuit", state: np.ndarray,
                    params: Optional[np.ndarray] = None,
                    qubits: Optional[Sequence[int]] = None) -> np.ndarray:
        """Pauli-Z expectations of ``qubits`` on the circuit's output state.

        ``qubits`` defaults to the full register.  This is the read-out used
        by the layer-wise (Q-M-LY) decoder.
        """
        from repro.quantum.measurement import z_expectations

        if qubits is None:
            qubits = tuple(range(circuit.n_qubits))
        output = self.run(circuit, state, params)
        return z_expectations(output, qubits, circuit.n_qubits)

    def expectation_batched(self, circuit: "ParameterizedCircuit",
                            states: np.ndarray,
                            params: Optional[np.ndarray] = None,
                            qubits: Optional[Sequence[int]] = None) -> np.ndarray:
        """Per-state Z expectations, shape ``(batch, len(qubits))``."""
        from repro.quantum.measurement import z_expectations

        if qubits is None:
            qubits = tuple(range(circuit.n_qubits))
        outputs = self.run_batched(circuit, states, params)
        return np.stack([z_expectations(out, qubits, circuit.n_qubits)
                         for out in outputs])

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
