"""The reference engine: one gate, one statevector at a time.

:class:`NumpyLoopBackend` reproduces the pre-subsystem execution path
bit-for-bit — a Python loop over the circuit's ops calling
:func:`repro.quantum.gates.apply_matrix` — so every existing test, trained
model and benchmark number is preserved when it is the active backend (it is
the registry default).  It is also the ground truth the vectorised engines
are tested against.

The engine does not advertise ``batched_adjoint``: the batched gradient path
(:func:`repro.quantum.autodiff.circuit_gradients_batched`) still works here,
it just drives the backend one sample at a time through the plain
``run(..., return_intermediate=True)`` / ``apply_gate`` contract — which is
exactly what the parity tests rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.backends.base import BackendCapabilities, SimulationBackend
from repro.quantum.gates import apply_matrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.quantum.circuit import ParameterizedCircuit


class NumpyLoopBackend(SimulationBackend):
    """Sequential per-gate NumPy statevector simulation (legacy path)."""

    name = "numpy"
    capabilities = BackendCapabilities(batched_states=False,
                                       batched_params=False,
                                       gate_fusion=False,
                                       adjoint=True)

    def run(self, circuit: "ParameterizedCircuit", state: np.ndarray,
            params: Optional[np.ndarray] = None,
            return_intermediate: bool = False):
        state = self.validate_state(circuit, state)
        params = self.validate_params(circuit, params)

        intermediates: List[np.ndarray] = []
        current = state
        for op in circuit.ops:
            if return_intermediate:
                intermediates.append(current)
            matrix = circuit.op_matrix(op, params)
            current = apply_matrix(current, matrix, op.qubits, circuit.n_qubits,
                                   dtype=self.policy.complex)
        if return_intermediate:
            return current, intermediates
        return current
