"""Pluggable statevector simulation backends.

Simulation is a first-class, swappable subsystem: every consumer
(:class:`~repro.quantum.circuit.ParameterizedCircuit`, the adjoint gradients
in :mod:`repro.quantum.autodiff`, :class:`~repro.core.vqc_model.QuGeoVQC`,
:class:`~repro.core.qubatch.QuBatchVQC` and the benchmarks) executes through
the :class:`SimulationBackend` interface and engines are resolved by name
from a registry:

>>> from repro.backends import get_backend
>>> get_backend("numpy")    # bit-exact per-gate loop (the default)
>>> get_backend("einsum")   # vectorised batched-statevector engine

The default is chosen per call site (an explicit argument or
``QuGeoVQCConfig.backend``), falling back to the ``QUGEO_BACKEND``
environment variable and then to ``"numpy"``.  Future engines (GPU, sparse,
remote hardware) plug in with :func:`register_backend` without touching any
caller.
"""

from repro.backends.base import BackendCapabilities, SimulationBackend
from repro.backends.registry import (
    BACKEND_ENV_VAR,
    BackendError,
    DuplicateBackendError,
    UnknownBackendError,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    set_default_backend,
    unregister_backend,
)
from repro.backends.numpy_loop import NumpyLoopBackend
from repro.backends.einsum_batch import EinsumBatchBackend

register_backend("numpy", NumpyLoopBackend)
register_backend("einsum", EinsumBatchBackend)

__all__ = [
    "BACKEND_ENV_VAR",
    "BackendCapabilities",
    "BackendError",
    "DuplicateBackendError",
    "EinsumBatchBackend",
    "NumpyLoopBackend",
    "SimulationBackend",
    "UnknownBackendError",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "set_default_backend",
    "unregister_backend",
]
