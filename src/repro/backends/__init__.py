"""Pluggable statevector simulation backends.

Simulation is a first-class, swappable subsystem: every consumer
(:class:`~repro.quantum.circuit.ParameterizedCircuit`, the adjoint gradients
in :mod:`repro.quantum.autodiff`, :class:`~repro.core.vqc_model.QuGeoVQC`,
:class:`~repro.core.qubatch.QuBatchVQC` and the benchmarks) executes through
the :class:`SimulationBackend` interface and engines are resolved by name
from a registry:

>>> from repro.backends import get_backend
>>> get_backend("numpy")    # bit-exact per-gate loop (the default)
>>> get_backend("einsum")   # vectorised batched-statevector engine

The default is chosen per call site (an explicit argument or
``QuGeoVQCConfig.backend``), falling back to the ``QUGEO_BACKEND``
environment variable and then to ``"numpy"``.  Future engines (GPU, sparse,
remote hardware) plug in with :func:`register_backend` without touching any
caller.

The ``"torch"`` and ``"cupy"`` engines are the einsum engine re-based onto
the corresponding :mod:`repro.xm` array module — same contraction strategy,
device-resident tensors.  They are always *listed* but resolving them raises
a clear error when the optional dependency is not installed.
"""

from repro.backends.base import BackendCapabilities, SimulationBackend
from repro.backends.registry import (
    BACKEND_ENV_VAR,
    BackendError,
    DuplicateBackendError,
    UnknownBackendError,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    set_default_backend,
    unregister_backend,
)
from repro.backends.numpy_loop import NumpyLoopBackend
from repro.backends.einsum_batch import EinsumBatchBackend

def _array_module_backend(module_name: str):
    """Factory for an einsum engine running on a non-NumPy array module.

    Raises ``ArrayModuleUnavailableError`` (an ``ImportError``) at
    resolution time when the optional dependency is missing, so the names
    always appear in ``available_backends()`` but fail loudly on machines
    without the package.
    """
    from repro.xm import get_array_module

    backend = EinsumBatchBackend(xm=get_array_module(module_name))
    backend.name = module_name
    return backend


register_backend("numpy", NumpyLoopBackend)
register_backend("einsum", EinsumBatchBackend)
register_backend("torch", lambda: _array_module_backend("torch"))
register_backend("cupy", lambda: _array_module_backend("cupy"))

__all__ = [
    "BACKEND_ENV_VAR",
    "BackendCapabilities",
    "BackendError",
    "DuplicateBackendError",
    "EinsumBatchBackend",
    "NumpyLoopBackend",
    "SimulationBackend",
    "UnknownBackendError",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "set_default_backend",
    "unregister_backend",
]
