"""CuPy implementation of :class:`~repro.xm.ops.ArrayOps`.

Import-guarded like the torch module: constructing :class:`CupyOps` raises
:class:`~repro.xm.ops.ArrayModuleUnavailableError` when ``cupy`` is not
installed.  CuPy mirrors the NumPy API closely enough that only the
construction / transfer methods need overriding.
"""

from __future__ import annotations

import numpy as np

from repro.xm.ops import ArrayModuleUnavailableError, ArrayOps

try:  # pragma: no cover - exercised only where cupy is installed
    import cupy
except ImportError:  # pragma: no cover
    cupy = None


class CupyOps(ArrayOps):
    """ArrayOps over ``cupy.ndarray`` (CUDA device arrays)."""

    name = "cupy"
    supports_einsum_path = False
    device = "cuda"

    def __init__(self):
        if cupy is None:
            raise ArrayModuleUnavailableError("cupy", "cupy")

    def asarray(self, array, dtype=None):
        return cupy.asarray(array, dtype=dtype)

    def ascontiguous(self, array):
        return cupy.ascontiguousarray(array)

    def zeros(self, shape, dtype):
        return cupy.zeros(shape, dtype=dtype)

    def empty(self, shape, dtype):
        return cupy.empty(shape, dtype=dtype)

    def zeros_like(self, array):
        return cupy.zeros_like(array)

    def empty_like(self, array):
        return cupy.empty_like(array)

    def stack(self, arrays):
        return cupy.stack([cupy.asarray(a) for a in arrays])

    def to_numpy(self, array) -> np.ndarray:
        if isinstance(array, cupy.ndarray):
            return cupy.asnumpy(array)
        return np.asarray(array)

    def einsum(self, subscripts, *operands):
        return cupy.einsum(subscripts, *operands)

    def matmul(self, a, b, out=None):
        return cupy.matmul(a, b, out=out)

    def multiply(self, a, b, out=None):
        return cupy.multiply(a, b, out=out)

    def conj(self, array):
        return cupy.conj(array)

    def abs2(self, array):
        return cupy.abs(array) ** 2

    def size(self, array) -> int:
        return int(array.size)

    def synchronize(self) -> None:
        cupy.cuda.get_current_stream().synchronize()
