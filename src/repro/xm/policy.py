"""Explicit precision policy for the numeric stack.

A :class:`DTypePolicy` names every dtype a numeric engine needs:

* ``real`` / ``complex`` — the *compute* dtypes carried by hot-path arrays
  (wavefield buffers, statevector stacks, gate tensors);
* ``accum_real`` / ``accum_complex`` — the *accumulation* dtypes used where
  many compute-precision values are summed into a result that callers keep
  (receiver gathers, parameter gradients, loss values).  These stay
  ``float64`` / ``complex128`` even under the ``float32`` policy, which is
  what keeps mixed-precision runs trustworthy;
* ``index`` — the integer dtype of index material (``np.intp``).

The default policy is ``float64`` (compute == accumulate), which keeps every
engine bit-identical to the historical hard-coded ``np.float64`` /
``np.complex128`` behaviour.  The ``float32`` policy halves array memory and
bandwidth on the propagator and statevector hot paths at ~1e-3 relative
accuracy.

Resolution mirrors the backend/propagator registries: an explicit policy or
name beats the ``QUGEO_DTYPE`` environment variable, which beats the
process-wide default (:func:`set_default_policy`, ``float64`` out of the
box).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.utils import env


@dataclass(frozen=True)
class DTypePolicy:
    """Named bundle of compute / accumulation / index dtypes.

    Attributes
    ----------
    name:
        Registry key (``"float64"`` / ``"float32"``).
    real, complex:
        Compute dtypes of real and complex hot-path arrays.
    accum_real, accum_complex:
        Accumulation dtypes; results handed back to callers (gathers,
        gradients, losses) are produced in these.
    index:
        Integer dtype of index material.
    """

    name: str
    real: np.dtype
    complex: np.dtype
    accum_real: np.dtype
    accum_complex: np.dtype
    index: np.dtype

    @property
    def is_default_precision(self) -> bool:
        """True when compute precision equals the historical float64 path."""
        return self.real == np.dtype(np.float64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DTypePolicy({self.name!r})"


def _policy(name: str, real, cplx) -> DTypePolicy:
    return DTypePolicy(name=name, real=np.dtype(real), complex=np.dtype(cplx),
                       accum_real=np.dtype(np.float64),
                       accum_complex=np.dtype(np.complex128),
                       index=np.dtype(np.intp))


#: Full precision (the default): compute == accumulate == float64/complex128.
FLOAT64 = _policy("float64", np.float64, np.complex128)

#: Reduced-precision compute with float64 accumulation.
FLOAT32 = _policy("float32", np.float32, np.complex64)

_POLICIES: Dict[str, DTypePolicy] = {p.name: p for p in (FLOAT64, FLOAT32)}

_DEFAULT_NAME = "float64"

PolicySpec = Union[None, str, DTypePolicy]


def available_policies() -> List[str]:
    """Sorted names of every known dtype policy."""
    return sorted(_POLICIES)


def default_policy_name() -> str:
    """The name :func:`get_dtype_policy` resolves when given ``None``."""
    return env.get_choice(env.DTYPE, _DEFAULT_NAME, _POLICIES)


def set_default_policy(name: str) -> None:
    """Set the process-wide default policy (beaten by ``QUGEO_DTYPE``)."""
    global _DEFAULT_NAME
    if name not in _POLICIES:
        raise ValueError(
            f"unknown dtype policy {name!r}; known policies: "
            f"{available_policies()}")
    _DEFAULT_NAME = name


def get_dtype_policy(spec: PolicySpec = None) -> DTypePolicy:
    """Resolve ``spec`` to a :class:`DTypePolicy`.

    ``spec`` may be ``None`` (use ``QUGEO_DTYPE`` / the process default), a
    policy name, or an already-constructed policy (returned as-is).
    """
    if isinstance(spec, DTypePolicy):
        return spec
    if spec is None:
        spec = default_policy_name()
    if not isinstance(spec, str):
        raise TypeError(
            f"dtype policy spec must be None, a name or a DTypePolicy, got "
            f"{type(spec).__name__}")
    try:
        return _POLICIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown dtype policy {spec!r}; known policies: "
            f"{available_policies()}") from None


def ensure_complex(array, policy: Optional[DTypePolicy] = None) -> np.ndarray:
    """Coerce ``array`` to a complex NumPy array without needless upcasts.

    Arrays that already carry a complex dtype are passed through unchanged
    (so a ``complex64`` stack stays ``complex64`` on the hot path); anything
    else is cast to the policy's complex compute dtype (``complex128`` when
    no policy is given — the historical behaviour).
    """
    array = np.asarray(array)
    if array.dtype.kind == "c":
        return array
    target = policy.complex if policy is not None else np.dtype(np.complex128)
    return array.astype(target)
