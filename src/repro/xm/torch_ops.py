"""PyTorch implementation of :class:`~repro.xm.ops.ArrayOps`.

Import-guarded: constructing :class:`TorchOps` raises
:class:`~repro.xm.ops.ArrayModuleUnavailableError` when ``torch`` is not
installed, so the registry can always *list* the module while resolution
fails loudly on machines without the dependency.

Tensors live on CUDA when available, else CPU; :meth:`to_numpy` moves them
back to the host, which is where the engine boundaries hand results to
callers.
"""

from __future__ import annotations

import numpy as np

from repro.xm.ops import ArrayModuleUnavailableError, ArrayOps

try:  # pragma: no cover - exercised only where torch is installed
    import torch
except ImportError:  # pragma: no cover
    torch = None


class TorchOps(ArrayOps):
    """ArrayOps over ``torch.Tensor`` (CUDA when available, else CPU)."""

    name = "torch"
    supports_einsum_path = False

    def __init__(self, device=None):
        if torch is None:
            raise ArrayModuleUnavailableError("torch", "torch")
        if device is None:
            device = "cuda" if torch.cuda.is_available() else "cpu"
        self.device = str(device)
        self._device = torch.device(self.device)
        self._dtype_map = {
            np.dtype(np.float64): torch.float64,
            np.dtype(np.float32): torch.float32,
            np.dtype(np.complex128): torch.complex128,
            np.dtype(np.complex64): torch.complex64,
            np.dtype(np.intp): torch.long,
            np.dtype(np.int64): torch.long,
            np.dtype(np.int32): torch.int32,
            np.dtype(np.bool_): torch.bool,
        }

    def native_dtype(self, dtype):
        if isinstance(dtype, torch.dtype):
            return dtype
        key = np.dtype(dtype)
        try:
            return self._dtype_map[key]
        except KeyError:
            raise TypeError(
                f"array module 'torch' has no mapping for dtype {key}") from None

    def asarray(self, array, dtype=None):
        native = None if dtype is None else self.native_dtype(dtype)
        if isinstance(array, torch.Tensor):
            return array.to(device=self._device, dtype=native or array.dtype)
        # torch.as_tensor shares memory with the source ndarray where it
        # can, matching np.asarray's no-copy behaviour on CPU.
        return torch.as_tensor(np.asarray(array), dtype=native,
                               device=self._device)

    def ascontiguous(self, array):
        return array.contiguous()

    def zeros(self, shape, dtype):
        return torch.zeros(shape, dtype=self.native_dtype(dtype),
                           device=self._device)

    def empty(self, shape, dtype):
        return torch.empty(shape, dtype=self.native_dtype(dtype),
                           device=self._device)

    def zeros_like(self, array):
        return torch.zeros_like(array)

    def empty_like(self, array):
        return torch.empty_like(array)

    def stack(self, arrays):
        return torch.stack([self.asarray(a) for a in arrays])

    def to_numpy(self, array) -> np.ndarray:
        if isinstance(array, torch.Tensor):
            return array.detach().cpu().numpy()
        return np.asarray(array)

    def reshape(self, array, shape):
        return array.reshape(shape)

    def size(self, array) -> int:
        return int(array.numel())

    def einsum(self, subscripts, *operands):
        return torch.einsum(subscripts, *operands)

    def matmul(self, a, b, out=None):
        return torch.matmul(a, b, out=out)

    def multiply(self, a, b, out=None):
        return torch.mul(a, b, out=out)

    def conj(self, array):
        # resolve_conj materialises the lazy conjugate bit so downstream
        # reshape/einsum treat it as a plain tensor.
        return torch.conj(array).resolve_conj()

    def abs2(self, array):
        return torch.abs(array) ** 2

    def synchronize(self) -> None:
        if self._device.type == "cuda":
            torch.cuda.synchronize(self._device)
