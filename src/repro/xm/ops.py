"""The array-module abstraction (``ArrayOps``) and its registry.

An :class:`ArrayOps` instance is the narrow waist between the numeric
engines (the einsum simulation backend, the batched acoustic propagator)
and the array library executing them.  It exposes exactly the operations
those hot loops need — allocation, reshape, ``einsum``, ``matmul``, casting
and host transfer — with NumPy semantics, so an engine written against it
runs unchanged on NumPy, CuPy or PyTorch (CPU or GPU) arrays.

Resolution mirrors the simulation-backend registry:

1. an explicit name (or ready instance) passed by the caller;
2. the ``QUGEO_ARRAY_MODULE`` environment variable;
3. the process-wide default (``"numpy"`` out of the box).

Modules with missing optional dependencies register normally but raise
:class:`ArrayModuleUnavailableError` (naming the missing package) when
resolved, so ``get_array_module("torch")`` fails loudly instead of at the
first contraction.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

import numpy as np

from repro.utils import env


class ArrayModuleError(RuntimeError):
    """Base class for array-module registry failures."""


class UnknownArrayModuleError(ArrayModuleError, KeyError):
    """Raised when resolving a name no module was registered under."""

    def __init__(self, name: str) -> None:
        self.name = name
        available = ", ".join(sorted(_FACTORIES)) or "<none>"
        super().__init__(
            f"unknown array module {name!r}; registered modules: {available}")

    def __str__(self) -> str:  # KeyError would quote the repr of args[0]
        return self.args[0]


class ArrayModuleUnavailableError(ArrayModuleError, ImportError):
    """Raised when a registered module's import dependency is missing."""

    def __init__(self, name: str, package: str) -> None:
        self.name = name
        super().__init__(
            f"array module {name!r} requires the optional package "
            f"{package!r}, which is not installed")


class ArrayOps:
    """NumPy-semantics operation set over one array library.

    The base class *is* the NumPy implementation; alternative libraries
    subclass it and override the methods whose spelling differs.  All
    ``dtype`` arguments are NumPy dtypes — :meth:`native_dtype` translates
    them to the library's own dtype objects where needed.
    """

    #: Registry key and display name.
    name: str = "numpy"

    #: Whether :func:`numpy.einsum_path`-style precomputed contraction paths
    #: apply (the optimised-path cache in the einsum backend is NumPy-only;
    #: other libraries dispatch their own contraction planning).
    supports_einsum_path: bool = True

    #: Device the module computes on ("cpu" for NumPy).
    device: str = "cpu"

    # ------------------------------------------------------------------ #
    # dtype translation
    # ------------------------------------------------------------------ #
    def native_dtype(self, dtype):
        """Translate a NumPy dtype to the library's dtype object."""
        return np.dtype(dtype)

    # ------------------------------------------------------------------ #
    # construction / conversion
    # ------------------------------------------------------------------ #
    def asarray(self, array, dtype=None):
        """Coerce ``array`` (host or native) to a native array."""
        return np.asarray(array, dtype=dtype)

    def ascontiguous(self, array):
        """A C-contiguous view (or copy) of ``array``."""
        return np.ascontiguousarray(array)

    def zeros(self, shape, dtype):
        return np.zeros(shape, dtype=dtype)

    def empty(self, shape, dtype):
        return np.empty(shape, dtype=dtype)

    def zeros_like(self, array):
        return np.zeros_like(array)

    def empty_like(self, array):
        return np.empty_like(array)

    def stack(self, arrays):
        return np.stack(arrays)

    def to_numpy(self, array) -> np.ndarray:
        """Transfer a native array back to a host NumPy array (no copy on
        NumPy itself)."""
        return np.asarray(array)

    # ------------------------------------------------------------------ #
    # shape / structure
    # ------------------------------------------------------------------ #
    def reshape(self, array, shape):
        return array.reshape(shape)

    def size(self, array) -> int:
        """Total element count of ``array``."""
        return int(array.size)

    # ------------------------------------------------------------------ #
    # arithmetic kernels
    # ------------------------------------------------------------------ #
    def einsum(self, subscripts: str, *operands):
        return np.einsum(subscripts, *operands)

    def matmul(self, a, b, out=None):
        return np.matmul(a, b, out=out)

    def multiply(self, a, b, out=None):
        return np.multiply(a, b, out=out)

    def conj(self, array):
        return np.conj(array)

    def abs2(self, array):
        """Elementwise ``|x|^2`` (measurement probabilities)."""
        return np.abs(array) ** 2

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def synchronize(self) -> None:
        """Block until queued device work is done (no-op on CPU modules)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, device={self.device!r})"


#: The NumPy implementation is the base class itself.
NumpyOps = ArrayOps

_FACTORIES: Dict[str, Callable[[], ArrayOps]] = {}
_INSTANCES: Dict[str, ArrayOps] = {}
_DEFAULT_NAME = "numpy"

ArrayModuleSpec = Union[None, str, ArrayOps]


def register_array_module(name: str, factory: Callable[[], ArrayOps],
                          *, replace: bool = False) -> None:
    """Register ``factory`` (a zero-arg callable) under ``name``."""
    if not name or not isinstance(name, str):
        raise ValueError("array module name must be a non-empty string")
    if not callable(factory):
        raise TypeError("array module factory must be callable")
    if name in _FACTORIES and not replace:
        raise ArrayModuleError(
            f"array module {name!r} is already registered; pass replace=True "
            f"to override it")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_array_modules() -> List[str]:
    """Sorted names of every registered module (installed or not)."""
    return sorted(_FACTORIES)


def array_module_available(name: str) -> bool:
    """Whether ``name`` is registered *and* its dependencies import."""
    if name not in _FACTORIES:
        return False
    try:
        get_array_module(name)
    except ArrayModuleUnavailableError:
        return False
    return True


def default_array_module_name() -> str:
    """The name :func:`get_array_module` resolves when given ``None``."""
    return env.get_str(env.ARRAY_MODULE, _DEFAULT_NAME)


def set_default_array_module(name: str) -> None:
    """Set the process-wide default module (must already be registered)."""
    global _DEFAULT_NAME
    if name not in _FACTORIES:
        raise UnknownArrayModuleError(name)
    _DEFAULT_NAME = name


def get_array_module(spec: ArrayModuleSpec = None) -> ArrayOps:
    """Resolve ``spec`` to a ready :class:`ArrayOps` instance.

    ``spec`` may be ``None`` (use ``QUGEO_ARRAY_MODULE`` / the process
    default), a registered name, or an already-constructed instance
    (returned as-is).
    """
    if isinstance(spec, ArrayOps):
        return spec
    if spec is None:
        spec = default_array_module_name()
    if not isinstance(spec, str):
        raise TypeError(
            f"array module spec must be None, a name or an ArrayOps "
            f"instance, got {type(spec).__name__}")
    if spec not in _FACTORIES:
        raise UnknownArrayModuleError(spec)
    if spec not in _INSTANCES:
        instance = _FACTORIES[spec]()
        if not isinstance(instance, ArrayOps):
            raise TypeError(
                f"factory for array module {spec!r} returned "
                f"{type(instance).__name__}, not an ArrayOps")
        _INSTANCES[spec] = instance
    return _INSTANCES[spec]


def _torch_factory() -> ArrayOps:
    from repro.xm.torch_ops import TorchOps

    return TorchOps()


def _cupy_factory() -> ArrayOps:
    from repro.xm.cupy_ops import CupyOps

    return CupyOps()


register_array_module("numpy", NumpyOps)
register_array_module("torch", _torch_factory)
register_array_module("cupy", _cupy_factory)
