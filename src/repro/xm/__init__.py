"""Array-module + dtype-policy seam for the numeric stack.

``repro.xm`` decouples the numeric engines from both the array library they
run on and the precision they run at:

* :class:`ArrayOps` / :func:`get_array_module` — a narrow operation set
  (allocation, reshape, einsum, matmul, host transfer) implemented for
  NumPy today and for PyTorch / CuPy when installed, selected via the
  ``QUGEO_ARRAY_MODULE`` environment variable or per-engine constructor
  arguments.
* :class:`DTypePolicy` / :func:`get_dtype_policy` — named dtype bundles
  (``float64`` default, ``float32`` compute with float64 accumulation),
  selected via ``QUGEO_DTYPE``.

The default ``numpy``/``float64`` combination reproduces the historical
hard-coded behaviour bit-for-bit.
"""

from repro.xm.ops import (
    ArrayModuleError,
    ArrayModuleUnavailableError,
    ArrayOps,
    NumpyOps,
    UnknownArrayModuleError,
    array_module_available,
    available_array_modules,
    default_array_module_name,
    get_array_module,
    register_array_module,
    set_default_array_module,
)
from repro.xm.policy import (
    FLOAT32,
    FLOAT64,
    DTypePolicy,
    available_policies,
    default_policy_name,
    ensure_complex,
    get_dtype_policy,
    set_default_policy,
)

__all__ = [
    "ArrayModuleError",
    "ArrayModuleUnavailableError",
    "ArrayOps",
    "NumpyOps",
    "UnknownArrayModuleError",
    "array_module_available",
    "available_array_modules",
    "default_array_module_name",
    "get_array_module",
    "register_array_module",
    "set_default_array_module",
    "FLOAT32",
    "FLOAT64",
    "DTypePolicy",
    "available_policies",
    "default_policy_name",
    "ensure_complex",
    "get_dtype_policy",
    "set_default_policy",
]
