"""QuGeo reproduction: quantum learning for seismic full-waveform inversion.

The package is organised as:

* :mod:`repro.core` — the paper's contribution: QuGeoData physics-guided data
  scaling, the QuGeoVQC model (encoder / U3+CU3 ansatz / pixel- and
  layer-wise decoders), QuBatch, parameter-matched classical baselines and
  the training / experiment harnesses.
* :mod:`repro.quantum` — NumPy statevector simulator with analytic gradients.
* :mod:`repro.backends` — pluggable simulation engines behind a registry
  (per-gate loop, vectorised batched einsum; the seam for GPU / sparse /
  remote backends).
* :mod:`repro.nn` — small autograd / neural-network substrate for the
  classical components.
* :mod:`repro.seismic` — acoustic forward modelling and velocity-model
  generators.
* :mod:`repro.data` — synthetic OpenFWI-style dataset tooling.
* :mod:`repro.metrics` — SSIM and error metrics.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
