"""Human-readable rendering of a telemetry snapshot.

The span statistics are path-keyed (``trainer.epoch/step/einsum.run_batched``)
and render as an indented tree; timers, counters and gauges render as flat
tables.  All tables go through :func:`repro.utils.tables.format_table`, the
same helper the benchmark harnesses use.
"""

from __future__ import annotations

from typing import Dict, List

from repro.utils.tables import format_table


def _ms(seconds: float) -> float:
    return seconds * 1e3


def spans_table(snapshot: Dict[str, object]) -> str:
    """Indented span tree with count / total / mean / min / max columns."""
    spans = snapshot.get("spans", {})
    rows: List[List[object]] = []
    for path in sorted(spans):
        stats = spans[path]
        depth = path.count("/")
        leaf = path.rsplit("/", 1)[-1]
        mean = stats["total"] / stats["count"] if stats["count"] else 0.0
        rows.append(["  " * depth + leaf, stats["count"],
                     f"{stats['total']:.4f}", f"{_ms(mean):.3f}",
                     f"{_ms(stats['min']):.3f}", f"{_ms(stats['max']):.3f}"])
    return format_table(
        ["span", "count", "total s", "mean ms", "min ms", "max ms"], rows,
        title="Telemetry spans")


def timers_table(snapshot: Dict[str, object]) -> str:
    timers = snapshot.get("timers", {})
    rows = []
    for name in sorted(timers):
        stats = timers[name]
        mean = stats["total"] / stats["count"] if stats["count"] else 0.0
        rows.append([name, stats["count"], f"{stats['total']:.4f}",
                     f"{_ms(mean):.3f}", f"{_ms(stats['min']):.3f}",
                     f"{_ms(stats['max']):.3f}"])
    return format_table(
        ["timer", "count", "total s", "mean ms", "min ms", "max ms"], rows,
        title="Telemetry timers")


def counters_table(snapshot: Dict[str, object]) -> str:
    rows: List[List[object]] = [[name, value] for name, value
                                in sorted(snapshot.get("counters", {}).items())]
    rows.extend([name, f"{value:.6g}"] for name, value
                in sorted(snapshot.get("gauges", {}).items()))
    return format_table(["counter / gauge", "value"], rows,
                        title="Telemetry counters")


def render_report(snapshot: Dict[str, object]) -> str:
    """Full profile: span tree, then timers, then counters and gauges.

    Sections with nothing recorded are omitted; an entirely empty snapshot
    renders as a one-line notice.
    """
    sections = []
    if snapshot.get("spans"):
        sections.append(spans_table(snapshot))
    if snapshot.get("timers"):
        sections.append(timers_table(snapshot))
    if snapshot.get("counters") or snapshot.get("gauges"):
        sections.append(counters_table(snapshot))
    if not sections:
        return (f"Telemetry: nothing recorded "
                f"(mode={snapshot.get('mode', 'off')})")
    return "\n\n".join(sections)
