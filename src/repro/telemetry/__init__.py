"""Zero-dependency observability for the whole stack.

See :mod:`repro.telemetry.core` for the registry and
:mod:`repro.telemetry.report` for the ASCII profile rendering.  The hot
paths of the stack (einsum backend, batched gradient engine, acoustic
propagator, dataset store, training engine) are instrumented against the
process-wide registry returned by :func:`get_telemetry`; recording is
switched on with the ``QUGEO_TELEMETRY`` environment variable (``off`` /
``summary`` / ``trace``) or in-process via :func:`configure` /
:func:`capture`.
"""

from repro.telemetry.core import (
    ENV_VAR,
    MODES,
    Counter,
    Gauge,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_SPAN,
    Stat,
    Telemetry,
    capture,
    configure,
    get_telemetry,
)
from repro.telemetry.report import (
    counters_table,
    render_report,
    spans_table,
    timers_table,
)

__all__ = [
    "ENV_VAR",
    "MODES",
    "Counter",
    "Gauge",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_SPAN",
    "Stat",
    "Telemetry",
    "capture",
    "configure",
    "get_telemetry",
    "counters_table",
    "render_report",
    "spans_table",
    "timers_table",
]
