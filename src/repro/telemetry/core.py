"""Process-local telemetry: counters, gauges, timers and nested spans.

One :class:`Telemetry` registry per process collects

* **counters** — monotonically increasing integers
  (``telemetry.counter("store.shard_reads").inc()``),
* **gauges** — last-written floats (``telemetry.gauge(name).set(value)``),
* **timers** — flat duration statistics
  (``with telemetry.timer("decompress"): ...``),
* **spans** — nested duration statistics.  ``with telemetry.span(name):``
  pushes ``name`` onto a per-thread stack; statistics are keyed by the
  ``/``-joined stack path, so the recorded spans form a tree
  (``trainer.epoch/step/einsum.run_batched``).

Every duration statistic records ``count`` / ``total`` / ``min`` / ``max`` /
``last`` using monotonic clocks (:func:`time.perf_counter`).  The registry is
thread safe: each thread nests spans on its own stack and all shared state is
updated under a lock.

The process-wide instance (:func:`get_telemetry`) starts in the mode named by
the ``QUGEO_TELEMETRY`` environment variable:

* ``off`` (default, also ``""``/``0``/``false``/``no``) — every handle is a
  shared no-op singleton, so instrumented hot paths pay one attribute check
  and nothing else;
* ``summary`` (also ``1``/``on``/``true``) — aggregate statistics only;
* ``trace`` — summary plus one event record per span, exportable as JSONL
  (:meth:`Telemetry.dump_jsonl`), bounded by :data:`MAX_TRACE_EVENTS`.

The module is dependency-free (stdlib only) and imports nothing from the rest
of the stack except the ASCII-table helper used by
:meth:`Telemetry.profile_table`, so every layer — backends, quantum, seismic,
data, core, benchmarks — can instrument itself without import cycles.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

from repro.utils import env

ENV_VAR = env.TELEMETRY

MODES = ("off", "summary", "trace")

_MODE_ALIASES = {
    "": "off", "0": "off", "false": "off", "no": "off", "off": "off",
    "1": "summary", "on": "summary", "true": "summary", "summary": "summary",
    "trace": "trace",
}

#: Trace-mode event cap: beyond it new events are counted as dropped instead
#: of growing the event list without bound.
MAX_TRACE_EVENTS = 200_000


def _resolve_mode(mode: Optional[str]) -> str:
    """Normalise an explicit mode or the ``QUGEO_TELEMETRY`` value."""
    if mode is None:
        mode = env.get_str(ENV_VAR, "off")
    resolved = _MODE_ALIASES.get(str(mode).strip().lower())
    if resolved is None:
        raise ValueError(
            f"unknown telemetry mode {mode!r}; expected one of {MODES} "
            f"(via {ENV_VAR} or an explicit argument)")
    return resolved


class Stat:
    """count / total / min / max / last of a stream of duration samples."""

    __slots__ = ("count", "total", "min", "max", "last")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.last = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value

    def add_aggregate(self, total: float, count: int) -> None:
        """Fold in a pre-aggregated batch of ``count`` samples.

        Used by hot loops that accumulate a phase total locally (e.g. the
        propagator's per-step Laplacian time) and record once at the end;
        ``min``/``max`` then track per-batch means rather than individual
        samples.
        """
        if count <= 0:
            return
        self.count += count
        self.total += total
        mean = total / count
        if mean < self.min:
            self.min = mean
        if mean > self.max:
            self.max = mean
        self.last = total

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "total": self.total,
                "min": self.min if self.count else 0.0, "max": self.max,
                "last": self.last}


class Counter:
    """A thread-safe monotonically increasing integer."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += int(n)

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A last-written float value."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class _NullCounter:
    """Shared no-op counter handed out while telemetry is off."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    @property
    def value(self) -> int:
        return 0


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class _NullSpan:
    """Shared no-op context manager handed out while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one nested span into the registry."""

    __slots__ = ("_telemetry", "name", "_start", "_path")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self.name = name

    def __enter__(self) -> "_Span":
        stack = self._telemetry._stack()
        stack.append(self.name)
        self._path = "/".join(stack)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        duration = time.perf_counter() - self._start
        self._telemetry._stack().pop()
        self._telemetry._record_span(self.name, self._path, self._start,
                                     duration)


class _Timer:
    """Context manager recording one flat (non-nested) duration sample."""

    __slots__ = ("_telemetry", "name", "_start")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self.name = name

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._telemetry.record_timer(self.name,
                                     time.perf_counter() - self._start)


class Telemetry:
    """A process-local registry of counters, gauges, timers and spans."""

    def __init__(self, mode: Optional[str] = None) -> None:
        self._mode = _resolve_mode(mode)
        # ``enabled`` is a plain attribute (kept in sync by ``set_mode``)
        # rather than a property: instrumented hot loops check it per
        # iteration, and an attribute load is several times cheaper than a
        # descriptor call.
        self.enabled = self._mode != "off"
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Stat] = {}
        self._spans: Dict[str, Stat] = {}
        self._events: List[Dict[str, object]] = []
        self._events_dropped = 0
        self._epoch = time.perf_counter()

    # -- mode ------------------------------------------------------------ #
    @property
    def mode(self) -> str:
        return self._mode

    def set_mode(self, mode: str) -> None:
        self._mode = _resolve_mode(mode)
        #: True when any recording happens (``summary`` or ``trace``).
        self.enabled = self._mode != "off"

    @property
    def tracing(self) -> bool:
        return self._mode == "trace"

    # -- handles --------------------------------------------------------- #
    def counter(self, name: str) -> Union[Counter, _NullCounter]:
        if self._mode == "off":
            return NULL_COUNTER
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter())
        return counter

    def gauge(self, name: str) -> Union[Gauge, _NullGauge]:
        if self._mode == "off":
            return NULL_GAUGE
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge())
        return gauge

    def span(self, name: str) -> Union[_Span, _NullSpan]:
        """Nested duration context manager (keyed by the thread's span path)."""
        if self._mode == "off":
            return NULL_SPAN
        return _Span(self, name)

    def timer(self, name: str) -> Union[_Timer, _NullSpan]:
        """Flat duration context manager (keyed by ``name`` alone)."""
        if self._mode == "off":
            return NULL_SPAN
        return _Timer(self, name)

    def record_timer(self, name: str, seconds: float, count: int = 1) -> None:
        """Record ``count`` samples totalling ``seconds`` under timer ``name``."""
        if self._mode == "off":
            return
        with self._lock:
            stat = self._timers.setdefault(name, Stat())
            if count == 1:
                stat.add(seconds)
            else:
                stat.add_aggregate(seconds, count)

    # -- span recording -------------------------------------------------- #
    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record_span(self, name: str, path: str, start: float,
                     duration: float) -> None:
        with self._lock:
            self._spans.setdefault(path, Stat()).add(duration)
            if self._mode == "trace":
                if len(self._events) < MAX_TRACE_EVENTS:
                    self._events.append({
                        "name": name,
                        "path": path,
                        "ts": start - self._epoch,
                        "dur": duration,
                        "thread": threading.get_ident(),
                    })
                else:
                    self._events_dropped += 1

    # -- export ----------------------------------------------------------- #
    def span_totals(self) -> Dict[str, float]:
        """``{path: total seconds}`` for every recorded span path."""
        with self._lock:
            return {path: stat.total for path, stat in self._spans.items()}

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serialisable copy of everything recorded so far."""
        with self._lock:
            return {
                "mode": self._mode,
                "counters": {name: counter.value
                             for name, counter in self._counters.items()},
                "gauges": {name: gauge.value
                           for name, gauge in self._gauges.items()},
                "timers": {name: stat.as_dict()
                           for name, stat in self._timers.items()},
                "spans": {path: stat.as_dict()
                          for path, stat in self._spans.items()},
                "trace_events": len(self._events),
                "trace_events_dropped": self._events_dropped,
            }

    def trace_events(self) -> List[Dict[str, object]]:
        """Copy of the recorded trace events (``trace`` mode only)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def dump_jsonl(self, path) -> None:
        """Write the snapshot (and, in ``trace`` mode, every span event) as JSONL.

        One JSON object per line: a ``meta`` record, one record per counter /
        gauge / timer / span, then (in ``trace`` mode) one ``event`` record
        per recorded span occurrence.
        """
        snapshot = self.snapshot()
        lines = [json.dumps({"kind": "meta", "mode": snapshot["mode"],
                             "trace_events": snapshot["trace_events"],
                             "trace_events_dropped":
                                 snapshot["trace_events_dropped"]})]
        for kind in ("counters", "gauges"):
            for name, value in sorted(snapshot[kind].items()):
                lines.append(json.dumps(
                    {"kind": kind[:-1], "name": name, "value": value}))
        for kind in ("timers", "spans"):
            for name, stats in sorted(snapshot[kind].items()):
                record = {"kind": kind[:-1], "name": name}
                record.update(stats)
                lines.append(json.dumps(record))
        for event in self.trace_events():
            record = {"kind": "event"}
            record.update(event)
            lines.append(json.dumps(record))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")

    def profile_table(self) -> str:
        """ASCII profile of the recorded spans, timers and counters."""
        from repro.telemetry.report import render_report
        return render_report(self.snapshot())

    # -- lifecycle --------------------------------------------------------- #
    def reset(self) -> None:
        """Drop every recorded value (mode is kept)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._spans.clear()
            self._events = []
            self._events_dropped = 0
            self._epoch = time.perf_counter()


# --------------------------------------------------------------------------- #
# the process-wide instance
# --------------------------------------------------------------------------- #
_instance: Optional[Telemetry] = None
_instance_lock = threading.Lock()


def get_telemetry() -> Telemetry:
    """The process-wide registry (created on first use from ``QUGEO_TELEMETRY``)."""
    global _instance
    if _instance is None:
        with _instance_lock:
            if _instance is None:
                _instance = Telemetry()
    return _instance


def configure(mode: str, reset: bool = False) -> Telemetry:
    """Switch the process-wide registry to ``mode`` (optionally clearing it)."""
    telemetry = get_telemetry()
    telemetry.set_mode(mode)
    if reset:
        telemetry.reset()
    return telemetry


@contextmanager
def capture(mode: str = "summary") -> Iterator[Telemetry]:
    """Temporarily record telemetry: fresh registry state in ``mode``.

    For tests and ad-hoc profiling::

        with capture("summary") as telem:
            run_workload()
            assert telem.snapshot()["counters"]["store.shard_reads"] > 0

    The previous mode is restored (and the registry cleared) on exit.
    """
    telemetry = get_telemetry()
    previous = telemetry.mode
    telemetry.set_mode(mode)
    telemetry.reset()
    try:
        yield telemetry
    finally:
        telemetry.set_mode(previous)
        telemetry.reset()
