"""Random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.SeedSequence`, an existing
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  These helpers
normalise the four forms so call sites stay short and deterministic
experiments remain reproducible.

Determinism contract: the same seed (or an equal ``SeedSequence`` — same
entropy and spawn key) always yields a generator producing the identical
stream, so any consumer drawing a fixed sequence of variates from it is
bit-reproducible.  ``SeedSequence`` support matters for derived streams: the
robustness perturbation layer and the chunk-seeded dataset generator both key
per-item streams as ``SeedSequence(seed, spawn_key=(item,))`` and hand them
straight to :func:`ensure_rng`.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

RngLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (fresh entropy), an integer seed, a
        :class:`numpy.random.SeedSequence` (a fresh generator seeded from it
        — equal sequences yield identical streams), or an existing generator
        (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"Cannot build a Generator from {type(rng).__name__}")


def spawn_rngs(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` independent child generators from ``rng``.

    Children are derived through :class:`numpy.random.SeedSequence` spawning
    so that parallel workloads (e.g. per-shot forward modelling) do not share
    streams.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]
