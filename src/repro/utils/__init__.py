"""Shared utilities: RNG handling, ASCII tables, and simple run logging."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.tables import format_table
from repro.utils.logging import RunLogger

__all__ = ["ensure_rng", "spawn_rngs", "format_table", "RunLogger"]
