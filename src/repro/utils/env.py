"""Central parsing of the ``QUGEO_*`` environment variables.

Every process-level switch of the stack is an environment variable with the
``QUGEO_`` prefix.  Historically each subsystem parsed its own variable
inline (``telemetry/core.py``, ``backends/registry.py``,
``seismic/propagators.py``, ``benchmarks/common.py``, ...); this module is
now the single place that knows the variable names, their defaults and how
to coerce their values, so the documented behaviour cannot drift between
call sites.

The module is stdlib-only and imports nothing from the rest of the stack,
so every layer (including :mod:`repro.telemetry`, which must stay
dependency-free) can use it without import cycles.

Known variables
---------------

==========================  =====================================================
Variable                    Meaning (default)
==========================  =====================================================
``QUGEO_BACKEND``           Default simulation backend name (``numpy``)
``QUGEO_PROPAGATOR``        Default acoustic propagator name (``batched``)
``QUGEO_SEISMIC_KERNEL``    Default propagator time-loop kernel (``python``;
                            also ``numba`` / ``cffi`` when installed)
``QUGEO_SEISMIC_BOUNDARY``  Default absorbing boundary (``sponge``; ``pml``)
``QUGEO_ARRAY_MODULE``      Default array module for numeric engines (``numpy``)
``QUGEO_DTYPE``             Default dtype policy (``float64``; also ``float32``)
``QUGEO_TELEMETRY``         Telemetry mode (``off``; ``summary`` / ``trace``)
``QUGEO_BENCH_SCALE``       Benchmark scale (``small``; ``medium`` / ``full``)
``QUGEO_CACHE_DIR``         Sharded dataset-store directory (unset = no cache)
``QUGEO_DATAGEN_WORKERS``   Process-pool size for cold dataset builds (serial)
``QUGEO_CHECKPOINT_DIR``    Where example scripts write checkpoints
                            (``checkpoints``)
``QUGEO_ROBUSTNESS_MAX_RETRIES``  Chunk-retry / pool-respawn budget of the
                            parallel dataset generator (``2``)
``QUGEO_ROBUSTNESS_BACKOFF``  Base retry backoff in seconds, doubled per
                            attempt and capped at 10x (``0.1``)
``QUGEO_ROBUSTNESS_VALIDATE``  Shard checksum validation on store open
                            (``on``; ``off`` skips integrity scans)
``QUGEO_ROBUSTNESS_CHAOS``  Fault-injection spec for tests/CI (unset; e.g.
                            ``kill-worker:2:/tmp/marker`` kills the pool
                            worker building chunk 2, once)
==========================  =====================================================

Use :func:`describe` to see every known variable with its current value.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

#: Prefix shared by every environment switch of the stack.
ENV_PREFIX = "QUGEO_"

# Canonical variable names (import these instead of retyping strings).
BACKEND = "QUGEO_BACKEND"
PROPAGATOR = "QUGEO_PROPAGATOR"
SEISMIC_KERNEL = "QUGEO_SEISMIC_KERNEL"
SEISMIC_BOUNDARY = "QUGEO_SEISMIC_BOUNDARY"
ARRAY_MODULE = "QUGEO_ARRAY_MODULE"
DTYPE = "QUGEO_DTYPE"
TELEMETRY = "QUGEO_TELEMETRY"
BENCH_SCALE = "QUGEO_BENCH_SCALE"
CACHE_DIR = "QUGEO_CACHE_DIR"
DATAGEN_WORKERS = "QUGEO_DATAGEN_WORKERS"
CHECKPOINT_DIR = "QUGEO_CHECKPOINT_DIR"
ROBUSTNESS_MAX_RETRIES = "QUGEO_ROBUSTNESS_MAX_RETRIES"
ROBUSTNESS_BACKOFF = "QUGEO_ROBUSTNESS_BACKOFF"
ROBUSTNESS_VALIDATE = "QUGEO_ROBUSTNESS_VALIDATE"
ROBUSTNESS_CHAOS = "QUGEO_ROBUSTNESS_CHAOS"


@dataclass(frozen=True)
class EnvVar:
    """Documentation record of one known environment variable."""

    name: str
    default: Optional[str]
    description: str
    choices: Tuple[str, ...] = ()


#: Every known variable with its documented default, in display order.
KNOWN_VARS: Tuple[EnvVar, ...] = (
    EnvVar(BACKEND, "numpy", "default simulation backend name"),
    EnvVar(PROPAGATOR, "batched", "default acoustic propagator name"),
    EnvVar(SEISMIC_KERNEL, "python",
           "default propagator time-loop kernel",
           ("python", "numba", "cffi")),
    EnvVar(SEISMIC_BOUNDARY, "sponge",
           "default absorbing boundary condition", ("sponge", "pml")),
    EnvVar(ARRAY_MODULE, "numpy",
           "default array module for numeric engines",
           ("numpy", "torch", "cupy")),
    EnvVar(DTYPE, "float64", "default dtype policy",
           ("float64", "float32")),
    EnvVar(TELEMETRY, "off", "telemetry mode", ("off", "summary", "trace")),
    EnvVar(BENCH_SCALE, "small", "benchmark scale",
           ("small", "medium", "full")),
    EnvVar(CACHE_DIR, None, "sharded dataset-store directory"),
    EnvVar(DATAGEN_WORKERS, None, "worker-pool size for cold dataset builds"),
    EnvVar(CHECKPOINT_DIR, "checkpoints",
           "checkpoint directory for example scripts"),
    EnvVar(ROBUSTNESS_MAX_RETRIES, "2",
           "chunk-retry / pool-respawn budget of the parallel generator"),
    EnvVar(ROBUSTNESS_BACKOFF, "0.1",
           "base retry backoff seconds (doubled per attempt, capped at 10x)"),
    EnvVar(ROBUSTNESS_VALIDATE, "on",
           "shard checksum validation on store open", ("on", "off")),
    EnvVar(ROBUSTNESS_CHAOS, None,
           "fault-injection spec for tests/CI "
           "(kill-worker:<chunk>:<marker> | raise-once:<chunk>:<marker>)"),
)


def get_str(name: str, default: Optional[str] = None) -> Optional[str]:
    """The raw value of ``name``; empty / unset values fall back to ``default``."""
    value = os.environ.get(name)
    if value is None or value == "":
        return default
    return value


def get_choice(name: str, default: str, choices) -> str:
    """A lower-cased value restricted to ``choices``.

    Raises :class:`ValueError` naming the variable and the allowed values
    when the environment holds anything else, so typos fail loudly instead
    of silently selecting a default.
    """
    value = get_str(name, default)
    value = str(value).strip().lower()
    if value not in choices:
        raise ValueError(
            f"{name} must be one of {sorted(choices)}, got {value!r}")
    return value


def get_int(name: str, default: Optional[int] = None,
            minimum: Optional[int] = None) -> Optional[int]:
    """An integer value (``None`` when unset and no default is given)."""
    raw = get_str(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def get_float(name: str, default: Optional[float] = None,
              minimum: Optional[float] = None) -> Optional[float]:
    """A float value (``None`` when unset and no default is given)."""
    raw = get_str(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def get_flag(name: str, default: bool = False) -> bool:
    """A boolean switch (``on``/``1``/``true``/``yes`` vs ``off``/``0``/...)."""
    raw = get_str(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in ("on", "1", "true", "yes"):
        return True
    if value in ("off", "0", "false", "no"):
        return False
    raise ValueError(f"{name} must be a boolean switch (on/off), got {raw!r}")


def get_path(name: str, default: Optional[str] = None) -> Optional[str]:
    """A filesystem path value (no existence check), or ``default``."""
    return get_str(name, default)


def set_var(name: str, value: Optional[str]) -> None:
    """Set (or, with ``None``, unset) a ``QUGEO_*`` variable for this process.

    This is the single sanctioned write path to the process environment —
    the invariant linter's QG001 rule flags direct ``os.environ`` writes
    anywhere else, so every export is findable here.  ``name`` must carry
    the ``QUGEO_`` prefix: this module owns the stack's switches, not the
    host environment at large.
    """
    if not name.startswith(ENV_PREFIX):
        raise ValueError(
            f"set_var only manages {ENV_PREFIX}* variables, got {name!r}")
    if value is None:
        os.environ.pop(name, None)
    else:
        os.environ[name] = str(value)


@contextlib.contextmanager
def scoped(name: str, value: Optional[str]) -> Iterator[None]:
    """Temporarily override a ``QUGEO_*`` variable, restoring it on exit.

    Useful in tests and benchmark sweeps that pivot an engine switch for
    one measurement without leaking it to later cases.
    """
    if not name.startswith(ENV_PREFIX):
        raise ValueError(
            f"scoped only manages {ENV_PREFIX}* variables, got {name!r}")
    previous = os.environ.get(name)
    set_var(name, value)
    try:
        yield
    finally:
        set_var(name, previous)


def describe() -> Dict[str, Dict[str, Optional[str]]]:
    """Current value + documented default of every known variable.

    Handy for embedding in benchmark metadata and for debugging "why is it
    using that engine" questions.
    """
    return {
        var.name: {
            "value": get_str(var.name),
            "default": var.default,
            "description": var.description,
        }
        for var in KNOWN_VARS
    }
