"""Plain-text table rendering used by the benchmark harnesses.

The paper reports results as tables and figure series; the benches print the
same rows with :func:`format_table` so outputs can be compared side by side
with the publication.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _stringify(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; each row must have ``len(headers)`` items.
    title:
        Optional title printed above the table.
    """
    header_cells = [str(h) for h in headers]
    body: List[List[str]] = []
    for row in rows:
        cells = [_stringify(cell) for cell in row]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(header_cells)}")
        body.append(cells)

    widths = [len(h) for h in header_cells]
    for cells in body:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(header_cells))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(fmt_row(cells) for cells in body)
    return "\n".join(lines)
