"""A minimal structured run logger.

Training loops record scalar metrics per epoch; the logger keeps them in
memory (for tests and plots) and can optionally echo them to stdout.  It is a
tiny replacement for TensorBoard-style logging that keeps the library free of
external dependencies.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional


class RunLogger:
    """Collects per-step scalar metrics keyed by name."""

    def __init__(self, name: str = "run", verbose: bool = False,
                 print_every: int = 1) -> None:
        self.name = name
        self.verbose = verbose
        self.print_every = max(1, int(print_every))
        self._history: Dict[str, List[float]] = defaultdict(list)
        self._steps: Dict[str, List[int]] = defaultdict(list)

    def log(self, step: int, **metrics: float) -> None:
        """Record ``metrics`` at ``step`` (typically the epoch index)."""
        for key, value in metrics.items():
            self._history[key].append(float(value))
            self._steps[key].append(int(step))
        if self.verbose and step % self.print_every == 0:
            rendered = ", ".join(f"{k}={float(v):.6g}" for k, v in metrics.items())
            print(f"[{self.name}] step {step}: {rendered}")

    def history(self, key: str) -> List[float]:
        """Return every recorded value of metric ``key`` in log order."""
        return list(self._history[key])

    def steps(self, key: str) -> List[int]:
        """Return the step indices at which ``key`` was recorded."""
        return list(self._steps[key])

    def last(self, key: str, default: Optional[float] = None) -> Optional[float]:
        """Return the most recent value of ``key`` or ``default`` if absent."""
        values = self._history.get(key)
        if not values:
            return default
        return values[-1]

    def keys(self) -> List[str]:
        """Return the metric names recorded so far."""
        return sorted(self._history)

    def as_dict(self) -> Dict[str, List[float]]:
        """Return a copy of the full metric history."""
        return {key: list(values) for key, values in self._history.items()}

    # ------------------------------------------------------------------ #
    # serialisation (checkpointed runs resume with their history intact)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        """Copy of the recorded history and step indices."""
        return {"name": self.name,
                "history": self.as_dict(),
                "steps": {key: list(values)
                          for key, values in self._steps.items()}}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Replace the recorded history with one from :meth:`state_dict`."""
        self.name = str(state.get("name", self.name))
        self._history = defaultdict(list)
        for key, values in state["history"].items():
            self._history[key] = [float(value) for value in values]
        self._steps = defaultdict(list)
        for key, values in state["steps"].items():
            self._steps[key] = [int(value) for value in values]
