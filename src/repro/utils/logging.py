"""A minimal structured run logger.

Training loops record scalar metrics per epoch; the logger keeps them in
memory (for tests and plots) and can optionally echo them to a stream —
``sys.stderr`` by default, so verbose runs never corrupt machine-readable
stdout (benchmark ``--json`` output, shell pipelines).  It is a tiny
replacement for TensorBoard-style logging that keeps the library free of
external dependencies.
"""

from __future__ import annotations

import sys
from collections import defaultdict
from typing import Dict, List, Optional, TextIO


class RunLogger:
    """Collects per-step scalar metrics keyed by name.

    Parameters
    ----------
    name:
        Label prefixed to every echoed line.
    verbose:
        Echo every ``print_every``-th logged step to ``stream``.
    print_every:
        Echo cadence, counted in *logged* steps (not raw step indices), so
        a run resumed from epoch 37 prints on the same rhythm as a fresh
        one and sparse eval-only logs still surface.
    stream:
        Destination of echoed lines.  ``None`` (the default) resolves to
        ``sys.stderr`` at print time, so pytest's capture and late
        redirection both work.
    """

    def __init__(self, name: str = "run", verbose: bool = False,
                 print_every: int = 1,
                 stream: Optional[TextIO] = None) -> None:
        self.name = name
        self.verbose = verbose
        self.print_every = max(1, int(print_every))
        self.stream = stream
        self._history: Dict[str, List[float]] = defaultdict(list)
        self._steps: Dict[str, List[int]] = defaultdict(list)
        self._n_logged = 0

    def log(self, step: int, **metrics: float) -> None:
        """Record ``metrics`` at ``step`` (typically the epoch index)."""
        for key, value in metrics.items():
            self._history[key].append(float(value))
            self._steps[key].append(int(step))
        self._n_logged += 1
        if self.verbose and (self._n_logged - 1) % self.print_every == 0:
            rendered = ", ".join(f"{k}={float(v):.6g}" for k, v in metrics.items())
            stream = self.stream if self.stream is not None else sys.stderr
            print(f"[{self.name}] step {step}: {rendered}", file=stream)

    def history(self, key: str) -> List[float]:
        """Return every recorded value of metric ``key`` in log order."""
        return list(self._history[key])

    def steps(self, key: str) -> List[int]:
        """Return the step indices at which ``key`` was recorded."""
        return list(self._steps[key])

    def last(self, key: str, default: Optional[float] = None) -> Optional[float]:
        """Return the most recent value of ``key`` or ``default`` if absent."""
        values = self._history.get(key)
        if not values:
            return default
        return values[-1]

    def keys(self) -> List[str]:
        """Return the metric names recorded so far."""
        return sorted(self._history)

    def as_dict(self) -> Dict[str, List[float]]:
        """Return a copy of the full metric history."""
        return {key: list(values) for key, values in self._history.items()}

    # ------------------------------------------------------------------ #
    # serialisation (checkpointed runs resume with their history intact)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        """Copy of the recorded history and step indices."""
        return {"name": self.name,
                "history": self.as_dict(),
                "steps": {key: list(values)
                          for key, values in self._steps.items()},
                "n_logged": self._n_logged}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Replace the recorded history with one from :meth:`state_dict`."""
        self.name = str(state.get("name", self.name))
        self._history = defaultdict(list)
        for key, values in state["history"].items():
            self._history[key] = [float(value) for value in values]
        self._steps = defaultdict(list)
        for key, values in state["steps"].items():
            self._steps[key] = [int(value) for value in values]
        # Older checkpoints predate the logged-step counter; reconstruct it
        # from the longest metric series so the echo cadence stays aligned.
        self._n_logged = int(state.get(
            "n_logged",
            max((len(values) for values in self._steps.values()), default=0)))
