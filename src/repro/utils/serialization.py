"""Checkpoint (de)serialisation with integrity digests.

Checkpoints are nested dicts of plain Python values and NumPy arrays —
model ``state_dict`` copies, optimiser moments, bit-generator states, metric
histories.  They are written with the standard-library :mod:`pickle` (the
library has no third-party serialisation dependency) through an atomic
rename, so a crash mid-write never leaves a truncated checkpoint behind.

On top of the atomic write, every checkpoint carries a SHA-256 digest of its
pickled payload: :func:`save_checkpoint` wraps the payload bytes in a small
envelope ``{"format": "qugeo-checkpoint", "version": 1, "sha256": ...,
"payload": <bytes>}`` and :func:`load_checkpoint` re-hashes the payload on
read.  A flipped bit, a torn copy, or a truncated file therefore surfaces as
a typed :class:`CheckpointIntegrityError` instead of a garbage model, and
:func:`resolve_checkpoint` can fall back to the ``.bak`` rotation the
training engine keeps next to each checkpoint.  Envelope-free files written
by older releases still load (their pickled dict has no ``"format"`` key),
just without digest verification.

.. warning::
   As with any pickle-based format (``torch.load`` included), deserialising
   a file executes code embedded in it.  Only load checkpoint / pipeline
   files you trust — i.e. files you (or your own CI) wrote.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

PathLike = Union[str, "os.PathLike[str]"]

#: Envelope marker distinguishing digest-carrying checkpoints from legacy
#: raw-pickle files.
CHECKPOINT_FORMAT = "qugeo-checkpoint"

#: Version of the digest envelope itself (not of the payload schema — the
#: training engine versions its payload separately).
CHECKPOINT_ENVELOPE_VERSION = 1

#: Suffix of the last-good backup rotated by the training engine's
#: checkpoint callback before each overwrite.
BACKUP_SUFFIX = ".bak"


class CheckpointIntegrityError(ValueError):
    """A checkpoint file is unreadable, truncated, or fails its digest."""


def save_checkpoint(path: PathLike, payload: Dict[str, object]) -> None:
    """Atomically write ``payload`` to ``path``, creating parent directories.

    The payload is pickled to bytes, digested with SHA-256, and stored inside
    the digest envelope described in the module docstring.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload_bytes = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    envelope = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_ENVELOPE_VERSION,
        "sha256": hashlib.sha256(payload_bytes).hexdigest(),
        "payload": payload_bytes,
    }
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                    prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, str(path))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # qugeo-lint: disable=QG005 -- best-effort temp cleanup; the original error re-raises below
            pass
        raise


def load_checkpoint(path: PathLike) -> Dict[str, object]:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Verifies the SHA-256 digest of envelope-format files; raises
    :class:`CheckpointIntegrityError` on truncated pickles, digest
    mismatches, or files that do not hold a checkpoint dict.  Legacy files
    (raw pickled dicts, no envelope) load without verification.

    Only call on trusted files: unpickling executes embedded code.
    """
    try:
        with open(str(path), "rb") as handle:
            outer = pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError,
            MemoryError, ValueError) as exc:
        raise CheckpointIntegrityError(
            f"{path} is corrupt or truncated: {exc}") from exc
    if isinstance(outer, dict) and outer.get("format") == CHECKPOINT_FORMAT:
        payload_bytes = outer.get("payload")
        if not isinstance(payload_bytes, (bytes, bytearray)):
            raise CheckpointIntegrityError(f"{path} has no payload bytes")
        digest = hashlib.sha256(payload_bytes).hexdigest()
        if digest != outer.get("sha256"):
            raise CheckpointIntegrityError(
                f"{path} failed its integrity digest "
                f"(stored {outer.get('sha256')!r}, computed {digest!r})")
        try:
            payload = pickle.loads(bytes(payload_bytes))
        except (pickle.UnpicklingError, EOFError, AttributeError,
                MemoryError, ValueError) as exc:
            raise CheckpointIntegrityError(
                f"{path} payload failed to unpickle: {exc}") from exc
    else:
        payload = outer
    if not isinstance(payload, dict):
        raise CheckpointIntegrityError(
            f"{path} does not hold a checkpoint dict")
    return payload


def resolve_checkpoint(path: PathLike
                       ) -> Tuple[Optional[Dict[str, object]],
                                  Optional[str], List[str]]:
    """Load ``path``, falling back to its ``.bak`` rotation on corruption.

    Tries ``path`` then ``path + ".bak"``; returns ``(payload, loaded_path,
    problems)`` where ``problems`` lists a human-readable line per candidate
    that was missing or failed integrity.  ``payload`` is ``None`` when no
    candidate loads — the caller decides whether that means "start fresh"
    (the training engine's choice) or an error.
    """
    problems: List[str] = []
    for candidate in (str(path), str(path) + BACKUP_SUFFIX):
        if not os.path.exists(candidate):
            problems.append(f"{candidate}: missing")
            continue
        try:
            return load_checkpoint(candidate), candidate, problems
        except CheckpointIntegrityError as exc:
            problems.append(str(exc))
    return None, None, problems
