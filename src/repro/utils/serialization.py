"""Checkpoint (de)serialisation.

Checkpoints are nested dicts of plain Python values and NumPy arrays —
model ``state_dict`` copies, optimiser moments, bit-generator states, metric
histories.  They are written with the standard-library :mod:`pickle` (the
library has no third-party serialisation dependency) through an atomic
rename, so a crash mid-write never leaves a truncated checkpoint behind.

.. warning::
   As with any pickle-based format (``torch.load`` included), deserialising
   a file executes code embedded in it.  Only load checkpoint / pipeline
   files you trust — i.e. files you (or your own CI) wrote.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, Union

PathLike = Union[str, "os.PathLike[str]"]


def save_checkpoint(path: PathLike, payload: Dict[str, object]) -> None:
    """Atomically write ``payload`` to ``path``, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                    prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, str(path))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_checkpoint(path: PathLike) -> Dict[str, object]:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Only call on trusted files: unpickling executes embedded code.
    """
    with open(str(path), "rb") as handle:
        payload = pickle.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path} does not hold a checkpoint dict")
    return payload
