"""String-keyed registry of lint rules.

Mirrors :mod:`repro.backends.registry`: rules register an instance under
their code (``QG001``) and callers resolve them by code *or* short name
(``env-access``), case-insensitively.  ``--select`` / ``--ignore`` on the
CLI go through :func:`resolve_rules`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.base import Rule

_RULES: Dict[str, Rule] = {}


class RuleError(RuntimeError):
    """Base class for rule registry failures."""


class UnknownRuleError(RuleError, KeyError):
    """Raised when resolving a code/name no rule was registered under."""

    def __init__(self, name: str) -> None:
        self.name = name
        available = ", ".join(sorted(_RULES)) or "<none>"
        super().__init__(
            f"unknown lint rule {name!r}; registered rules: {available}")

    def __str__(self) -> str:  # KeyError would quote the repr of args[0]
        return self.args[0]


class DuplicateRuleError(RuleError, ValueError):
    """Raised when registering a code that is already taken."""

    def __init__(self, code: str) -> None:
        self.code = code
        super().__init__(
            f"lint rule {code!r} is already registered; pass replace=True "
            f"to override it")


def register_rule(rule: Rule, *, replace: bool = False) -> None:
    """Register ``rule`` under its ``code``."""
    if not isinstance(rule, Rule):
        raise TypeError(f"expected a Rule instance, got {type(rule).__name__}")
    if not rule.code or not rule.name:
        raise ValueError("rules must declare a non-empty code and name")
    if rule.code in _RULES and not replace:
        raise DuplicateRuleError(rule.code)
    _RULES[rule.code] = rule


def unregister_rule(code: str) -> None:
    """Remove ``code`` from the registry (mainly for tests)."""
    if code not in _RULES:
        raise UnknownRuleError(code)
    del _RULES[code]


def available_rules() -> List[str]:
    """Sorted codes of every registered rule."""
    return sorted(_RULES)


def all_rules() -> List[Rule]:
    """Every registered rule, in code order."""
    return [_RULES[code] for code in sorted(_RULES)]


def get_rule(spec: str) -> Rule:
    """Resolve a code (``QG001``) or short name (``env-access``) to a rule."""
    if not isinstance(spec, str) or not spec:
        raise TypeError("rule spec must be a non-empty string")
    code = spec.strip().upper()
    if code in _RULES:
        return _RULES[code]
    lowered = spec.strip().lower()
    for rule in _RULES.values():
        if rule.name.lower() == lowered:
            return rule
    raise UnknownRuleError(spec)


def resolve_rules(select: Optional[Iterable[str]] = None,
                  ignore: Optional[Iterable[str]] = None) -> List[Rule]:
    """The rule set for one run: everything (or ``select``) minus ``ignore``.

    Unknown codes in either list raise :class:`UnknownRuleError` so typos
    fail loudly instead of silently linting nothing.
    """
    chosen: Sequence[Rule]
    if select:
        chosen = [get_rule(spec) for spec in select]
    else:
        chosen = all_rules()
    ignored = {get_rule(spec).code for spec in ignore} if ignore else set()
    return [rule for rule in chosen if rule.code not in ignored]
