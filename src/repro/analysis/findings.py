"""The :class:`Finding` record emitted by every lint rule.

A finding pins one invariant violation to a file position.  Findings are
plain data — the CLI decides how to render them (human ``path:line:col``
lines, a summary table, or JSON), and the test suite compares them
structurally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

#: Engine-level pseudo-rule for files the linter cannot parse at all.
PARSE_ERROR_CODE = "QG000"


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation at a source position.

    Attributes
    ----------
    path:
        Project-relative POSIX path of the offending file.
    line / col:
        1-based line and 0-based column (AST convention) of the violation.
    rule:
        The rule code (``QG001`` ... ``QG007``, or :data:`PARSE_ERROR_CODE`
        for unparseable files).
    message:
        Human-readable description including the remediation.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as a compiler-style ``path:line:col: CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready payload (schema asserted in ``tests/test_analysis_lint.py``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
