"""QG001 — all ``QUGEO_*`` environment access goes through ``repro.utils.env``.

Contract guarded: :mod:`repro.utils.env` is the single place that knows the
variable names, defaults and coercions (``KNOWN_VARS``), so documented
behaviour cannot drift between call sites.  Direct ``os.environ`` /
``os.getenv`` access anywhere else bypasses that waist — reads dodge the
choice validation and writes dodge :func:`repro.utils.env.set_var`'s
prefix check.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Rule, SourceFile, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.registry import register_rule

#: The sanctioned module — the only file allowed to touch ``os.environ``.
ALLOWED_FILES = frozenset({"src/repro/utils/env.py"})

#: ``os`` attributes that read or mutate the process environment.
_ENV_ATTRS = frozenset({"environ", "environb", "getenv", "putenv", "unsetenv"})


class EnvAccessRule(Rule):
    code = "QG001"
    name = "env-access"
    description = ("direct os.environ/os.getenv access outside "
                   "repro/utils/env.py (the QUGEO_* parsing waist)")

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        if sf.tree is None or sf.rel_path in ALLOWED_FILES:
            return
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Attribute) and node.attr in _ENV_ATTRS:
                base = dotted_name(node.value)
                if base == "os":
                    yield sf.finding(
                        node, self.code,
                        f"direct os.{node.attr} access; route QUGEO_* "
                        f"reads/writes through repro.utils.env "
                        f"(get_str/get_choice/set_var/scoped)")
            elif isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if alias.name in _ENV_ATTRS:
                        yield sf.finding(
                            node, self.code,
                            f"importing os.{alias.name}; route QUGEO_* "
                            f"reads/writes through repro.utils.env instead")


register_rule(EnvAccessRule())
