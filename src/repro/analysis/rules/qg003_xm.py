"""QG003 — xm-seamed modules route arithmetic kernels through ``ArrayOps``.

Contract guarded: :class:`repro.xm.ArrayOps` is the narrow waist between the
numeric engines and the array library (NumPy / CuPy / PyTorch).  Inside the
seamed modules, a raw ``np.einsum`` / ``np.matmul`` pins the computation to
host NumPy and silently breaks the GPU path for every engine built on the
seam.

The rule checks the *arithmetic kernels* ``ArrayOps`` dispatches (einsum,
matmul, multiply, dot, tensordot).  Deliberate host-NumPy branches — the
einsum backend's ``einsum_path``-optimised fast path, the per-gate
reference engine, the BLAS-matmul Laplacian — carry per-line suppressions
with rationale; new code should reach for ``self.xm`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Rule, SourceFile, call_name
from repro.analysis.findings import Finding
from repro.analysis.registry import register_rule

#: Modules written against the ArrayOps seam (see ROADMAP PR 7).
SEAMED_PREFIXES = (
    "src/repro/backends/",
    "src/repro/quantum/",
    "src/repro/nn/",
)
SEAMED_FILES = frozenset({"src/repro/seismic/acoustic2d.py"})

#: The ArrayOps arithmetic kernels a raw np. call would bypass.
_WAIST_OPS = frozenset({"einsum", "matmul", "multiply", "dot", "tensordot"})


def _in_scope(rel_path: str) -> bool:
    return rel_path in SEAMED_FILES or any(
        rel_path.startswith(prefix) for prefix in SEAMED_PREFIXES)


class ArrayWaistRule(Rule):
    code = "QG003"
    name = "array-waist"
    description = ("raw np.einsum/np.matmul/... in xm-seamed modules "
                   "(backends/, quantum/, nn/, seismic/acoustic2d.py) that "
                   "bypass the ArrayOps waist")

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        if sf.tree is None or not _in_scope(sf.rel_path):
            return
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            if callee is None:
                continue
            parts = callee.split(".")
            if len(parts) == 2 and parts[0] in ("np", "numpy") \
                    and parts[1] in _WAIST_OPS:
                yield sf.finding(
                    node, self.code,
                    f"raw np.{parts[1]} in an xm-seamed module bypasses the "
                    f"ArrayOps waist; use self.xm.{parts[1]} (or "
                    f"get_array_module()) so the op follows the configured "
                    f"array module, or suppress with a rationale if this "
                    f"branch is host-NumPy by design")


register_rule(ArrayWaistRule())
