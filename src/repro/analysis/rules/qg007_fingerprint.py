"""QG007 — fingerprinted config classes cannot change without a version bump.

Contract guarded: :func:`repro.data.store.dataset_fingerprint` and
:func:`repro.robustness.perturbations.perturbation_fingerprint` digest
config dataclasses into cache keys.  Adding, removing or renaming a field
changes what two "equal" configs mean — without a
``DATA_FORMAT_VERSION`` / ``PERTURBATION_VERSION`` bump, previously cached
shards/views are served for configs they no longer describe.

The rule compares each watched class's current field list (parsed from the
AST, no imports executed) against the pinned baseline in
:mod:`repro.analysis.baselines`, and the version constant against the
pinned version.  Both halves must move together:

* fields changed, version unchanged -> the dangerous case, flagged at the
  class definition;
* version changed (with or without field changes) -> flagged at the
  constant until the baseline is refreshed, so the pin never rots.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.analysis.base import Project, Rule, SourceFile
from repro.analysis.baselines import FINGERPRINT_BASELINES, FingerprintBaseline
from repro.analysis.findings import Finding
from repro.analysis.registry import register_rule

BASELINE_MODULE = "src/repro/analysis/baselines.py"


def dataclass_fields(sf: SourceFile, class_name: str
                     ) -> Optional[Tuple[Tuple[str, ...], int, int]]:
    """``(field_names, line, col)`` of ``class_name``, or ``None`` if absent.

    Fields are the class body's annotated assignments, excluding
    ``ClassVar`` annotations — the same set :func:`dataclasses.fields`
    reports, without importing the module.
    """
    if sf.tree is None:
        return None
    for node in ast.walk(sf.tree):
        if not (isinstance(node, ast.ClassDef) and node.name == class_name):
            continue
        names: List[str] = []
        for stmt in node.body:
            if not (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                continue
            annotation = ast.dump(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            names.append(stmt.target.id)
        return tuple(names), node.lineno, node.col_offset
    return None


def constant_value(sf: SourceFile, const_name: str
                   ) -> Optional[Tuple[object, int, int]]:
    """``(value, line, col)`` of a module-level constant, or ``None``."""
    if sf.tree is None:
        return None
    for stmt in sf.tree.body:
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and stmt.targets[0].id == const_name:
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.target.id == const_name:
            value = stmt.value
        if isinstance(value, ast.Constant):
            return value.value, stmt.lineno, stmt.col_offset
    return None


class FingerprintHygieneRule(Rule):
    code = "QG007"
    name = "fingerprint-hygiene"
    description = ("fingerprinted config dataclasses changed without a "
                   "DATA_FORMAT_VERSION/PERTURBATION_VERSION bump recorded "
                   "in repro/analysis/baselines.py")

    def __init__(self, baselines: Optional[Sequence[FingerprintBaseline]]
                 = None) -> None:
        self.baselines: Tuple[FingerprintBaseline, ...] = tuple(
            FINGERPRINT_BASELINES if baselines is None else baselines)

    def check_project(self, project: Project) -> Iterator[Finding]:
        for baseline in self.baselines:
            config_sf = project.load_rel(baseline.config_module)
            if config_sf is None:
                yield Finding(
                    path=BASELINE_MODULE, line=1, col=0, rule=self.code,
                    message=(f"baseline for {baseline.config_class} points "
                             f"at missing module {baseline.config_module}; "
                             f"refresh the pinned baseline"))
                continue
            located = dataclass_fields(config_sf, baseline.config_class)
            if located is None:
                yield Finding(
                    path=baseline.config_module, line=1, col=0,
                    rule=self.code,
                    message=(f"fingerprinted class {baseline.config_class} "
                             f"not found; refresh the pinned baseline in "
                             f"{BASELINE_MODULE}"))
                continue
            fields, cls_line, cls_col = located
            version_sf = project.load_rel(baseline.version_module)
            version_info = (constant_value(version_sf, baseline.version_const)
                            if version_sf is not None else None)
            if version_info is None:
                yield Finding(
                    path=baseline.version_module, line=1, col=0,
                    rule=self.code,
                    message=(f"version constant {baseline.version_const} "
                             f"not found (expected to guard "
                             f"{baseline.config_class})"))
                continue
            version, ver_line, ver_col = version_info
            fields_changed = fields != baseline.pinned_fields
            version_changed = version != baseline.pinned_version
            if fields_changed and not version_changed:
                added = sorted(set(fields) - set(baseline.pinned_fields))
                removed = sorted(set(baseline.pinned_fields) - set(fields))
                detail = "; ".join(part for part in (
                    f"added {added}" if added else "",
                    f"removed {removed}" if removed else "",
                    "" if added or removed else "reordered fields",
                ) if part)
                yield Finding(
                    path=baseline.config_module, line=cls_line, col=cls_col,
                    rule=self.code,
                    message=(f"{baseline.config_class} fields changed "
                             f"({detail}) without a {baseline.version_const} "
                             f"bump — cached fingerprints would collide; "
                             f"bump the version and refresh the pinned "
                             f"baseline in {BASELINE_MODULE}"))
            elif version_changed:
                yield Finding(
                    path=baseline.version_module, line=ver_line, col=ver_col,
                    rule=self.code,
                    message=(f"{baseline.version_const} is now {version!r} "
                             f"but the {baseline.config_class} baseline pins "
                             f"{baseline.pinned_version!r}; refresh the "
                             f"pinned fields/version in {BASELINE_MODULE}"))


register_rule(FingerprintHygieneRule())
