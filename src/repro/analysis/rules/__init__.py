"""Built-in invariant rules (QG001–QG007).

Importing this package registers every built-in rule with
:mod:`repro.analysis.registry` — the same eager-registration idiom the
backend/propagator/kernel registries use.  Each rule module's docstring
names the project contract it guards; the README's rule table links back
to them.
"""

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    qg001_env,
    qg002_rng,
    qg003_xm,
    qg004_clock,
    qg005_except,
    qg006_registry,
    qg007_fingerprint,
)

__all__ = [
    "qg001_env",
    "qg002_rng",
    "qg003_xm",
    "qg004_clock",
    "qg005_except",
    "qg006_registry",
    "qg007_fingerprint",
]
