"""QG002 — all randomness flows from seeded, ``SeedSequence``-derived
generators.

Contract guarded: the bit-identical parallel-generation and perturbation
contracts (see ``repro/utils/rng.py``) require every stochastic component to
draw from a :class:`numpy.random.Generator` built by ``ensure_rng`` /
``SeedSequence`` spawning.  Global-state calls (``np.random.normal(...)``)
and unseeded constructors (``default_rng()`` with no argument,
``RandomState()``) produce streams no fingerprint can address, so a single
call site silently breaks reproducibility.

``repro/utils/rng.py`` itself is exempt — its ``ensure_rng(None)`` branch is
the one sanctioned fresh-entropy path.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.base import Rule, SourceFile, call_name
from repro.analysis.findings import Finding
from repro.analysis.registry import register_rule

#: The sanctioned RNG waist (fresh entropy lives here, nowhere else).
ALLOWED_FILES = frozenset({"src/repro/utils/rng.py"})

#: ``np.random`` attributes that are fine to touch: seeded constructors,
#: seed containers and bit generators (not stream-drawing functions).
_SAFE_RANDOM_ATTRS = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "RandomState", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})

#: Constructors that must receive a seed/SeedSequence argument.
_NEED_SEED = frozenset({"default_rng", "RandomState"})


def _is_unseeded(node: ast.Call) -> bool:
    return not node.args and not node.keywords


class SeededRngRule(Rule):
    code = "QG002"
    name = "seeded-rng"
    description = ("unseeded RNG in src/: global np.random.* calls, or "
                   "default_rng()/RandomState() without a seed")

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        if sf.tree is None or not sf.rel_path.startswith("src/"):
            return
        if sf.rel_path in ALLOWED_FILES:
            return
        # Names imported directly from numpy.random, e.g.
        # ``from numpy.random import default_rng``.
        from_random: Set[str] = set()
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                from_random.update(alias.asname or alias.name
                                   for alias in node.names)
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            if callee is None:
                continue
            parts = callee.split(".")
            if len(parts) >= 3 and parts[-3] in ("np", "numpy") \
                    and parts[-2] == "random":
                attr = parts[-1]
                if attr in _NEED_SEED and _is_unseeded(node):
                    yield sf.finding(
                        node, self.code,
                        f"np.random.{attr}() without a seed; thread a "
                        f"SeedSequence / ensure_rng(rng) argument so the "
                        f"stream is reproducible")
                elif attr not in _SAFE_RANDOM_ATTRS:
                    yield sf.finding(
                        node, self.code,
                        f"global-state np.random.{attr}(...) call; draw from "
                        f"a Generator built via repro.utils.rng.ensure_rng "
                        f"instead")
            elif len(parts) == 1 and parts[0] in from_random:
                attr = parts[0]
                if attr in _NEED_SEED and _is_unseeded(node):
                    yield sf.finding(
                        node, self.code,
                        f"{attr}() without a seed; thread a SeedSequence / "
                        f"ensure_rng(rng) argument so the stream is "
                        f"reproducible")
                elif attr not in _SAFE_RANDOM_ATTRS:
                    yield sf.finding(
                        node, self.code,
                        f"global-state numpy.random.{attr}(...) call; draw "
                        f"from a Generator built via "
                        f"repro.utils.rng.ensure_rng instead")


register_rule(SeededRngRule())
