"""QG005 — fault-tolerance paths never swallow exceptions silently.

Contract guarded: the robustness subsystem (PR 8) is built on *observable*
degradation — quarantined shards, retried chunks, checkpoint fallbacks all
log or count what they dropped.  A bare ``except:`` (which also catches
``KeyboardInterrupt``/``SystemExit``) or an ``except ...: pass`` in those
paths hides exactly the faults the subsystem exists to surface.

Scope: ``robustness/``, the sharded store, checkpoint serialization and the
training engine's checkpoint/resume code.  Benign best-effort cleanups
(e.g. unlinking a temp file) stay allowed via a suppression comment that
states the rationale.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Rule, SourceFile
from repro.analysis.findings import Finding
from repro.analysis.registry import register_rule

#: Fault-tolerance surfaces (prefix or exact project-relative path).
SCOPE_PREFIXES = ("src/repro/robustness/",)
SCOPE_FILES = frozenset({
    "src/repro/data/store.py",
    "src/repro/utils/serialization.py",
    "src/repro/core/training.py",
})


def _in_scope(rel_path: str) -> bool:
    return rel_path in SCOPE_FILES or any(
        rel_path.startswith(prefix) for prefix in SCOPE_PREFIXES)


def _swallows(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body does nothing (``pass`` / ``...``)."""
    if len(handler.body) != 1:
        return False
    stmt = handler.body[0]
    if isinstance(stmt, ast.Pass):
        return True
    return (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis)


class SwallowedExceptionRule(Rule):
    code = "QG005"
    name = "swallowed-exception"
    description = ("bare except: or except-pass in fault-tolerance paths "
                   "(robustness/, data/store.py, checkpoint code)")

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        if sf.tree is None or not _in_scope(sf.rel_path):
            return
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield sf.finding(
                    node, self.code,
                    "bare except: in a fault-tolerance path also catches "
                    "KeyboardInterrupt/SystemExit; name the exception types "
                    "and record the fault (log / telemetry counter)")
            elif _swallows(node):
                yield sf.finding(
                    node, self.code,
                    "exception swallowed with a pass-only handler in a "
                    "fault-tolerance path; record the fault (log / telemetry "
                    "counter) or suppress with a rationale if the failure "
                    "is provably benign")


register_rule(SwallowedExceptionRule())
