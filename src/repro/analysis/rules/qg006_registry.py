"""QG006 — every registered engine name has a parity-test row.

Contract guarded: the three engine registries (simulation backends,
acoustic propagators, propagator kernels) each pair with a parity harness
in ``tests/`` — ``tests/test_backends.py`` runs every backend against the
bit-exact reference, ``tests/test_seismic_batched.py`` parametrizes the
kernel x dtype matrix, etc.  A new engine registered without a parity row
can silently diverge from the reference; this rule makes that a lint
failure instead of a review hope.

How coverage is established (walking the test AST, no imports executed):

* a string literal naming the engine inside a ``pytest.mark.parametrize``
  value list — directly, or via a module-level constant such as
  ``ARRAY_MODULE_ENGINES``;
* a ``parametrize`` value list built from the registry's own enumerator
  (``available_kernels()`` et al.) — dynamic rows cover *every* name of
  that registry, including future ones;
* a string literal passed to the registry's resolver family in a test
  (``get_backend("einsum")``, ``kernel_available("numba")``, ...) or to a
  ``backend=`` / ``propagator=`` / ``kernel=`` keyword.

Declared-but-unshipped registrations (the ``cffi`` kernel) are exempted by
a ``# qugeo-lint: placeholder`` comment on the registration line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Set

from repro.analysis.base import Project, Rule, SourceFile, call_name
from repro.analysis.findings import Finding
from repro.analysis.registry import register_rule

#: Registration call -> registry kind.
REGISTER_CALLS = {
    "register_backend": "backend",
    "register_propagator": "propagator",
    "register_kernel": "kernel",
}

#: Registry enumerators whose appearance in a parametrize value list means
#: the whole registry is covered dynamically.
AVAILABLE_CALLS = {
    "available_backends": "backend",
    "available_propagators": "propagator",
    "available_kernels": "kernel",
}

#: Test-side calls whose literal string argument exercises a name.
EXERCISE_CALLS = {
    "backend": {"get_backend", "set_default_backend", "unregister_backend",
                "array_module_available", "get_array_module"},
    "propagator": {"get_propagator", "set_default_propagator",
                   "unregister_propagator"},
    "kernel": {"get_kernel", "kernel_available", "resolve_kernel",
               "unregister_kernel", "default_kernel_name"},
}

#: Keyword arguments whose string value selects an engine.
KEYWORD_COVERAGE = {"backend": "backend", "propagator": "propagator",
                    "kernel": "kernel"}


class Registration(NamedTuple):
    kind: str
    engine: str
    rel_path: str
    line: int
    col: int


def _last_part(name: Optional[str]) -> Optional[str]:
    return name.split(".")[-1] if name else None


def collect_registrations(sf: SourceFile) -> Iterator[Registration]:
    """Engine registrations in one source file (placeholders excluded)."""
    if sf.tree is None:
        return
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        kind = REGISTER_CALLS.get(_last_part(call_name(node)) or "")
        if kind is None or not node.args:
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            continue
        if sf.has_placeholder_marker(node.lineno):
            continue
        yield Registration(kind, first.value, sf.rel_path, node.lineno,
                           node.col_offset)


def _module_string_constants(tree: ast.Module) -> Dict[str, List[str]]:
    """Module-level ``NAME = ("a", "b")`` string-sequence assignments."""
    constants: Dict[str, List[str]] = {}
    for stmt in tree.body:
        targets: Sequence[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            continue
        items = [el.value for el in value.elts
                 if isinstance(el, ast.Constant) and isinstance(el.value, str)]
        if len(items) != len(value.elts):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                constants[target.id] = items
    return constants


def collect_test_coverage(sf: SourceFile):
    """``(covered, dynamic)`` sets harvested from one test file."""
    covered: Dict[str, Set[str]] = {kind: set() for kind in
                                    set(REGISTER_CALLS.values())}
    dynamic: Set[str] = set()
    if sf.tree is None:
        return covered, dynamic
    constants = _module_string_constants(sf.tree)
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        callee_last = _last_part(call_name(node))
        # pytest.mark.parametrize(argnames, values, ...)
        if callee_last == "parametrize":
            for arg in node.args[1:]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Constant) \
                            and isinstance(sub.value, str):
                        for kind in covered:
                            covered[kind].add(sub.value)
                    elif isinstance(sub, ast.Name) and sub.id in constants:
                        for kind in covered:
                            covered[kind].update(constants[sub.id])
                    elif isinstance(sub, ast.Call):
                        kind = AVAILABLE_CALLS.get(
                            _last_part(call_name(sub)) or "")
                        if kind is not None:
                            dynamic.add(kind)
            continue
        # resolver-family calls with a literal name
        for kind, names in EXERCISE_CALLS.items():
            if callee_last in names and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) \
                        and isinstance(first.value, str):
                    covered[kind].add(first.value)
        # engine-selecting keywords: backend="einsum"
        for keyword in node.keywords:
            kind = KEYWORD_COVERAGE.get(keyword.arg or "")
            if kind is not None and isinstance(keyword.value, ast.Constant) \
                    and isinstance(keyword.value.value, str):
                covered[kind].add(keyword.value.value)
    return covered, dynamic


class RegistryParityRule(Rule):
    code = "QG006"
    name = "registry-parity"
    description = ("registered backend/kernel/propagator names without a "
                   "parity-test row in tests/ (placeholder registrations "
                   "exempt via '# qugeo-lint: placeholder')")

    def check_project(self, project: Project) -> Iterator[Finding]:
        registrations: List[Registration] = []
        for path in project.source_files():
            registrations.extend(collect_registrations(project.load(path)))
        if not registrations:
            return
        covered: Dict[str, Set[str]] = {kind: set() for kind in
                                        set(REGISTER_CALLS.values())}
        dynamic: Set[str] = set()
        for path in project.test_files():
            file_covered, file_dynamic = collect_test_coverage(
                project.load(path))
            for kind, names in file_covered.items():
                covered[kind].update(names)
            dynamic.update(file_dynamic)
        for reg in sorted(registrations):
            if reg.kind in dynamic or reg.engine in covered[reg.kind]:
                continue
            yield Finding(
                path=reg.rel_path, line=reg.line, col=reg.col,
                rule=self.code,
                message=(f"registered {reg.kind} {reg.engine!r} has no "
                         f"parity-test row in tests/ (add a parametrize row "
                         f"or skip-when-unavailable test, or mark the "
                         f"registration '# qugeo-lint: placeholder' if the "
                         f"engine is declared but not shipped)"))


register_rule(RegistryParityRule())
