"""QG004 — telemetry-instrumented code measures time on monotonic clocks.

Contract guarded: every span/timer in :mod:`repro.telemetry` is built on
:func:`time.perf_counter` (see its module docstring), and the trainer's
epoch timing feeds checkpointed history.  ``time.time()`` is subject to NTP
steps and DST jumps, so a single wall-clock duration poisons profiles and
resume-consistency checks.  Naive ``datetime.now()`` / ``utcnow()`` have
the same failure mode plus timezone ambiguity.

Timestamps (not durations) are still fine when timezone-aware:
``datetime.now(timezone.utc)`` — the form benchmark metadata uses — passes
because the call has an argument.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Rule, SourceFile, call_name
from repro.analysis.findings import Finding
from repro.analysis.registry import register_rule

#: Calls that read the wall clock (flagged unconditionally).
_WALL_CLOCK_CALLS = frozenset({"time.time", "time.clock"})

#: ``datetime``/``date`` constructors flagged only when naive (no tz arg).
_NAIVE_WHEN_UNARGUED = frozenset({"now", "today"})


class MonotonicClockRule(Rule):
    code = "QG004"
    name = "monotonic-clock"
    description = ("time.time()/naive datetime.now() in src/ "
                   "(telemetry and timing contracts are monotonic-only)")

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        if sf.tree is None or not sf.rel_path.startswith("src/"):
            return
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        yield sf.finding(
                            node, self.code,
                            "importing time.time; durations in "
                            "telemetry-instrumented code must use "
                            "time.perf_counter()/time.monotonic()")
                continue
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            if callee is None:
                continue
            if callee in _WALL_CLOCK_CALLS:
                yield sf.finding(
                    node, self.code,
                    f"{callee}() is wall-clock; use time.perf_counter() / "
                    f"time.monotonic() for durations")
                continue
            parts = callee.split(".")
            if parts[-1] == "utcnow" and "datetime" in parts:
                yield sf.finding(
                    node, self.code,
                    "datetime.utcnow() returns a naive timestamp; use "
                    "datetime.now(timezone.utc) for timestamps or a "
                    "monotonic clock for durations")
            elif (parts[-1] in _NAIVE_WHEN_UNARGUED and len(parts) >= 2
                    and parts[-2] in ("datetime", "date")
                    and not node.args and not node.keywords):
                yield sf.finding(
                    node, self.code,
                    f"naive {parts[-2]}.{parts[-1]}(); pass an explicit "
                    f"timezone (datetime.now(timezone.utc)) for timestamps "
                    f"or use a monotonic clock for durations")


register_rule(MonotonicClockRule())
