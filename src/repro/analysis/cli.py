"""Command line front end: ``qugeo-lint`` / ``python -m repro.analysis``.

Exit codes::

    0  no findings
    1  findings reported
    2  usage error (unknown rule, bad path, ...)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.engine import DEFAULT_PATHS, LintResult, lint_paths
from repro.analysis.registry import UnknownRuleError, all_rules
from repro.utils.tables import format_table


def _split_codes(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    if not values:
        return None
    codes: List[str] = []
    for value in values:
        codes.extend(part.strip() for part in value.split(",") if part.strip())
    return codes or None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qugeo-lint",
        description=("AST-based project-invariant linter for the QuGeo "
                     "reproduction (rules QG001-QG007)."))
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help=(f"files or directories to lint (default: "
              f"{' '.join(DEFAULT_PATHS)} under the project root)"))
    parser.add_argument(
        "--select", action="append", metavar="RULES",
        help="comma-separated rule codes/names to run (default: all)")
    parser.add_argument(
        "--ignore", action="append", metavar="RULES",
        help="comma-separated rule codes/names to skip")
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)")
    parser.add_argument(
        "--project-root", metavar="DIR",
        help=("project root for path-scoped rules "
              "(default: auto-detected from pyproject.toml/.git)"))
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit")
    return parser


def _print_rules() -> None:
    rows = [(rule.code, rule.name, rule.description) for rule in all_rules()]
    print(format_table(("code", "name", "checks for"), rows,
                       title="qugeo-lint rules"))


def _print_human(result: LintResult) -> None:
    for finding in result.findings:
        print(finding.format())
    counts = result.counts_by_rule
    if counts:
        print()
        rows = [(rule, counts[rule]) for rule in sorted(counts)]
        print(format_table(("rule", "findings"), rows))
    print(f"\nchecked {len(result.files)} files, "
          f"{len(result.findings)} finding(s)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    try:
        result = lint_paths(
            args.paths or None,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
            project_root=args.project_root,
        )
    except UnknownRuleError as exc:
        print(f"qugeo-lint: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"qugeo-lint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        _print_human(result)
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
