"""Shared infrastructure for lint rules: parsed files, the project view,
suppression comments, and the :class:`Rule` interface.

Suppression contract
--------------------

A finding is suppressed by a ``qugeo-lint`` comment on the *same line*::

    risky_call()  # qugeo-lint: disable=QG003 -- host-numpy path by design

Several codes may be listed (``disable=QG001,QG005``) and ``disable=all``
silences every rule on that line.  Anything after the code list is free-form
rationale — suppressions without a *why* do not survive review, so the
syntax encourages one.  :class:`~repro.analysis.rules.qg006_registry`
additionally understands a ``# qugeo-lint: placeholder`` marker on registry
registration lines (a declared-but-not-yet-shipped engine).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Set

from repro.analysis.findings import Finding

#: Matches the machine-readable head of a suppression comment.
_DISABLE_RE = re.compile(r"qugeo-lint:\s*disable=([A-Za-z0-9_,\- ]+)")

#: Marks a registry registration as a declared placeholder (QG006).
_PLACEHOLDER_RE = re.compile(r"qugeo-lint:\s*placeholder\b")

#: A valid rule code inside a ``disable=`` list.
_CODE_RE = re.compile(r"^[A-Z]{2}\d{3}$")

#: Files/directories never worth parsing.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", ".qugeo-cache"}


def scan_comments(source: str) -> Dict[int, str]:
    """Map line number -> comment text for every ``#`` comment in ``source``.

    Uses :mod:`tokenize` so comment-looking text inside string literals is
    never misread as a directive.  Returns what it saw so far when the file
    cannot be tokenized (the AST parse will report the real error).
    """
    comments: Dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def parse_suppressions(comments: Dict[int, str]) -> Dict[int, Set[str]]:
    """Extract ``disable=`` directives: line number -> suppressed codes.

    The special set ``{"ALL"}`` suppresses every rule on that line.
    """
    suppressions: Dict[int, Set[str]] = {}
    for line, comment in comments.items():
        match = _DISABLE_RE.search(comment)
        if not match:
            continue
        codes: Set[str] = set()
        for part in match.group(1).split(","):
            token = part.strip().split()[0] if part.strip() else ""
            if token.lower() == "all":
                codes.add("ALL")
            elif _CODE_RE.match(token.upper()):
                codes.add(token.upper())
        if codes:
            suppressions[line] = codes
    return suppressions


@dataclass
class SourceFile:
    """One parsed source file plus its lint-relevant side channels."""

    path: Path
    rel_path: str
    source: str
    tree: Optional[ast.Module]
    comments: Dict[int, str] = field(default_factory=dict)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    parse_error: Optional[str] = None
    parse_error_line: int = 1

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether ``finding`` is silenced by a same-line directive."""
        codes = self.suppressions.get(finding.line)
        if not codes:
            return False
        return "ALL" in codes or finding.rule in codes

    def has_placeholder_marker(self, line: int) -> bool:
        """Whether ``line`` carries a ``qugeo-lint: placeholder`` marker."""
        comment = self.comments.get(line)
        return bool(comment and _PLACEHOLDER_RE.search(comment))

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(path=self.rel_path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0), rule=rule,
                       message=message)


def load_source_file(path: Path, root: Path) -> SourceFile:
    """Read and parse ``path`` into a :class:`SourceFile`.

    Syntax errors do not raise: the file comes back with ``tree=None`` and
    ``parse_error`` set, and the engine reports it under
    :data:`~repro.analysis.findings.PARSE_ERROR_CODE`.
    """
    source = path.read_text(encoding="utf-8", errors="replace")
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:  # outside the project root (explicit file argument)
        rel = path.as_posix()
    comments = scan_comments(source)
    try:
        tree: Optional[ast.Module] = ast.parse(source, filename=str(path))
        error, error_line = None, 1
    except SyntaxError as exc:
        tree = None
        error = f"syntax error: {exc.msg}"
        error_line = exc.lineno or 1
    return SourceFile(path=path, rel_path=rel, source=source, tree=tree,
                      comments=comments, suppressions=parse_suppressions(comments),
                      parse_error=error, parse_error_line=error_line)


def iter_python_files(path: Path) -> Iterator[Path]:
    """Yield every ``.py`` file under ``path`` (or ``path`` itself)."""
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    for candidate in sorted(path.rglob("*.py")):
        if not any(part in _SKIP_DIRS or part.startswith(".")
                   for part in candidate.relative_to(path).parts):
            yield candidate


_ROOT_MARKERS = ("pyproject.toml", ".git")


def find_project_root(start: Path) -> Path:
    """Walk up from ``start`` to the nearest directory that looks like a
    project root (``pyproject.toml`` / ``.git``); fall back to ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
            return candidate
    return current


@dataclass(frozen=True)
class Project:
    """Project-level view for rules that reason across files (QG006/QG007)."""

    root: Path

    @property
    def src_root(self) -> Path:
        return self.root / "src"

    @property
    def tests_root(self) -> Path:
        return self.root / "tests"

    def rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def source_files(self) -> Iterator[Path]:
        """Every python file under ``src/`` (empty when absent)."""
        if self.src_root.is_dir():
            yield from iter_python_files(self.src_root)

    def test_files(self) -> Iterator[Path]:
        """Every ``test_*.py`` under ``tests/`` (empty when absent)."""
        if self.tests_root.is_dir():
            for path in sorted(self.tests_root.rglob("test_*.py")):
                yield path

    def load(self, path: Path) -> SourceFile:
        return load_source_file(path, self.root)

    def load_rel(self, rel_path: str) -> Optional[SourceFile]:
        """Load a project-relative path, or ``None`` when it does not exist."""
        path = self.root / rel_path
        if not path.is_file():
            return None
        return load_source_file(path, self.root)


class Rule:
    """Base class for lint rules.

    A rule declares a ``code`` (``QGnnn``), a short ``name`` and a
    ``description`` (both shown by ``--list-rules``), and implements one or
    both hooks:

    * :meth:`check_file` — called once per linted file with its parsed
      :class:`SourceFile`; per-line suppressions are applied by the engine.
    * :meth:`check_project` — called once per run with the :class:`Project`
      view, for invariants that span files (registry coverage, pinned
      baselines).  Findings in files the engine also parsed still honour
      same-line suppressions.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check_file(self, sf: SourceFile) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(code={self.code!r}, name={self.name!r})"


def dotted_name(node: ast.AST) -> Optional[str]:
    """The dotted source text of a ``Name``/``Attribute`` chain, or ``None``.

    ``np.random.default_rng`` -> ``"np.random.default_rng"``; anything that
    is not a pure attribute chain (calls, subscripts) returns ``None``.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee (``None`` for computed callees)."""
    return dotted_name(node.func)


def string_constants(node: ast.AST) -> Iterator[str]:
    """Every string literal anywhere inside ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and isinstance(child.value, str):
            yield child.value
