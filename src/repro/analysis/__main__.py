"""``python -m repro.analysis`` — run the project-invariant linter."""

import sys

from repro.analysis.cli import main

sys.exit(main())
