"""Pinned baselines for the fingerprint-hygiene rule (QG007).

Each entry pins the *field list* of one config dataclass whose values are
digested into a cache fingerprint, together with the format-version
constant that must be bumped when those fields change:

* :func:`repro.data.store.dataset_fingerprint` digests every
  ``OpenFWIConfig`` field (including the nested ``VelocityModelConfig``)
  under ``DATA_FORMAT_VERSION`` — an unversioned field change silently
  addresses *stale* cached shards as if they matched the new config.
* :func:`repro.robustness.perturbations.perturbation_fingerprint` digests
  each perturbation's config dict under ``PERTURBATION_VERSION`` with the
  same failure mode for perturbed-view caches.

When you intentionally change a pinned class: bump the version constant,
then update the matching entry here (fields *and* ``pinned_version``) in
the same commit.  QG007 fails until both halves agree, which is exactly
the point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class FingerprintBaseline:
    """Pinned (fields, version) pair for one fingerprinted config class."""

    config_class: str
    #: Project-relative path of the module defining ``config_class``.
    config_module: str
    #: Name of the format-version constant guarding the class.
    version_const: str
    #: Project-relative path of the module defining ``version_const``.
    version_module: str
    #: The version value this baseline was pinned against.
    pinned_version: int
    #: The dataclass field names at pin time (declaration order).
    pinned_fields: Tuple[str, ...]


FINGERPRINT_BASELINES: Tuple[FingerprintBaseline, ...] = (
    FingerprintBaseline(
        config_class="OpenFWIConfig",
        config_module="src/repro/data/openfwi.py",
        version_const="DATA_FORMAT_VERSION",
        version_module="src/repro/data/store.py",
        pinned_version=1,
        pinned_fields=(
            "n_samples", "velocity_shape", "n_sources", "n_receivers",
            "n_time_steps", "dx", "peak_frequency", "family", "model_config",
            "boundary_width", "spatial_order", "chunk_size", "boundary",
            "record_every",
        ),
    ),
    FingerprintBaseline(
        config_class="VelocityModelConfig",
        config_module="src/repro/seismic/velocity_models.py",
        version_const="DATA_FORMAT_VERSION",
        version_module="src/repro/data/store.py",
        pinned_version=1,
        pinned_fields=(
            "shape", "min_velocity", "max_velocity", "min_layers",
            "max_layers", "increasing_velocity",
        ),
    ),
    FingerprintBaseline(
        config_class="TraceNoise",
        config_module="src/repro/robustness/perturbations.py",
        version_const="PERTURBATION_VERSION",
        version_module="src/repro/robustness/perturbations.py",
        pinned_version=1,
        pinned_fields=("snr_db", "band"),
    ),
    FingerprintBaseline(
        config_class="DeadReceivers",
        config_module="src/repro/robustness/perturbations.py",
        version_const="PERTURBATION_VERSION",
        version_module="src/repro/robustness/perturbations.py",
        pinned_version=1,
        pinned_fields=("fraction",),
    ),
    FingerprintBaseline(
        config_class="ShotDropout",
        config_module="src/repro/robustness/perturbations.py",
        version_const="PERTURBATION_VERSION",
        version_module="src/repro/robustness/perturbations.py",
        pinned_version=1,
        pinned_fields=("fraction",),
    ),
    FingerprintBaseline(
        config_class="GainJitter",
        config_module="src/repro/robustness/perturbations.py",
        version_const="PERTURBATION_VERSION",
        version_module="src/repro/robustness/perturbations.py",
        pinned_version=1,
        pinned_fields=("sigma",),
    ),
    FingerprintBaseline(
        config_class="TimeShift",
        config_module="src/repro/robustness/perturbations.py",
        version_const="PERTURBATION_VERSION",
        version_module="src/repro/robustness/perturbations.py",
        pinned_version=1,
        pinned_fields=("max_shift",),
    ),
)
