"""Static analysis for the QuGeo reproduction: ``qugeo-lint``.

An AST-based, zero-dependency linter enforcing the project invariants that
generic linters cannot see — the env-variable waist, seeded-RNG
determinism, the ``xm.ArrayOps`` narrow waist, monotonic telemetry clocks,
fault-path exception hygiene, registry/parity-test lockstep, and
fingerprint format-version discipline.  Run it with::

    python -m repro.analysis [PATH ...]
    qugeo-lint --list-rules

Rules live in :mod:`repro.analysis.rules` and are registered by string
code (``QG001``...) in :mod:`repro.analysis.registry`, mirroring the
backend/propagator/kernel registries.
"""

from repro.analysis.base import (
    Project,
    Rule,
    SourceFile,
    find_project_root,
    load_source_file,
)
from repro.analysis.engine import DEFAULT_PATHS, LintResult, lint_paths
from repro.analysis.findings import PARSE_ERROR_CODE, Finding
from repro.analysis.registry import (
    DuplicateRuleError,
    RuleError,
    UnknownRuleError,
    all_rules,
    available_rules,
    get_rule,
    register_rule,
    resolve_rules,
    unregister_rule,
)

# Importing the rules package registers the built-in rules.
import repro.analysis.rules  # noqa: F401  (imported for registration)

__all__ = [
    "DEFAULT_PATHS",
    "DuplicateRuleError",
    "Finding",
    "LintResult",
    "PARSE_ERROR_CODE",
    "Project",
    "Rule",
    "RuleError",
    "SourceFile",
    "UnknownRuleError",
    "all_rules",
    "available_rules",
    "find_project_root",
    "get_rule",
    "lint_paths",
    "load_source_file",
    "register_rule",
    "resolve_rules",
    "unregister_rule",
]
