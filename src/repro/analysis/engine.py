"""The lint engine: file collection, rule dispatch, suppression filtering.

:func:`lint_paths` is the library entry point the CLI, the pre-commit hook
and the test suite all share.  It parses every ``.py`` file under the given
paths once, runs the selected per-file rules over each parse tree, runs the
project-level rules once against the :class:`~repro.analysis.base.Project`
view, filters findings through per-line suppressions, and returns a
:class:`LintResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

# Importing the rules package registers the built-in rules.
import repro.analysis.rules  # noqa: F401  (imported for registration)
from repro.analysis.base import (
    Project,
    SourceFile,
    find_project_root,
    iter_python_files,
    load_source_file,
)
from repro.analysis.findings import PARSE_ERROR_CODE, Finding
from repro.analysis.registry import resolve_rules

#: What ``qugeo-lint`` checks when invoked with no path arguments.
DEFAULT_PATHS = ("src", "benchmarks", "examples")


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    files: List[str]
    rules: List[str]
    project_root: str

    @property
    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """JSON document (schema asserted in ``tests/test_analysis_lint.py``)."""
        return {
            "version": 1,
            "project_root": self.project_root,
            "rules": list(self.rules),
            "files_checked": len(self.files),
            "findings": [finding.to_dict() for finding in self.findings],
            "summary": {
                "findings": len(self.findings),
                "by_rule": self.counts_by_rule,
            },
        }


@dataclass
class _Run:
    project: Project
    sources: List[SourceFile] = field(default_factory=list)

    @property
    def by_rel_path(self) -> Dict[str, SourceFile]:
        return {sf.rel_path: sf for sf in self.sources}


def _collect_sources(paths: Sequence[Union[str, Path]], root: Path
                     ) -> List[SourceFile]:
    seen: Dict[Path, None] = {}
    for path in paths:
        for file_path in iter_python_files(Path(path)):
            seen.setdefault(file_path.resolve(), None)
    return [load_source_file(path, root) for path in sorted(seen)]


def lint_paths(paths: Optional[Sequence[Union[str, Path]]] = None,
               *,
               select: Optional[Iterable[str]] = None,
               ignore: Optional[Iterable[str]] = None,
               project_root: Optional[Union[str, Path]] = None) -> LintResult:
    """Lint every python file under ``paths`` with the selected rules.

    Parameters
    ----------
    paths:
        Files or directories to lint (default: :data:`DEFAULT_PATHS`,
        resolved against the project root).
    select / ignore:
        Rule codes or names restricting the run (``None`` = all rules).
    project_root:
        Explicit project root for path-scoped rules and the project-level
        passes; auto-detected from the first path (nearest
        ``pyproject.toml`` / ``.git``) when omitted.
    """
    if project_root is not None:
        root = Path(project_root).resolve()
    else:
        probe = Path(paths[0]) if paths else Path.cwd()
        root = find_project_root(probe)
    if paths is None:
        paths = [root / part for part in DEFAULT_PATHS
                 if (root / part).exists()]
    rules = resolve_rules(select, ignore)
    run = _Run(project=Project(root=root),
               sources=_collect_sources(paths, root))

    findings: List[Finding] = []
    for sf in run.sources:
        if sf.parse_error is not None:
            findings.append(Finding(path=sf.rel_path,
                                    line=sf.parse_error_line, col=0,
                                    rule=PARSE_ERROR_CODE,
                                    message=sf.parse_error))

    for rule in rules:
        for sf in run.sources:
            for finding in rule.check_file(sf):
                if not sf.is_suppressed(finding):
                    findings.append(finding)

    by_rel_path = run.by_rel_path
    for rule in rules:
        for finding in rule.check_project(run.project):
            sf = by_rel_path.get(finding.path)
            if sf is None:
                # Finding in a file outside the linted set (e.g. a
                # registration under src/ when only benchmarks/ was linted):
                # honour its suppressions anyway.
                target = run.project.root / finding.path
                if target.is_file():
                    sf = load_source_file(target, run.project.root)
            if sf is not None and sf.is_suppressed(finding):
                continue
            findings.append(finding)

    findings.sort()
    return LintResult(findings=findings,
                      files=[sf.rel_path for sf in run.sources],
                      rules=[rule.code for rule in rules],
                      project_root=str(root))
