"""The end-to-end QuGeo pipeline.

:class:`QuGeo` wires the three components of the framework together exactly
as Figure 2 of the paper draws them:

1. **QuGeoData** scales full-resolution (seismic, velocity) pairs to a size
   the configured quantum register can encode — with forward modelling
   (``Q-D-FW``), the learned compressor (``Q-D-CNN``) or naive resampling
   (``D-Sample``).
2. **QuGeoVQC** (optionally with **QuBatch**) is trained on the scaled pairs.
3. At inference time, raw seismic data is scaled with the same method and the
   trained circuit predicts the velocity map, which is de-normalised back to
   physical units.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.core.config import QuGeoConfig, config_from_dict, config_to_dict
from repro.core.data_scaling import (
    BaseScaler,
    CNNScaler,
    DSampleScaler,
    ForwardModelingScaler,
    scaler_from_state,
    scaler_state,
)
from repro.core.qubatch import QuBatchVQC
from repro.core.training import Callback, Trainer, TrainingResult
from repro.core.vqc_model import QuGeoVQC
from repro.data.dataset import FWIDataset, FWISample
from repro.data.normalization import VelocityNormalizer
from repro.utils.logging import RunLogger
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.serialization import load_checkpoint, save_checkpoint

PIPELINE_VERSION = 1

_SCALING_LABELS = {
    "d_sample": "D-Sample",
    "forward_modeling": "Q-D-FW",
    "cnn": "Q-D-CNN",
}


class QuGeo:
    """End-to-end quantum learning pipeline for full-waveform inversion.

    Parameters
    ----------
    config:
        Full framework configuration; defaults reproduce the paper's setup
        (256-value seismic input, 8x8 velocity output, 8 qubits, 12 blocks,
        layer-wise decoder, physics-guided scaling).
    rng:
        Seed or generator controlling scaler training, parameter
        initialisation and data shuffling.
    """

    def __init__(self, config: QuGeoConfig = None, rng: RngLike = None) -> None:
        self.config = config or QuGeoConfig()
        self._rng = ensure_rng(rng)
        self.scaler: Optional[BaseScaler] = None
        self.model: Optional[Union[QuGeoVQC, QuBatchVQC]] = None
        self.training_result: Optional[TrainingResult] = None
        self.normalizer = VelocityNormalizer(*self.config.data.velocity_range)

    # ------------------------------------------------------------------ #
    # component construction
    # ------------------------------------------------------------------ #
    def build_scaler(self, compressor_dataset: Optional[FWIDataset] = None,
                     compressor_epochs: int = 40) -> BaseScaler:
        """Instantiate (and, for Q-D-CNN, train) the configured data scaler."""
        method = self.config.scaling_method
        if method == "d_sample":
            self.scaler = DSampleScaler(self.config.data)
        elif method == "forward_modeling":
            self.scaler = ForwardModelingScaler(self.config.data)
        else:
            if compressor_dataset is None or not len(compressor_dataset):
                raise ValueError(
                    "scaling_method='cnn' needs a compressor training dataset")
            self.scaler = CNNScaler.train(compressor_dataset,
                                          config=self.config.data,
                                          epochs=compressor_epochs,
                                          rng=self._rng)
        return self.scaler

    def build_model(self) -> Union[QuGeoVQC, QuBatchVQC]:
        """Instantiate the configured quantum model."""
        if self.config.vqc.n_batch_qubits > 0:
            self.model = QuBatchVQC(self.config.vqc, rng=self._rng)
        else:
            self.model = QuGeoVQC(self.config.vqc, rng=self._rng)
        return self.model

    # ------------------------------------------------------------------ #
    # fit / predict
    # ------------------------------------------------------------------ #
    def fit(self, train_dataset: FWIDataset,
            test_dataset: Optional[FWIDataset] = None,
            compressor_dataset: Optional[FWIDataset] = None,
            callbacks: Sequence[Callback] = (),
            resume_from: Optional[str] = None) -> TrainingResult:
        """Scale the data, build the model and train it.

        Parameters
        ----------
        train_dataset, test_dataset:
            Full-resolution FWI datasets (as produced by
            :mod:`repro.data.openfwi`).
        compressor_dataset:
            Extra full-resolution samples used to train the Q-D-CNN
            compressor when ``scaling_method='cnn'``.
        callbacks:
            Extra training callbacks (checkpointing, early stopping, ...)
            passed through to the :class:`~repro.core.training.Trainer`.
        resume_from:
            Checkpoint path to resume the model training from (see
            :class:`~repro.core.training.Checkpoint`).
        """
        if self.scaler is None:
            self.build_scaler(compressor_dataset)
        if self.model is None:
            self.build_model()
        scaled_train = self.scaler.scale_dataset(train_dataset)
        scaled_test = (self.scaler.scale_dataset(test_dataset)
                       if test_dataset is not None else None)
        trainer = Trainer(self.config.training)
        self.training_result = trainer.train(self.model, scaled_train,
                                             scaled_test, callbacks=callbacks,
                                             resume_from=resume_from)
        return self.training_result

    def predict(self, sample: FWISample,
                denormalize: bool = True) -> np.ndarray:
        """Predict the velocity map of one full-resolution sample.

        Returns the map in physical units (m/s) unless ``denormalize=False``.
        """
        if self.scaler is None or self.model is None:
            raise RuntimeError("call fit() before predict()")
        scaled = self.scaler.scale_sample(sample)
        prediction = self.model.predict(scaled.seismic_vector())
        if denormalize:
            return self.normalizer.denormalize(prediction)
        return prediction

    def predict_dataset(self, dataset: FWIDataset,
                        denormalize: bool = True) -> np.ndarray:
        """Predict velocity maps for every sample of a full-resolution dataset."""
        return np.stack([self.predict(sample, denormalize=denormalize)
                         for sample in dataset])

    # ------------------------------------------------------------------ #
    # serialisation: save a trained pipeline, load it for inference
    # ------------------------------------------------------------------ #
    def save(self, path: str) -> None:
        """Persist the fitted pipeline (config, scaler, model, history).

        The saved file is self-contained: :meth:`load` rebuilds a pipeline
        whose :meth:`predict` matches this one's output exactly, without
        refitting anything.
        """
        if self.scaler is None or self.model is None:
            raise RuntimeError("fit() (or build the components) before save()")
        payload: Dict[str, object] = {
            "version": PIPELINE_VERSION,
            "config": config_to_dict(self.config),
            "scaler": scaler_state(self.scaler),
            "model": self.model.state_dict(),
        }
        if self.training_result is not None:
            payload["final_metrics"] = dict(self.training_result.final_metrics)
            payload["history"] = self.training_result.logger.state_dict()
        save_checkpoint(path, payload)

    @classmethod
    def load(cls, path: str, rng: RngLike = None) -> "QuGeo":
        """Rebuild a pipeline saved with :meth:`save`, ready to predict.

        Pipeline files are pickles: only load files you trust (unpickling
        executes embedded code).
        """
        payload = load_checkpoint(path)
        version = payload.get("version")
        if version != PIPELINE_VERSION:
            raise ValueError(f"unsupported pipeline version {version!r}")
        config = config_from_dict(payload["config"])
        pipeline = cls(config, rng=rng)
        pipeline.scaler = scaler_from_state(payload["scaler"], config.data)
        pipeline.build_model()
        pipeline.model.load_state_dict(payload["model"])
        if "final_metrics" in payload:
            logger = RunLogger(name=getattr(pipeline.model, "name", "quantum"))
            if "history" in payload:
                logger.load_state_dict(payload["history"])
            pipeline.training_result = TrainingResult(
                model=pipeline.model, logger=logger,
                final_metrics=dict(payload["final_metrics"]))
        return pipeline

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        """Human-readable description of the configured pipeline."""
        label = _SCALING_LABELS[self.config.scaling_method]
        vqc = self.config.vqc
        info: Dict[str, object] = {
            "scaling_method": label,
            "decoder": "Q-M-PX" if vqc.decoder == "pixel" else "Q-M-LY",
            "data_qubits": vqc.data_qubits,
            "total_qubits": vqc.total_qubits,
            "ansatz_blocks": vqc.n_blocks,
            "encoder_capacity": vqc.input_size,
            "scaled_seismic_shape": self.config.data.scaled_seismic_shape,
            "scaled_velocity_shape": self.config.data.scaled_velocity_shape,
        }
        if self.model is not None:
            info["parameters"] = self.model.num_parameters()
        if self.training_result is not None:
            info.update(self.training_result.final_metrics)
        return info
