"""Loss functions of the two QuGeoVQC decoders (Eq. 2 and Eq. 3 of the paper).

These NumPy implementations define the objective; the models in
:mod:`repro.core.vqc_model` and :mod:`repro.core.classical_models` compute
the same quantities inside their own differentiation machinery.  They are
exposed separately so tests and the experiment harness can score any
prediction consistently.

Both losses are reported as *means* over the velocity-map pixels so that the
values are comparable across map sizes (the paper's MSE numbers, e.g.
``4.6e-4``, are per-pixel means of normalised velocities).
"""

from __future__ import annotations

import numpy as np


def pixel_loss(prediction: np.ndarray, target: np.ndarray) -> float:
    """Pixel-wise MSE (Eq. 2): compare every velocity-map cell independently."""
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: {prediction.shape} vs {target.shape}")
    return float(np.mean((prediction - target) ** 2))


def layer_loss(row_prediction: np.ndarray, target: np.ndarray) -> float:
    """Layer-wise MSE (Eq. 3): one predicted velocity per velocity-map row.

    Parameters
    ----------
    row_prediction:
        1-D array of length ``depth`` — the per-row velocities ``D'``.
    target:
        2-D ground-truth map ``(depth, width)``.
    """
    row_prediction = np.asarray(row_prediction, dtype=np.float64).reshape(-1)
    target = np.asarray(target, dtype=np.float64)
    if target.ndim != 2:
        raise ValueError("target must be a 2-D velocity map")
    if row_prediction.size != target.shape[0]:
        raise ValueError("row_prediction length must equal the map depth")
    expanded = np.repeat(row_prediction[:, None], target.shape[1], axis=1)
    return float(np.mean((expanded - target) ** 2))


def row_profile(velocity_map: np.ndarray) -> np.ndarray:
    """Per-row mean of a velocity map (the regression target of Eq. 3)."""
    velocity_map = np.asarray(velocity_map, dtype=np.float64)
    if velocity_map.ndim != 2:
        raise ValueError("velocity_map must be 2-D")
    return velocity_map.mean(axis=1)
