"""Trainers for the quantum and classical FWI models.

Both trainers follow the paper's recipe: Adam with a configurable initial
learning rate (0.1 in the paper), cosine annealing over the epoch budget and
mini-batch updates.  They share the :class:`TrainingResult` record so the
experiment harness treats quantum and classical runs uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.classical_models import ClassicalFWIModel
from repro.core.config import TrainingConfig
from repro.core.qubatch import QuBatchVQC
from repro.core.vqc_model import QuGeoVQC
from repro.data.dataset import FWIDataset
from repro.metrics import mse, ssim
from repro.nn import Adam, CosineAnnealingLR, MSELoss, Tensor
from repro.utils.logging import RunLogger
from repro.utils.rng import ensure_rng


@dataclass
class TrainingResult:
    """Outcome of one training run.

    Attributes
    ----------
    model:
        The trained model (mutated in place by the trainer).
    logger:
        Per-epoch metric history (``train_loss``, ``test_ssim``, ``test_mse``).
    final_metrics:
        Metrics of the trained model on the evaluation set.  Keys are
        prefixed with the split they were computed on: ``test_ssim`` /
        ``test_mse`` when a test set was provided, ``train_ssim`` /
        ``train_mse`` when the trainer had to fall back to the training data.
    """

    model: object
    logger: RunLogger
    final_metrics: Dict[str, float] = field(default_factory=dict)

    def history(self, key: str) -> List[float]:
        """Shortcut to the logger's history for ``key``."""
        return self.logger.history(key)


def _dataset_arrays(dataset: FWIDataset):
    """Stack a scaled dataset into (flattened seismic, velocity maps)."""
    seismic = np.stack([sample.seismic.reshape(-1) for sample in dataset])
    velocity = np.stack([sample.velocity for sample in dataset])
    return seismic, velocity


def evaluate_predictions(predictions: np.ndarray,
                         targets: np.ndarray) -> Dict[str, float]:
    """Average SSIM and MSE of a batch of predicted velocity maps."""
    if predictions.shape != targets.shape:
        raise ValueError("prediction/target shape mismatch")
    # ssim broadcasts over the leading axis of an (N, H, W) stack, so the
    # whole batch is scored with one set of filter passes.
    ssim_values = ssim(predictions, targets, data_range=1.0)
    return {"ssim": float(np.mean(ssim_values)),
            "mse": mse(predictions, targets)}


class QuantumTrainer:
    """Mini-batch Adam training of :class:`QuGeoVQC` / :class:`QuBatchVQC`."""

    def __init__(self, config: TrainingConfig = None) -> None:
        self.config = config or TrainingConfig()

    def train(self, model: Union[QuGeoVQC, QuBatchVQC],
              train_dataset: FWIDataset,
              test_dataset: Optional[FWIDataset] = None,
              logger: Optional[RunLogger] = None) -> TrainingResult:
        """Train ``model`` on a scaled dataset.

        The mini-batch size is the training config's ``batch_size`` for the
        plain model, or the QuBatch capacity when the model batches in the
        circuit itself.
        """
        config = self.config
        rng = ensure_rng(config.seed)
        logger = logger or RunLogger(name=getattr(model, "name", "quantum"),
                                     verbose=config.verbose,
                                     print_every=config.eval_every)
        seismic, velocity = _dataset_arrays(train_dataset)
        test_arrays = (_dataset_arrays(test_dataset)
                       if test_dataset is not None and len(test_dataset) else None)

        optimizer = Adam(model.parameter_tensors(), lr=config.learning_rate)
        scheduler = CosineAnnealingLR(optimizer, t_max=config.epochs,
                                      eta_min=config.eta_min)
        uses_qubatch = isinstance(model, QuBatchVQC)
        batch_size = model.batch_capacity if uses_qubatch else config.batch_size
        # One stacked forward/backward sweep per mini-batch whenever the
        # model and its backend support the batched adjoint path; otherwise
        # fall back to the per-sample loop (the two produce matching
        # gradients — see tests/test_batched_gradients.py).
        use_batched_gradients = (
            not uses_qubatch
            and hasattr(model, "accumulate_gradients_batch")
            and getattr(model, "backend", None) is not None
            and model.backend.capabilities.batched_adjoint)

        n_samples = seismic.shape[0]
        for epoch in range(config.epochs):
            # Capture before the scheduler advances so the log records the
            # LR the optimiser actually used for this epoch's updates.
            epoch_lr = optimizer.lr
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n_samples, batch_size):
                batch = order[start:start + batch_size]
                optimizer.zero_grad()
                if uses_qubatch:
                    batch_loss = model.accumulate_gradients(
                        seismic[batch], velocity[batch])
                elif use_batched_gradients:
                    batch_loss = model.accumulate_gradients_batch(
                        seismic[batch], velocity[batch])
                else:
                    weight = 1.0 / len(batch)
                    batch_loss = 0.0
                    for index in batch:
                        batch_loss += weight * model.accumulate_gradients(
                            seismic[index], velocity[index], weight=weight)
                optimizer.step()
                epoch_loss += batch_loss
                n_batches += 1
            scheduler.step()
            metrics = {"train_loss": epoch_loss / max(1, n_batches),
                       "lr": epoch_lr}
            if test_arrays is not None and (
                    (epoch + 1) % config.eval_every == 0
                    or epoch == config.epochs - 1):
                metrics.update(self._evaluate(model, *test_arrays))
            logger.log(epoch, **metrics)

        final_metrics = (self._evaluate(model, *test_arrays)
                         if test_arrays is not None
                         else self._evaluate(model, seismic, velocity,
                                             split="train"))
        return TrainingResult(model=model, logger=logger,
                              final_metrics=final_metrics)

    @staticmethod
    def _evaluate(model: Union[QuGeoVQC, QuBatchVQC],
                  seismic: np.ndarray, velocity: np.ndarray,
                  split: str = "test") -> Dict[str, float]:
        if isinstance(model, QuBatchVQC):
            capacity = model.batch_capacity
            predictions = np.concatenate(
                [model.predict_batch(seismic[start:start + capacity])
                 for start in range(0, seismic.shape[0], capacity)],
                axis=0)
        else:
            predictions = model.predict_batch(seismic)
        metrics = evaluate_predictions(predictions, velocity)
        return {f"{split}_ssim": metrics["ssim"],
                f"{split}_mse": metrics["mse"]}


class ClassicalTrainer:
    """Mini-batch Adam training of :class:`ClassicalFWIModel` baselines."""

    def __init__(self, config: TrainingConfig = None) -> None:
        self.config = config or TrainingConfig()

    def train(self, model: ClassicalFWIModel,
              train_dataset: FWIDataset,
              test_dataset: Optional[FWIDataset] = None,
              logger: Optional[RunLogger] = None) -> TrainingResult:
        """Train a classical baseline on a scaled dataset."""
        config = self.config
        rng = ensure_rng(config.seed)
        logger = logger or RunLogger(name=model.name, verbose=config.verbose,
                                     print_every=config.eval_every)
        seismic, velocity = _dataset_arrays(train_dataset)
        test_arrays = (_dataset_arrays(test_dataset)
                       if test_dataset is not None and len(test_dataset) else None)

        optimizer = Adam(model.network.parameters(), lr=config.learning_rate)
        scheduler = CosineAnnealingLR(optimizer, t_max=config.epochs,
                                      eta_min=config.eta_min)
        loss_fn = MSELoss()
        depth, width = velocity.shape[1], velocity.shape[2]

        n_samples = seismic.shape[0]
        for epoch in range(config.epochs):
            # Capture before the scheduler advances so the log records the
            # LR the optimiser actually used for this epoch's updates.
            epoch_lr = optimizer.lr
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n_samples, config.batch_size):
                batch = order[start:start + config.batch_size]
                optimizer.zero_grad()
                output = model.forward(seismic[batch])
                if model.decoder == "pixel":
                    prediction = output.reshape(len(batch), depth, width)
                else:
                    prediction = model.expand_prediction(output)
                loss = loss_fn(prediction, velocity[batch])
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
            scheduler.step()
            metrics = {"train_loss": epoch_loss / max(1, n_batches),
                       "lr": epoch_lr}
            if test_arrays is not None and (
                    (epoch + 1) % config.eval_every == 0
                    or epoch == config.epochs - 1):
                metrics.update(self._evaluate(model, *test_arrays))
            logger.log(epoch, **metrics)

        final_metrics = (self._evaluate(model, *test_arrays)
                         if test_arrays is not None
                         else self._evaluate(model, seismic, velocity,
                                             split="train"))
        return TrainingResult(model=model, logger=logger,
                              final_metrics=final_metrics)

    @staticmethod
    def _evaluate(model: ClassicalFWIModel, seismic: np.ndarray,
                  velocity: np.ndarray, split: str = "test") -> Dict[str, float]:
        predictions = model.predict_velocity(seismic)
        metrics = evaluate_predictions(predictions, velocity)
        return {f"{split}_ssim": metrics["ssim"],
                f"{split}_mse": metrics["mse"]}
