"""The unified training engine.

One :class:`Trainer` drives every model family in the stack.  The engine owns
the generic machinery — epoch loop, mini-batch shuffling, Adam + cosine
annealing, metric logging, checkpointing — while everything model-specific
lives in a pluggable :class:`StepStrategy` (how one mini-batch turns into
accumulated gradients) selected by :func:`select_step_strategy`:

* :class:`QuantumBatchedAdjointStep` — :class:`~repro.core.vqc_model.QuGeoVQC`
  on a backend with native batched-adjoint support: one stacked
  forward/backward sweep per mini-batch.
* :class:`QuantumPerSampleStep` — the same model on a per-sample backend.
* :class:`QuBatchStep` — :class:`~repro.core.qubatch.QuBatchVQC`, whose
  mini-batch size is the circuit's own batch capacity.
* :class:`ClassicalAutogradStep` — :class:`~repro.core.classical_models.ClassicalFWIModel`
  through the reverse-mode autograd of :mod:`repro.nn`.

Models plug in through the :class:`Model` protocol (``parameter_tensors`` /
``predict_batch`` / ``state_dict`` / ``load_state_dict``), and side concerns
ride along as :class:`Callback` objects: test-set evaluation cadence
(:class:`EvalCallback`), :class:`EarlyStopping`, :class:`BestModelTracker`
and periodic :class:`Checkpoint` saves.  A checkpoint captures the full
training state — model arrays, optimiser moments, scheduler position, the
shuffle generator's bit-generator state and the metric history — so a run
resumed with ``Trainer.train(..., resume_from=path)`` reproduces the
uninterrupted run's trajectory exactly.

The paper's recipe is unchanged: Adam with a configurable initial learning
rate (0.1 in the paper), cosine annealing over the epoch budget and
mini-batch updates.  :class:`QuantumTrainer` and :class:`ClassicalTrainer`
remain as backwards-compatible aliases of the one engine.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.core.classical_models import ClassicalFWIModel
from repro.core.config import TrainingConfig
from repro.core.qubatch import QuBatchVQC
from repro.core.vqc_model import QuGeoVQC
from repro.data.dataset import FWIDataset
from repro.metrics import mse, ssim
from repro.nn import Adam, CosineAnnealingLR, MSELoss, Tensor
from repro.telemetry import get_telemetry
from repro.utils.logging import RunLogger
from repro.utils.rng import ensure_rng
from repro.utils.serialization import (
    BACKUP_SUFFIX,
    resolve_checkpoint,
    save_checkpoint,
)
from repro.xm import DTypePolicy, get_dtype_policy

# Version 2: dataset fingerprints are computed from per-sample content sums
# (shared with repro.data.store.content_fingerprint) instead of full-array
# sums — the two differ in the last float bits at scale, so version-1
# checkpoints would fail the exact fingerprint comparison with a misleading
# "different training samples" error instead of a clear version mismatch.
CHECKPOINT_VERSION = 2


# --------------------------------------------------------------------------- #
# the Model protocol
# --------------------------------------------------------------------------- #
@runtime_checkable
class Model(Protocol):
    """What the training engine requires of a trainable model.

    :class:`~repro.core.vqc_model.QuGeoVQC`,
    :class:`~repro.core.qubatch.QuBatchVQC` and
    :class:`~repro.core.classical_models.ClassicalFWIModel` all satisfy it,
    so one :class:`Trainer` (and one checkpoint format) serves the whole
    stack.
    """

    def parameter_tensors(self) -> Tuple[Tensor, ...]:
        """Tensors the optimiser updates."""

    def predict_batch(self, seismic_batch: Sequence[np.ndarray]) -> np.ndarray:
        """Predict normalised velocity maps for a batch of flat samples."""

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every trainable array, keyed by name."""

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict`."""


@runtime_checkable
class DataSource(Protocol):
    """What the training engine requires of a dataset source.

    :class:`ArrayDataSource` (stacked in-memory arrays),
    :class:`repro.data.store.ShardLoader` (streaming on-disk shards) and
    :class:`repro.robustness.perturbations.PerturbedView` (perturbations
    applied on gather) all satisfy it, so the trainer never needs to know
    where samples physically live.
    """

    def __len__(self) -> int:
        """Number of samples."""

    def gather(self, indices: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """``(flattened seismic, velocity maps)`` for the given sample rows."""

    def fingerprint(self) -> Dict[str, object]:
        """Cheap order-sensitive identity (see ``content_fingerprint``)."""


# --------------------------------------------------------------------------- #
# results and shared helpers
# --------------------------------------------------------------------------- #
@dataclass
class TrainingResult:
    """Outcome of one training run.

    Attributes
    ----------
    model:
        The trained model (mutated in place by the trainer).
    logger:
        Per-epoch metric history (``train_loss``, ``test_ssim``, ``test_mse``).
    final_metrics:
        Metrics of the trained model on the evaluation set.  Keys are
        prefixed with the split they were computed on: ``test_ssim`` /
        ``test_mse`` when a test set was provided, ``train_ssim`` /
        ``train_mse`` when the trainer had to fall back to the training data.
    """

    model: object
    logger: RunLogger
    final_metrics: Dict[str, float] = field(default_factory=dict)

    def history(self, key: str) -> List[float]:
        """Shortcut to the logger's history for ``key``."""
        return self.logger.history(key)


def _dataset_arrays(dataset: FWIDataset):
    """Stack a scaled dataset into (flattened seismic, velocity maps)."""
    seismic = np.stack([sample.seismic.reshape(-1) for sample in dataset])
    velocity = np.stack([sample.velocity for sample in dataset])
    return seismic, velocity


class ArrayDataSource:
    """In-memory data source: stacked ``(flattened seismic, velocity)``.

    The engine consumes datasets through this small duck type — ``__len__``,
    ``gather(indices)`` and ``fingerprint()`` — so a streaming
    :class:`repro.data.store.ShardLoader` (which implements the same
    protocol against on-disk shards) feeds the trainer without the full
    arrays ever being materialized.
    """

    def __init__(self, seismic: np.ndarray, velocity: np.ndarray) -> None:
        self.seismic = np.asarray(seismic)
        self.velocity = np.asarray(velocity)

    def __len__(self) -> int:
        return int(self.seismic.shape[0])

    def gather(self, indices: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        return self.seismic[indices], self.velocity[indices]

    def fingerprint(self) -> Dict[str, object]:
        from repro.data.store import content_fingerprint
        n = self.seismic.shape[0]
        return content_fingerprint(
            self.seismic.shape, self.velocity.shape,
            self.seismic.reshape(n, -1).sum(axis=1),
            self.velocity.reshape(n, -1).sum(axis=1))


def _as_data_source(dataset) -> Optional[DataSource]:
    """Coerce a dataset (or ``None``) into the :class:`DataSource` protocol.

    Objects already implementing ``gather``/``fingerprint``/``__len__``
    (e.g. :class:`repro.data.store.ShardLoader`) pass through untouched;
    anything else is stacked into an :class:`ArrayDataSource`.
    """
    if dataset is None:
        return None
    if hasattr(dataset, "gather") and hasattr(dataset, "fingerprint"):
        return dataset
    return ArrayDataSource(*_dataset_arrays(dataset))


def _dataset_fingerprint(source: Optional[DataSource]
                         ) -> Optional[Dict[str, object]]:
    """Cheap identity of a dataset source.

    Shapes, content sums, and a position-weighted digest — the latter makes
    the fingerprint order-sensitive, so the same samples in a different
    order (which changes what the restored shuffle state selects) are
    detected too.  Delegated to the source, so a streaming ShardLoader
    computes it from its manifest without touching the shards.
    """
    if source is None:
        return None
    return source.fingerprint()


def evaluate_predictions(predictions: np.ndarray,
                         targets: np.ndarray) -> Dict[str, float]:
    """Average SSIM and MSE of a batch of predicted velocity maps."""
    if predictions.shape != targets.shape:
        raise ValueError("prediction/target shape mismatch")
    # ssim broadcasts over the leading axis of an (N, H, W) stack, so the
    # whole batch is scored with one set of filter passes.
    ssim_values = ssim(predictions, targets, data_range=1.0)
    return {"ssim": float(np.mean(ssim_values)),
            "mse": mse(predictions, targets)}


def predict_in_batches(model: Model, seismic,
                       batch_size: Optional[int] = None) -> np.ndarray:
    """Predict a whole dataset in bounded-memory chunks.

    ``seismic`` is either a stacked ``(n, features)`` array or a streaming
    data source (``gather`` protocol, e.g. a
    :class:`repro.data.store.ShardLoader`) — the latter never materializes
    the full seismic array.  ``batch_size=None`` runs one chunk.  Models
    with an intrinsic circuit capacity (QuBatch) split chunks further inside
    their own ``predict_batch``.  Chunked and unchunked prediction agree
    because every model decodes samples independently.
    """
    if hasattr(seismic, "gather"):
        source = seismic
        n_samples = len(source)
        if n_samples == 0:
            raise ValueError("empty evaluation set")
        limit = n_samples if batch_size is None else max(1, int(batch_size))
        chunks = []
        for start in range(0, n_samples, limit):
            block, _ = source.gather(
                np.arange(start, min(start + limit, n_samples)))
            chunks.append(model.predict_batch(block))
    else:
        seismic = np.asarray(seismic)
        n_samples = seismic.shape[0]
        if n_samples == 0:
            raise ValueError("empty evaluation set")
        limit = n_samples if batch_size is None else max(1, int(batch_size))
        chunks = [model.predict_batch(seismic[start:start + limit])
                  for start in range(0, n_samples, limit)]
    if len(chunks) == 1:
        return np.asarray(chunks[0])
    return np.concatenate(chunks, axis=0)


def evaluate_data_source(model: Model, source, split: str = "test",
                         batch_size: Optional[int] = None) -> Dict[str, float]:
    """Split-prefixed SSIM / MSE of ``model`` over a data source.

    Seismic data streams through ``source.gather`` in ``batch_size`` chunks;
    only the (small) velocity maps and predictions are held in full.
    """
    n_samples = len(source)
    if n_samples == 0:
        raise ValueError("empty evaluation set")
    limit = n_samples if batch_size is None else max(1, int(batch_size))
    predictions, targets = [], []
    with get_telemetry().span("eval"):
        for start in range(0, n_samples, limit):
            seismic, velocity = source.gather(
                np.arange(start, min(start + limit, n_samples)))
            predictions.append(model.predict_batch(seismic))
            targets.append(velocity)
        metrics = evaluate_predictions(np.concatenate(predictions, axis=0),
                                       np.concatenate(targets, axis=0))
    return {f"{split}_ssim": metrics["ssim"],
            f"{split}_mse": metrics["mse"]}


def evaluate_model_arrays(model: Model, seismic: np.ndarray,
                          velocity: np.ndarray, split: str = "test",
                          batch_size: Optional[int] = None) -> Dict[str, float]:
    """Split-prefixed SSIM / MSE of ``model`` over stacked arrays."""
    return evaluate_data_source(model, ArrayDataSource(seismic, velocity),
                                split=split, batch_size=batch_size)


# --------------------------------------------------------------------------- #
# step strategies
# --------------------------------------------------------------------------- #
class StepStrategy:
    """How one mini-batch becomes accumulated gradients.

    The trainer calls ``optimizer.zero_grad()`` before and
    ``optimizer.step()`` after :meth:`step`, so a strategy only accumulates
    gradients into the model's parameter tensors and returns the mini-batch
    loss.
    """

    name = "base"

    def batch_size(self, model: Model, config: TrainingConfig) -> int:
        """Mini-batch size this strategy trains with."""
        return config.batch_size

    def step(self, model: Model, seismic: np.ndarray,
             velocity: np.ndarray) -> float:
        """Accumulate gradients of one mini-batch; return its mean loss."""
        raise NotImplementedError


class QuantumBatchedAdjointStep(StepStrategy):
    """One stacked forward/backward sweep per mini-batch (QuGeoVQC)."""

    name = "quantum-batched-adjoint"

    def step(self, model: QuGeoVQC, seismic: np.ndarray,
             velocity: np.ndarray) -> float:
        return model.accumulate_gradients_batch(seismic, velocity)


class QuantumPerSampleStep(StepStrategy):
    """Per-sample adjoint sweeps for backends without batched support."""

    name = "quantum-per-sample"

    def step(self, model: QuGeoVQC, seismic: np.ndarray,
             velocity: np.ndarray) -> float:
        weight = 1.0 / len(seismic)
        loss = 0.0
        for sample, target in zip(seismic, velocity):
            loss += weight * model.accumulate_gradients(sample, target,
                                                        weight=weight)
        return loss


class QuBatchStep(StepStrategy):
    """QuBatch SIMD execution: the circuit itself carries the mini-batch."""

    name = "qubatch"

    def batch_size(self, model: QuBatchVQC, config: TrainingConfig) -> int:
        return model.batch_capacity

    def step(self, model: QuBatchVQC, seismic: np.ndarray,
             velocity: np.ndarray) -> float:
        return model.accumulate_gradients(seismic, velocity)


class ClassicalAutogradStep(StepStrategy):
    """Reverse-mode autograd through the :mod:`repro.nn` graph."""

    name = "classical-autograd"

    def __init__(self) -> None:
        self._loss_fn = MSELoss()

    def step(self, model: ClassicalFWIModel, seismic: np.ndarray,
             velocity: np.ndarray) -> float:
        output = model.forward(seismic)
        if model.decoder == "pixel":
            prediction = output.reshape(*velocity.shape)
        else:
            prediction = model.expand_prediction(output)
        loss = self._loss_fn(prediction, velocity)
        loss.backward()
        return loss.item()


def select_step_strategy(model: Model) -> StepStrategy:
    """Pick the step strategy matching ``model`` and its backend.

    Custom model classes must either match one of the known families or be
    trained with an explicit ``Trainer(config, strategy=...)``.
    """
    if isinstance(model, QuBatchVQC):
        return QuBatchStep()
    if isinstance(model, ClassicalFWIModel):
        return ClassicalAutogradStep()
    backend = getattr(model, "backend", None)
    if (hasattr(model, "accumulate_gradients_batch") and backend is not None
            and backend.capabilities.batched_adjoint):
        return QuantumBatchedAdjointStep()
    if hasattr(model, "accumulate_gradients"):
        return QuantumPerSampleStep()
    raise TypeError(
        f"no step strategy for {type(model).__name__}: the model matches no "
        "known family and has no accumulate_gradients method — pass an "
        "explicit strategy to Trainer(config, strategy=...)")


# --------------------------------------------------------------------------- #
# callbacks
# --------------------------------------------------------------------------- #
@dataclass
class TrainerState:
    """Mutable context the engine shares with its callbacks."""

    trainer: "Trainer"
    config: TrainingConfig
    model: Model
    strategy: StepStrategy
    optimizer: Adam
    scheduler: CosineAnnealingLR
    rng: np.random.Generator
    logger: RunLogger
    #: Compute-precision policy resolved from ``config.dtype`` (or the
    #: ``QUGEO_DTYPE`` environment variable when the config leaves it unset).
    policy: Optional[DTypePolicy] = None
    #: Data sources (``ArrayDataSource`` or a streaming ShardLoader).
    train_source: object = None
    test_source: Optional[object] = None
    callbacks: List["Callback"] = field(default_factory=list)
    #: Dataset fingerprints, computed once per run (the arrays are immutable
    #: for the whole train() call) and embedded in every checkpoint.
    train_fingerprint: Optional[Dict[str, object]] = None
    test_fingerprint: Optional[Dict[str, object]] = None
    epoch: int = 0
    metrics: Dict[str, float] = field(default_factory=dict)
    stop_training: bool = False
    stop_reason: str = ""
    #: Set by callbacks that overwrite the model's weights (e.g. a best-model
    #: restore) so cached evaluations of the old weights are not reused.
    model_mutated: bool = False


class Callback:
    """Hooks into the engine's epoch loop.

    ``on_train_begin`` runs once per :meth:`Trainer.train` call, before any
    checkpoint is restored — stateful callbacks reset their per-run state
    there, so one instance can be reused across runs.  ``on_epoch_end`` runs
    after the epoch's updates but *before* the metrics are logged, so
    callbacks can contribute metrics (this is how test-set evaluation is
    wired in).  ``on_epoch_logged`` runs after logging, so callbacks that
    persist or act on the recorded state (checkpoints, early stopping) see a
    history that includes the current epoch.

    Checkpoints include every callback's :meth:`state_dict` (matched back by
    position and class name on resume), so resuming with the same callback
    list continues stateful callbacks — patience counters, best-model
    trackers, cached evaluations — exactly where they left off.
    """

    def on_train_begin(self, state: TrainerState) -> None:
        pass

    def on_resume(self, state: TrainerState) -> None:
        """Called after this callback's state is restored from a checkpoint.

        A callback whose restored state implies the run should not continue
        (e.g. an already-fired early stop) re-asserts ``state.stop_training``
        here; a checkpoint that merely interrupted a healthy run resumes.
        """

    def on_epoch_end(self, state: TrainerState) -> None:
        pass

    def on_epoch_logged(self, state: TrainerState) -> None:
        pass

    def on_train_end(self, state: TrainerState) -> None:
        pass

    def state_dict(self) -> Dict[str, object]:
        """Per-run state worth checkpointing (stateless callbacks: empty)."""
        return {}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore state produced by :meth:`state_dict`."""

    @property
    def checkpoint_key(self) -> Optional[str]:
        """Identity used to pair saved state with callbacks on resume.

        Callbacks of the same class are told apart by this key (e.g. the
        monitored metric), so two ``EarlyStopping`` instances cannot claim
        each other's patience counters when the caller reorders them.
        """
        return None


class EvalCallback(Callback):
    """Evaluate the test split on the configured cadence.

    Metrics are written into ``state.metrics`` before logging.  The last
    evaluation is cached as ``(epoch, metrics)`` so the trainer can reuse a
    final-epoch evaluation for ``final_metrics`` instead of recomputing it.
    """

    def __init__(self, every: Optional[int] = None,
                 batch_size: Optional[int] = None) -> None:
        if every is not None and every < 1:
            raise ValueError("every must be at least 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.every = every
        self.batch_size = batch_size
        self.last_eval: Optional[Tuple[int, Dict[str, float]]] = None

    @property
    def checkpoint_key(self) -> str:
        return f"{self.every}|{self.batch_size}"

    def on_train_begin(self, state: TrainerState) -> None:
        self.last_eval = None

    def state_dict(self) -> Dict[str, object]:
        if self.last_eval is None:
            return {}
        return {"last_eval": self.last_eval}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        cached = state.get("last_eval")
        self.last_eval = (int(cached[0]), dict(cached[1])) if cached else None

    def should_evaluate(self, state: TrainerState) -> bool:
        every = self.every if self.every is not None else state.config.eval_every
        return ((state.epoch + 1) % every == 0
                or state.epoch == state.config.epochs - 1)

    def on_epoch_end(self, state: TrainerState) -> None:
        if state.test_source is None or not self.should_evaluate(state):
            return
        batch_size = (self.batch_size if self.batch_size is not None
                      else state.config.eval_batch_size)
        metrics = evaluate_data_source(state.model, state.test_source,
                                       batch_size=batch_size)
        state.metrics.update(metrics)
        self.last_eval = (state.epoch, dict(metrics))


class TelemetryCallback(Callback):
    """Feed per-epoch timing from the telemetry registry into the metric log.

    Added automatically by :meth:`Trainer.train` whenever telemetry is
    recording (``QUGEO_TELEMETRY=summary``/``trace``); appended after every
    other callback so the span totals it differences already include the
    current epoch's evaluation.  Contributed metrics:

    * ``epoch_seconds`` — wall time since the previous epoch's hook (the
      first epoch measures from ``on_train_begin``), so it includes the
      post-logging hooks of the *previous* epoch (checkpoint saves, ...);
    * ``step_seconds`` / ``eval_seconds`` — per-epoch deltas of the matching
      telemetry span totals (summed over every path ending in that leaf).

    Stateless as far as checkpoints are concerned (``state_dict`` is empty):
    a resumed run simply restarts its deltas from the resume point, and runs
    recorded with telemetry off resume cleanly with it on (and vice versa).
    """

    #: span leaf name -> metric key for the per-epoch delta.
    SPAN_METRICS = {"step": "step_seconds", "eval": "eval_seconds"}

    def __init__(self) -> None:
        self._mark: Optional[float] = None
        self._baseline: Dict[str, float] = {}

    def _leaf_totals(self, telemetry) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for path, total in telemetry.span_totals().items():
            leaf = path.rsplit("/", 1)[-1]
            if leaf in self.SPAN_METRICS:
                totals[leaf] = totals.get(leaf, 0.0) + total
        return totals

    def on_train_begin(self, state: TrainerState) -> None:
        self._mark = perf_counter()
        self._baseline = self._leaf_totals(get_telemetry())

    def on_epoch_end(self, state: TrainerState) -> None:
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return
        now = perf_counter()
        if self._mark is not None:
            state.metrics["epoch_seconds"] = now - self._mark
        self._mark = now
        totals = self._leaf_totals(telemetry)
        for leaf, metric in self.SPAN_METRICS.items():
            delta = totals.get(leaf, 0.0) - self._baseline.get(leaf, 0.0)
            if delta > 0.0:
                state.metrics[metric] = delta
        self._baseline = totals
        telemetry.counter("trainer.epochs").inc()


class EarlyStopping(Callback):
    """Stop training when a monitored metric stops improving."""

    def __init__(self, monitor: str = "train_loss", patience: int = 5,
                 min_delta: float = 0.0, mode: str = "min") -> None:
        if patience < 1:
            raise ValueError("patience must be at least 1")
        if mode not in ("min", "max"):
            raise ValueError("mode must be 'min' or 'max'")
        self.monitor = monitor
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.mode = mode
        self.best: Optional[float] = None
        self.wait = 0
        self.stopped_epoch: Optional[int] = None

    def on_train_begin(self, state: TrainerState) -> None:
        self.best = None
        self.wait = 0
        self.stopped_epoch = None

    def state_dict(self) -> Dict[str, object]:
        return {"best": self.best, "wait": self.wait,
                "stopped_epoch": self.stopped_epoch}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.best = state["best"]
        self.wait = int(state["wait"])
        self.stopped_epoch = state["stopped_epoch"]

    def on_resume(self, state: TrainerState) -> None:
        # A checkpoint written at the stopping epoch stays stopped: the run
        # converged, it was not interrupted.
        if self.stopped_epoch is not None:
            state.stop_training = True
            state.stop_reason = (f"early stopping fired at epoch "
                                 f"{self.stopped_epoch} before the checkpoint")

    @property
    def checkpoint_key(self) -> str:
        return f"{self.monitor}|{self.mode}|{self.patience}|{self.min_delta}"

    def _improved(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def on_epoch_logged(self, state: TrainerState) -> None:
        value = state.metrics.get(self.monitor)
        if value is None:
            return
        if self._improved(float(value)):
            self.best = float(value)
            self.wait = 0
            return
        self.wait += 1
        if self.wait >= self.patience:
            self.stopped_epoch = state.epoch
            state.stop_training = True
            state.stop_reason = (f"early stopping: no {self.monitor} "
                                 f"improvement in {self.patience} epochs")


class BestModelTracker(Callback):
    """Track (and optionally restore) the best model seen during training."""

    def __init__(self, monitor: str = "train_loss", mode: str = "min",
                 restore_best: bool = False) -> None:
        if mode not in ("min", "max"):
            raise ValueError("mode must be 'min' or 'max'")
        self.monitor = monitor
        self.mode = mode
        self.restore_best = restore_best
        self.best_value: Optional[float] = None
        self.best_epoch: Optional[int] = None
        self.best_state: Optional[Dict[str, np.ndarray]] = None

    def on_train_begin(self, state: TrainerState) -> None:
        self.best_value = None
        self.best_epoch = None
        self.best_state = None

    def state_dict(self) -> Dict[str, object]:
        return {"best_value": self.best_value, "best_epoch": self.best_epoch,
                "best_state": self.best_state}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.best_value = state["best_value"]
        self.best_epoch = state["best_epoch"]
        self.best_state = state["best_state"]

    @property
    def checkpoint_key(self) -> str:
        return f"{self.monitor}|{self.mode}"

    def _improved(self, value: float) -> bool:
        if self.best_value is None:
            return True
        return (value < self.best_value if self.mode == "min"
                else value > self.best_value)

    def on_epoch_logged(self, state: TrainerState) -> None:
        value = state.metrics.get(self.monitor)
        if value is None or not self._improved(float(value)):
            return
        self.best_value = float(value)
        self.best_epoch = state.epoch
        self.best_state = state.model.state_dict()

    def on_train_end(self, state: TrainerState) -> None:
        if self.restore_best and self.best_state is not None:
            state.model.load_state_dict(self.best_state)
            state.model_mutated = True


class Checkpoint(Callback):
    """Persist the full training state every ``every`` epochs.

    The file at ``path`` is overwritten with the latest state, captured
    *after* the epoch's metrics are logged and after every other callback's
    hooks have run (the trainer orders Checkpoint instances last), so
    ``Trainer.train(..., resume_from=path)`` picks the run up at the next
    epoch with an intact metric history, optimiser state, shuffle-generator
    state and up-to-date callback state.
    """

    def __init__(self, path: str, every: int = 1,
                 save_on_train_end: bool = False) -> None:
        if every < 1:
            raise ValueError("every must be at least 1")
        self.path = path
        self.every = int(every)
        self.save_on_train_end = save_on_train_end

    def _save(self, state: TrainerState) -> None:
        # Rotate the previous checkpoint to ``.bak`` before overwriting, so
        # a corrupted primary (torn copy, flipped bits after the atomic
        # write) still leaves a last-good snapshot for resume_from to fall
        # back to.
        if os.path.exists(self.path):
            os.replace(self.path, str(self.path) + BACKUP_SUFFIX)
        save_checkpoint(self.path, state.trainer.capture_state(state))

    def on_epoch_logged(self, state: TrainerState) -> None:
        if (state.epoch + 1) % self.every == 0:
            self._save(state)

    def on_train_end(self, state: TrainerState) -> None:
        # A callback that replaced the model's weights (best-model restore)
        # left optimiser/scheduler/RNG state from a different epoch than the
        # weights — such a mixture is not a point on any real trajectory, so
        # it must not be written as a resumable checkpoint.
        if self.save_on_train_end and not state.model_mutated:
            self._save(state)


# --------------------------------------------------------------------------- #
# the engine
# --------------------------------------------------------------------------- #
class Trainer:
    """Mini-batch Adam training of any :class:`Model` in the stack.

    Parameters
    ----------
    config:
        Optimiser settings shared by every model family.
    strategy:
        Explicit :class:`StepStrategy`; ``None`` selects one from the model
        (:func:`select_step_strategy`).
    """

    def __init__(self, config: TrainingConfig = None,
                 strategy: Optional[StepStrategy] = None) -> None:
        self.config = config or TrainingConfig()
        self.strategy = strategy
        # config.dtype = None defers to QUGEO_DTYPE and then float64, so the
        # default path is unchanged; the resolved policy is recorded here and
        # handed to callbacks/strategies through TrainerState.policy.
        self.policy = get_dtype_policy(self.config.dtype)

    def train(self, model: Model,
              train_dataset: FWIDataset,
              test_dataset: Optional[FWIDataset] = None,
              logger: Optional[RunLogger] = None,
              callbacks: Sequence[Callback] = (),
              resume_from: Union[str, Dict[str, object], None] = None
              ) -> TrainingResult:
        """Train ``model`` on a scaled dataset.

        Parameters
        ----------
        model:
            Any object satisfying the :class:`Model` protocol.
        train_dataset, test_dataset:
            Scaled datasets; the test split is evaluated on the
            ``eval_every`` cadence and for ``final_metrics``.
        logger:
            Metric sink; a fresh :class:`~repro.utils.logging.RunLogger` by
            default.
        callbacks:
            Extra :class:`Callback` hooks.  An :class:`EvalCallback` is
            added automatically unless one is supplied.
        resume_from:
            Path to (or payload of) a checkpoint written by
            :class:`Checkpoint` / :meth:`capture_state`.  Restores model,
            optimiser, scheduler, RNG and metric history, then continues
            from the next epoch — the resumed trajectory matches the
            uninterrupted one exactly.  Checkpoints are pickle files: only
            resume from files you trust.
        """
        config = self.config
        strategy = self.strategy or select_step_strategy(model)
        rng = ensure_rng(config.seed)
        logger = logger or RunLogger(name=getattr(model, "name", strategy.name),
                                     verbose=config.verbose,
                                     print_every=config.eval_every)
        train_source = _as_data_source(train_dataset)
        test_source = (_as_data_source(test_dataset)
                       if test_dataset is not None and len(test_dataset)
                       else None)

        optimizer = Adam(model.parameter_tensors(), lr=config.learning_rate)
        scheduler = CosineAnnealingLR(optimizer, t_max=config.epochs,
                                      eta_min=config.eta_min)

        callbacks = list(callbacks)
        evaluator = next((cb for cb in callbacks
                          if isinstance(cb, EvalCallback)), None)
        if evaluator is None:
            evaluator = EvalCallback()
            callbacks.insert(0, evaluator)

        telemetry = get_telemetry()
        if telemetry.enabled and not any(isinstance(cb, TelemetryCallback)
                                         for cb in callbacks):
            # Appended last so the span totals it differences already include
            # this epoch's evaluation (EvalCallback runs earlier).
            callbacks.append(TelemetryCallback())

        state = TrainerState(trainer=self, config=config, model=model,
                             strategy=strategy, optimizer=optimizer,
                             scheduler=scheduler, rng=rng, logger=logger,
                             policy=self.policy,
                             train_source=train_source,
                             test_source=test_source, callbacks=callbacks,
                             train_fingerprint=_dataset_fingerprint(train_source),
                             test_fingerprint=_dataset_fingerprint(test_source))

        # Reset per-run callback state first so a restore below re-loads the
        # checkpointed state on top of a clean slate.
        for callback in callbacks:
            callback.on_train_begin(state)

        start_epoch = 0
        if resume_from is not None:
            payload = self._resolve_resume(resume_from, telemetry)
            if payload is not None:
                start_epoch = self._restore(state, payload)

        n_samples = len(train_source)
        batch_size = strategy.batch_size(model, config)
        last_epoch_run = start_epoch - 1
        # Keep state.epoch consistent even when the loop body never runs
        # (resuming a finished or already-stopped run): a train-end
        # checkpoint must re-record the restored epoch, not epoch 1.
        state.epoch = start_epoch - 1
        for epoch in range(start_epoch, config.epochs):
            if state.stop_training:
                # A restored checkpoint may carry a stop decision (e.g. the
                # run early-stopped right before it was saved) — honour it
                # instead of training past the stop.
                break
            state.epoch = epoch
            # Capture before the scheduler advances so the log records the
            # LR the optimiser actually used for this epoch's updates.
            epoch_lr = optimizer.lr
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            n_batches = 0
            nan_batch_loss: Optional[float] = None
            with telemetry.span("trainer.epoch"):
                for start in range(0, n_samples, batch_size):
                    with telemetry.span("step"):
                        batch_seismic, batch_velocity = train_source.gather(
                            order[start:start + batch_size])
                        optimizer.zero_grad()
                        batch_loss = strategy.step(model, batch_seismic,
                                                   batch_velocity)
                        if not np.isfinite(batch_loss):
                            # Halt before the poisoned update is applied —
                            # the model's weights are still the last finite
                            # iterate.  "raise" surfaces the batch; "stop"
                            # ends the run with a nan_loss flag in history.
                            telemetry.counter("trainer.nan_loss").inc()
                            if config.nan_policy == "raise":
                                raise FloatingPointError(
                                    f"non-finite loss {batch_loss!r} in "
                                    f"epoch {epoch} (batch at sample "
                                    f"{start})")
                            nan_batch_loss = float(batch_loss)
                            state.stop_training = True
                            state.stop_reason = (
                                f"non-finite loss {batch_loss!r} in epoch "
                                f"{epoch}; optimiser update skipped")
                            break
                        epoch_loss += batch_loss
                        optimizer.step()
                    n_batches += 1
                scheduler.step()
                train_loss = (epoch_loss / max(1, n_batches)
                              if nan_batch_loss is None else nan_batch_loss)
                state.metrics = {"train_loss": train_loss, "lr": epoch_lr}
                if nan_batch_loss is not None:
                    state.metrics["nan_loss"] = 1.0
                for callback in callbacks:
                    callback.on_epoch_end(state)
            logger.log(epoch, **state.metrics)
            # Checkpoint hooks run after every other callback so the saved
            # snapshot includes their up-to-date state for this epoch
            # (patience counters, best-model trackers) regardless of the
            # order the caller listed them in.
            for callback in self._checkpoints_last(callbacks):
                callback.on_epoch_logged(state)
            last_epoch_run = epoch
            if state.stop_training:
                if config.verbose and state.stop_reason:
                    print(f"[{logger.name}] stopping at epoch {epoch}: "
                          f"{state.stop_reason}", file=sys.stderr)
                break

        # on_train_end runs first (it may replace the model's weights, e.g.
        # a best-model restore); the final evaluation then scores the model
        # the caller actually receives.
        for callback in self._checkpoints_last(callbacks):
            callback.on_train_end(state)
        final_metrics = self._final_metrics(state, evaluator, last_epoch_run)
        return TrainingResult(model=model, logger=logger,
                              final_metrics=final_metrics)

    @staticmethod
    def _checkpoints_last(callbacks: Sequence[Callback]) -> List[Callback]:
        """Stable order with every :class:`Checkpoint` moved to the end."""
        ordinary = [cb for cb in callbacks if not isinstance(cb, Checkpoint)]
        snapshots = [cb for cb in callbacks if isinstance(cb, Checkpoint)]
        return ordinary + snapshots

    # ------------------------------------------------------------------ #
    # final metrics (reusing the last epoch's evaluation when possible)
    # ------------------------------------------------------------------ #
    def _final_metrics(self, state: TrainerState, evaluator: EvalCallback,
                       last_epoch_run: int) -> Dict[str, float]:
        batch_size = (evaluator.batch_size if evaluator.batch_size is not None
                      else state.config.eval_batch_size)
        if state.test_source is not None:
            cached = evaluator.last_eval
            if (cached is not None and cached[0] == last_epoch_run
                    and not state.model_mutated):
                # The final epoch was just evaluated in the epoch loop —
                # reuse it instead of running the test set a second time.
                return dict(cached[1])
            return evaluate_data_source(state.model, state.test_source,
                                        batch_size=batch_size)
        return evaluate_data_source(state.model, state.train_source,
                                    split="train", batch_size=batch_size)

    # ------------------------------------------------------------------ #
    # checkpoint capture / restore
    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_resume(resume_from: Union[str, Dict[str, object]],
                        telemetry) -> Optional[Dict[str, object]]:
        """Load the resume checkpoint, falling back to last-good on damage.

        An in-memory payload passes through.  A path is resolved through
        :func:`repro.utils.serialization.resolve_checkpoint`: a corrupt or
        truncated primary falls back to its ``.bak`` rotation with a warning
        (and a ``trainer.checkpoint.fallback`` telemetry count); when no
        candidate loads the run starts fresh with a warning
        (``trainer.checkpoint.start_fresh``) instead of crashing — the
        serving-system posture is "a damaged checkpoint costs retraining
        time, never an outage".
        """
        if isinstance(resume_from, dict):
            return resume_from
        payload, loaded_path, problems = resolve_checkpoint(resume_from)
        if payload is None:
            telemetry.counter("trainer.checkpoint.start_fresh").inc()
            warnings.warn(
                "resume_from checkpoint unusable, starting fresh "
                f"({'; '.join(problems)})", stacklevel=3)
            return None
        if loaded_path != str(resume_from):
            telemetry.counter("trainer.checkpoint.fallback").inc()
            warnings.warn(
                f"resume_from checkpoint damaged, resuming from last-good "
                f"{loaded_path} ({'; '.join(problems)})", stacklevel=3)
        return payload

    def capture_state(self, state: TrainerState) -> Dict[str, object]:
        """Snapshot everything needed to continue the run bit-identically."""
        return {
            "version": CHECKPOINT_VERSION,
            "epoch": state.epoch + 1,
            "model_class": type(state.model).__name__,
            "model": state.model.state_dict(),
            "optimizer": state.optimizer.state_dict(),
            "scheduler": state.scheduler.state_dict(),
            "rng_state": state.rng.bit_generator.state,
            "logger": state.logger.state_dict(),
            "config": dataclasses.asdict(state.config),
            "train_data": state.train_fingerprint,
            "test_data": state.test_fingerprint,
            "callbacks": [(type(callback).__name__, callback.checkpoint_key,
                           callback.state_dict())
                          for callback in state.callbacks],
            "stop_training": state.stop_training,
            "stop_reason": state.stop_reason,
        }

    @staticmethod
    def _restore(state: TrainerState,
                 payload: Dict[str, object]) -> int:
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version!r}")
        expected = type(state.model).__name__
        found = payload.get("model_class")
        if found != expected:
            raise ValueError(f"checkpoint holds a {found}, cannot resume a "
                             f"{expected}")
        # The trajectory is only reproducible under the configuration that
        # produced the checkpoint; refuse silent divergence.  ``verbose`` is
        # cosmetic and ``eval_batch_size`` is trajectory-neutral (chunked
        # and unchunked evaluation agree), so both may differ.
        saved_config = dict(payload.get("config", {}))
        current_config = dataclasses.asdict(state.config)
        # Checkpoints written before the dtype field existed mean float64,
        # which is exactly what dtype=None resolves to; likewise pre-existing
        # checkpoints predate the nan_policy field, whose default is "stop"
        # (trajectory-identical on finite losses).
        saved_config.setdefault("dtype", None)
        saved_config.setdefault("nan_policy", "stop")
        for neutral in ("verbose", "eval_batch_size"):
            saved_config.pop(neutral, None)
            current_config.pop(neutral, None)
        if saved_config != current_config:
            changed = sorted(key for key in set(saved_config) | set(current_config)
                             if saved_config.get(key) != current_config.get(key))
            raise ValueError("checkpoint was written under a different "
                             f"training config (differs in: {changed})")
        saved_train = payload.get("train_data")
        if saved_train is not None and saved_train != state.train_fingerprint:
            raise ValueError(
                f"checkpoint was written against different training samples "
                f"({saved_train['seismic_shape'][0]} of them) — the restored "
                "shuffle state only reproduces the original run on the same "
                "dataset")
        state.model.load_state_dict(payload["model"])
        state.optimizer.load_state_dict(payload["optimizer"])
        state.scheduler.load_state_dict(payload["scheduler"])
        state.rng.bit_generator.state = payload["rng_state"]
        state.logger.load_state_dict(payload["logger"])
        # Stateful callbacks resume where they left off.  Each current
        # callback claims the first unclaimed saved entry matching its class
        # AND its checkpoint_key (robust to reordering, and two same-class
        # callbacks with different keys — e.g. different monitors — cannot
        # swap state); saved state nobody claims is reported so a
        # silently-reset patience counter cannot masquerade as an exact
        # resume.
        saved_callbacks = list(payload.get("callbacks", []))
        claimed = [False] * len(saved_callbacks)
        for callback in state.callbacks:
            identity = (type(callback).__name__, callback.checkpoint_key)
            for index, (saved_name, saved_key, saved_state) \
                    in enumerate(saved_callbacks):
                if not claimed[index] and identity == (saved_name, saved_key):
                    claimed[index] = True
                    callback.load_state_dict(saved_state)
                    break
        orphaned = sorted({saved_name
                           for index, (saved_name, saved_key, saved_state)
                           in enumerate(saved_callbacks)
                           if not claimed[index] and saved_state})
        if orphaned:
            warnings.warn(
                "checkpoint carries state for callbacks not present in this "
                f"run ({orphaned}); their behaviour restarts from scratch",
                stacklevel=2)
        # Rescoring a finished run against a different test split is
        # legitimate — but then the cached evaluation describes the old
        # split and must not be served as final_metrics.
        if payload.get("test_data") != state.test_fingerprint:
            for callback in state.callbacks:
                if isinstance(callback, EvalCallback):
                    callback.last_eval = None
        # The payload's stop_training/stop_reason fields are metadata only:
        # whether a restored run should stay stopped is the stopping
        # callback's call (EarlyStopping.on_resume re-asserts a fired stop),
        # so a checkpoint that merely interrupted a healthy run resumes.
        for callback in state.callbacks:
            callback.on_resume(state)
        return int(payload["epoch"])


class QuantumTrainer(Trainer):
    """Backwards-compatible alias: the unified :class:`Trainer` engine.

    Strategy selection (batched adjoint vs per-sample vs QuBatch) now lives
    in :func:`select_step_strategy` rather than the epoch loop.
    """


class ClassicalTrainer(Trainer):
    """Backwards-compatible alias: the unified :class:`Trainer` engine."""
