"""QuGeoData: physics-guided data scaling (Section 3.1 of the paper).

Quantum devices with <16 qubits can only amplitude-encode a few hundred
values, so OpenFWI's ``5 x 1000 x 70`` seismic cubes and ``70 x 70`` velocity
maps must be shrunk.  Three scalers are provided:

* :class:`DSampleScaler` — the baseline: nearest-neighbour resampling of both
  the waveform cube and the velocity map ("D-Sample").
* :class:`ForwardModelingScaler` — the physics-guided method ("Q-D-FW"):
  downsample the velocity map, then *re-simulate* the seismic data on the
  coarse model with a source wavelet whose dominant frequency is lowered so
  the coarser sampling does not alias the wavefield (the paper lowers 15 Hz
  to 8 Hz).  Requires the velocity map, so it is a training-time tool.
* :class:`CNNScaler` — the learning-based method ("Q-D-CNN"): a LeNet-like
  CNN trained to map raw seismic data directly to the physics-guided scaled
  representation, usable at inference time when no velocity map exists.

Every scaler produces :class:`ScaledSample` objects whose seismic payload has
the configured scaled shape and whose velocity map is normalised to [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.core.classical_models import CompressionCNN
from repro.core.config import QuGeoDataConfig
from repro.data.dataset import FWIDataset, FWISample
from repro.data.normalization import VelocityNormalizer
from repro.data.resample import bilinear_resample, nearest_neighbor_resample
from repro.nn import Adam, CosineAnnealingLR, MSELoss, Tensor
from repro.seismic.forward_modeling import forward_model_shot_gather
from repro.seismic.wavelets import dominant_frequency
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class ScaledSample(FWISample):
    """A training example after QuGeoData scaling.

    ``seismic`` has the configured scaled shape (e.g. ``4 x 8 x 8``) and
    ``velocity`` is the scaled map normalised to [0, 1].  ``metadata`` keeps
    the scaling method and provenance of the original sample.
    """

    @property
    def method(self) -> str:
        """Name of the scaling method that produced this sample."""
        return str(self.metadata.get("scaling_method", "unknown"))

    def seismic_vector(self) -> np.ndarray:
        """The scaled seismic data flattened for the quantum encoder."""
        return self.seismic.reshape(-1)


class BaseScaler:
    """Shared plumbing of the three QuGeoData scalers."""

    #: Short name used in result tables (matches the paper's labels).
    name = "base"

    def __init__(self, config: QuGeoDataConfig = None) -> None:
        self.config = config or QuGeoDataConfig()
        self.normalizer = VelocityNormalizer(*self.config.velocity_range)

    # -- velocity ------------------------------------------------------- #
    def scale_velocity(self, velocity: np.ndarray,
                       method: str = "nearest") -> np.ndarray:
        """Downsample a physical velocity map and normalise it to [0, 1]."""
        velocity = np.asarray(velocity, dtype=np.float64)
        target = self.config.scaled_velocity_shape
        if velocity.shape != tuple(target):
            if method == "nearest":
                velocity = nearest_neighbor_resample(velocity, target)
            else:
                velocity = bilinear_resample(velocity, target)
        return np.clip(self.normalizer.normalize(velocity), 0.0, 1.0)

    # -- seismic -------------------------------------------------------- #
    def scale_seismic(self, sample: FWISample) -> np.ndarray:
        raise NotImplementedError

    def scale_sample(self, sample: FWISample) -> ScaledSample:
        """Scale one full-resolution sample."""
        seismic = self.scale_seismic(sample)
        velocity = self.scale_velocity(sample.velocity, method=self.velocity_method)
        metadata = dict(sample.metadata)
        metadata["scaling_method"] = self.name
        return ScaledSample(seismic=seismic, velocity=velocity, metadata=metadata)

    def scale_dataset(self, dataset: Iterable[FWISample]) -> FWIDataset:
        """Scale every sample of ``dataset``."""
        scaled = [self.scale_sample(sample) for sample in dataset]
        return FWIDataset(scaled, name=f"scaled-{self.name}")

    # -- serialisation --------------------------------------------------- #
    def state_dict(self) -> dict:
        """Everything beyond the config needed to rebuild this scaler."""
        return {}

    #: Velocity-map resampling method used by :meth:`scale_sample`.
    velocity_method = "nearest"


class DSampleScaler(BaseScaler):
    """Naive nearest-neighbour downsampling of waveforms and velocity maps."""

    name = "D-Sample"
    velocity_method = "nearest"

    def scale_seismic(self, sample: FWISample) -> np.ndarray:
        seismic = np.asarray(sample.seismic, dtype=np.float64)
        if seismic.ndim != 3:
            raise ValueError("expected seismic data of shape (sources, time, receivers)")
        return nearest_neighbor_resample(seismic, self.config.scaled_seismic_shape)


class ForwardModelingScaler(BaseScaler):
    """Physics-guided scaling: re-simulate seismic data on the coarse model.

    Parameters
    ----------
    config:
        Scaling targets.
    simulation_shape:
        Grid used for the coarse re-simulation.  The velocity map is
        resampled to this shape (kept larger than the final velocity target
        so the wave physics stays resolvable), the receivers of the scaled
        survey are spread across its surface, and the recorded traces are
        decimated to the target time axis.
    simulation_steps:
        Number of finite-difference time steps of the re-simulation before
        decimation to ``config.scaled_seismic_shape[1]`` samples.
    """

    name = "Q-D-FW"
    velocity_method = "bilinear"

    def __init__(self, config: QuGeoDataConfig = None,
                 simulation_shape: Tuple[int, int] = (32, 32),
                 simulation_steps: int = 256) -> None:
        super().__init__(config)
        if simulation_steps < self.config.scaled_seismic_shape[1]:
            raise ValueError("simulation_steps must cover the scaled time axis")
        self.simulation_shape = tuple(int(s) for s in simulation_shape)
        self.simulation_steps = int(simulation_steps)

    def scaled_frequency(self, original_steps: int) -> float:
        """Source frequency used for the coarse re-simulation."""
        if self.config.scaled_peak_frequency is not None:
            return float(self.config.scaled_peak_frequency)
        return dominant_frequency(self.config.original_peak_frequency,
                                  original_steps,
                                  self.config.scaled_seismic_shape[1])

    def scale_seismic(self, sample: FWISample) -> np.ndarray:
        n_sources, n_time, n_receivers = self.config.scaled_seismic_shape
        velocity = np.asarray(sample.velocity, dtype=np.float64)
        coarse = bilinear_resample(velocity, self.simulation_shape)
        # Physical extent of the model is preserved, so the grid spacing grows
        # in proportion to the downsampling factor.  The sample's own grid
        # spacing (recorded by the dataset builder) takes precedence over the
        # config default so reduced-resolution datasets keep a 700 m domain.
        sample_dx = float(sample.metadata.get("dx", self.config.dx))
        original_width = velocity.shape[1] * sample_dx
        dx = original_width / self.simulation_shape[1]
        original_steps = (sample.seismic.shape[1]
                          if np.ndim(sample.seismic) == 3 else n_time)
        frequency = self.scaled_frequency(original_steps)
        gather = forward_model_shot_gather(
            coarse,
            n_sources=n_sources,
            n_receivers=n_receivers,
            n_steps=self.simulation_steps,
            dx=dx,
            peak_frequency=frequency,
        )
        # Decimate the time axis to the target number of samples.
        time_indices = np.linspace(0, self.simulation_steps - 1, n_time).astype(int)
        return gather[:, time_indices, :]

    def state_dict(self) -> dict:
        return {"simulation_shape": self.simulation_shape,
                "simulation_steps": self.simulation_steps}


class CNNScaler(BaseScaler):
    """Learning-based scaling: a CNN maps raw seismic data to ``phyD``.

    Build it with :meth:`train`, which fits the compressor on
    ``(raw seismic, physics-guided scaled seismic)`` pairs generated by a
    reference :class:`ForwardModelingScaler` — exactly the dataset
    construction described in Section 3.1.2.
    """

    name = "Q-D-CNN"
    velocity_method = "bilinear"

    def __init__(self, compressor: CompressionCNN,
                 config: QuGeoDataConfig = None) -> None:
        super().__init__(config)
        self.compressor = compressor

    @classmethod
    def train(cls, dataset: Iterable[FWISample],
              config: QuGeoDataConfig = None,
              reference_scaler: Optional[ForwardModelingScaler] = None,
              epochs: int = 60,
              learning_rate: float = 0.01,
              batch_size: int = 16,
              hidden_channels: Tuple[int, int] = (4, 8),
              rng: RngLike = None,
              verbose: bool = False) -> "CNNScaler":
        """Fit the Q-D-CNN compressor and return the ready-to-use scaler.

        Parameters
        ----------
        dataset:
            Full-resolution samples used to build the ``<D, phyD>`` pairs.
            The paper uses 500 samples disjoint from the FWI train/test data.
        reference_scaler:
            The physics-guided scaler that produces the regression targets;
            defaults to a :class:`ForwardModelingScaler` with ``config``.
        """
        config = config or QuGeoDataConfig()
        reference = reference_scaler or ForwardModelingScaler(config)
        samples = list(dataset)
        if not samples:
            raise ValueError("cannot train the compressor on an empty dataset")
        rng = ensure_rng(rng)

        raw = np.stack([np.asarray(s.seismic, dtype=np.float64) for s in samples])
        targets = np.stack([reference.scale_seismic(s).reshape(-1) for s in samples])

        compressor = CompressionCNN(input_shape=raw.shape[1:],
                                    output_size=config.scaled_seismic_size,
                                    hidden_channels=hidden_channels, rng=rng)
        optimizer = Adam(compressor.parameters(), lr=learning_rate)
        scheduler = CosineAnnealingLR(optimizer, t_max=epochs)
        loss_fn = MSELoss()

        n_samples = raw.shape[0]
        for epoch in range(epochs):
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n_samples, batch_size):
                batch = order[start:start + batch_size]
                optimizer.zero_grad()
                predictions = compressor(Tensor(raw[batch]))
                loss = loss_fn(predictions, targets[batch])
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
            scheduler.step()
            if verbose and (epoch + 1) % 10 == 0:
                print(f"[Q-D-CNN] epoch {epoch + 1}/{epochs} "
                      f"loss={epoch_loss / max(1, n_batches):.6f}")
        return cls(compressor, config)

    def scale_seismic(self, sample: FWISample) -> np.ndarray:
        compressed = self.compressor.compress(np.asarray(sample.seismic,
                                                         dtype=np.float64))
        return compressed.reshape(self.config.scaled_seismic_shape)

    def state_dict(self) -> dict:
        return {"input_shape": self.compressor.input_shape,
                "output_size": self.compressor.output_size,
                "hidden_channels": self.compressor.hidden_channels,
                "network": self.compressor.state_dict()}


def scale_dataset(scaler: BaseScaler, dataset: Iterable[FWISample]) -> FWIDataset:
    """Convenience alias for ``scaler.scale_dataset(dataset)``."""
    return scaler.scale_dataset(dataset)


# --------------------------------------------------------------------------- #
# scaler (de)serialisation — saved pipelines carry their scaler with them
# --------------------------------------------------------------------------- #
def scaler_state(scaler: BaseScaler) -> dict:
    """Self-describing snapshot of a scaler (method name + state)."""
    return {"method": scaler.name, "state": scaler.state_dict()}


def scaler_from_state(payload: dict,
                      config: QuGeoDataConfig = None) -> BaseScaler:
    """Rebuild a scaler from :func:`scaler_state` output and a data config."""
    method = payload["method"]
    state = payload.get("state", {})
    if method == DSampleScaler.name:
        return DSampleScaler(config)
    if method == ForwardModelingScaler.name:
        return ForwardModelingScaler(
            config,
            simulation_shape=tuple(state["simulation_shape"]),
            simulation_steps=int(state["simulation_steps"]))
    if method == CNNScaler.name:
        compressor = CompressionCNN(
            input_shape=tuple(state["input_shape"]),
            output_size=int(state["output_size"]),
            hidden_channels=tuple(state["hidden_channels"]))
        compressor.load_state_dict(state["network"])
        return CNNScaler(compressor, config)
    raise ValueError(f"unknown scaler method {method!r}")
