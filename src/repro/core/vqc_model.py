"""QuGeoVQC: the application-specific variational quantum circuit.

The model is the composition described in Section 3.2 of the paper:

* **Encoder** — the spatial-temporal (ST) amplitude encoder groups the scaled
  seismic data (one group per source when multiple groups are configured) and
  writes it onto the register amplitudes.
* **VQC** — ``n_blocks`` repetitions of the TorchQuantum ``U3+CU3`` block on
  the data qubits (12 blocks on 8 qubits gives the paper's 576 parameters).
  With several encoder groups, each group gets its own sub-VQC and the groups
  are entangled gradually with cross-group CU3 gates.
* **Decoder** — either pixel-wise (``Q-M-PX``): the magnitudes of the first
  ``depth*width`` amplitudes (read as marginal probabilities of the read-out
  qubits) scaled by a read-out factor, trained against Eq. 2; or layer-wise
  (``Q-M-LY``): one Pauli-Z expectation per velocity-map row, trained against
  Eq. 3, exploiting the flat layered structure of the subsurface.

Gradients with respect to the circuit parameters are computed with the
reverse-mode (adjoint) method in :mod:`repro.quantum.autodiff`, so a full
gradient costs roughly two circuit simulations regardless of the parameter
count.  Mini-batches go through :meth:`QuGeoVQC.loss_and_gradients_batch`,
which runs the whole batch as one stacked forward/backward sweep
(:func:`repro.quantum.autodiff.circuit_gradients_batched`) with vectorised
per-decoder loss heads; the per-sample API is a batch of one through the
same path.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.backends import get_backend
from repro.core.config import QuGeoVQCConfig
from repro.nn.tensor import Tensor
from repro.quantum.ansatz import grouped_st_ansatz, u3_cu3_ansatz
from repro.quantum.autodiff import circuit_gradients_batched
from repro.quantum.circuit import ParameterizedCircuit
from repro.quantum.encoding import STEncoder
from repro.quantum.measurement import (
    all_probabilities,
    marginal_probabilities_backward_batched,
    marginal_probabilities_batched,
    marginal_probabilities_from_probabilities,
    z_expectations_backward_batched,
    z_expectations_batched,
    z_expectations_from_probabilities,
)
from repro.utils.rng import RngLike, ensure_rng

_EPS = 1e-12


class QuGeoVQC:
    """Quantum seismic-to-velocity regressor.

    Parameters
    ----------
    config:
        Circuit configuration (see :class:`~repro.core.config.QuGeoVQCConfig`).
        ``config.n_batch_qubits`` must be 0 here; use
        :class:`~repro.core.qubatch.QuBatchVQC` for batched execution.
    rng:
        Seed / generator for the parameter initialisation.
    backend:
        Simulation engine (name, instance or ``None``).  ``None`` resolves
        ``config.backend`` and then the process default.
    """

    name = "QuGeoVQC"

    def __init__(self, config: QuGeoVQCConfig = None, rng: RngLike = None,
                 backend=None) -> None:
        self.config = config or QuGeoVQCConfig()
        if self.config.n_batch_qubits != 0:
            raise ValueError("QuGeoVQC does not batch; use QuBatchVQC instead")
        self.backend = get_backend(backend if backend is not None
                                   else self.config.backend)
        rng = ensure_rng(rng)
        self.encoder = STEncoder(n_groups=self.config.n_groups,
                                 qubits_per_group=self.config.qubits_per_group)
        self.n_qubits = self.config.total_qubits
        self.circuit = self._build_circuit()
        self.theta = Tensor(rng.normal(0.0, 0.3, size=self.circuit.n_params),
                            requires_grad=True)
        initial_scale = float(np.sqrt(np.prod(self.config.output_shape)) * 0.5)
        self.output_scale = Tensor(np.array([initial_scale]),
                                   requires_grad=self.config.trainable_output_scale)
        self.name = "Q-M-PX" if self.config.decoder == "pixel" else "Q-M-LY"

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build_circuit(self) -> ParameterizedCircuit:
        if self.config.n_groups == 1:
            return u3_cu3_ansatz(self.n_qubits, n_blocks=self.config.n_blocks)
        groups = [self.encoder.group_qubits(g) for g in range(self.config.n_groups)]
        return grouped_st_ansatz(groups, self.n_qubits,
                                 n_blocks=self.config.n_blocks,
                                 inter_group_blocks=self.config.inter_group_blocks)

    # ------------------------------------------------------------------ #
    # parameters
    # ------------------------------------------------------------------ #
    def parameter_tensors(self) -> Tuple[Tensor, ...]:
        """Tensors the optimiser updates (circuit angles and read-out scale)."""
        if self.config.decoder == "pixel" and self.config.trainable_output_scale:
            return (self.theta, self.output_scale)
        return (self.theta,)

    def num_parameters(self, include_readout: bool = False) -> int:
        """Number of quantum circuit parameters (576 for the paper's setup).

        ``include_readout=True`` also counts the classical read-out scale of
        the pixel decoder.
        """
        count = self.circuit.n_params
        if include_readout and self.config.decoder == "pixel" \
                and self.config.trainable_output_scale:
            count += 1
        return count

    @property
    def readout_qubits(self) -> Tuple[int, ...]:
        """Qubits measured by the decoder."""
        if self.config.decoder == "pixel":
            return tuple(range(self.config.readout_qubits_needed))
        return tuple(range(self.config.output_shape[0]))

    # ------------------------------------------------------------------ #
    # forward pass
    # ------------------------------------------------------------------ #
    def encode(self, seismic: np.ndarray) -> np.ndarray:
        """Amplitude-encode one flattened (or shaped) scaled seismic sample."""
        return self.encoder.encode(np.asarray(seismic, dtype=np.float64).reshape(-1))

    def run_circuit(self, seismic: np.ndarray) -> np.ndarray:
        """Return the output statevector for one sample."""
        state = self.encode(seismic)
        return self.circuit.run(state, self.theta.data, backend=self.backend)

    def decode_probabilities(self, probs: np.ndarray) -> np.ndarray:
        """Map a full-register probability vector to a velocity map.

        The probabilities may be exact (``|psi|^2`` — the :meth:`decode`
        path) or a shot-noise estimate from
        :func:`repro.quantum.measurement.sampled_probabilities` — the
        finite-shot readout policy in :mod:`repro.robustness` feeds estimated
        probabilities through this same decoder so ideal and sampled
        prediction differ only in the probability vector.
        """
        depth, width = self.config.output_shape
        if self.config.decoder == "pixel":
            marginal = marginal_probabilities_from_probabilities(
                probs, self.readout_qubits, self.n_qubits)
            amplitudes = np.sqrt(marginal[:depth * width] + _EPS)
            scale = float(self.output_scale.data[0])
            return (scale * amplitudes).reshape(depth, width)
        z = z_expectations_from_probabilities(probs, self.readout_qubits,
                                              self.n_qubits)
        rows = (z + 1.0) / 2.0
        return np.repeat(rows[:, None], width, axis=1)

    def decode(self, state: np.ndarray) -> np.ndarray:
        """Map an output statevector to a normalised velocity map."""
        state = np.asarray(state, dtype=np.complex128).reshape(-1)
        if state.size != 2**self.n_qubits:
            raise ValueError("state length does not match n_qubits")
        return self.decode_probabilities(all_probabilities(state))

    def predict(self, seismic: np.ndarray) -> np.ndarray:
        """Predict the normalised velocity map of one scaled seismic sample."""
        return self.decode(self.run_circuit(seismic))

    def predict_batch(self, seismic_batch: Sequence[np.ndarray]) -> np.ndarray:
        """Predict velocity maps for a sequence of samples.

        On a backend with ``batched_states`` the whole mini-batch of circuit
        executions runs as one stacked contraction.
        """
        if len(seismic_batch) > 1 and self.backend.capabilities.batched_states:
            states = np.stack([self.encode(sample) for sample in seismic_batch])
            outputs = self.circuit.run_batched(states, self.theta.data,
                                               backend=self.backend)
            return np.stack([self.decode(output) for output in outputs])
        return np.stack([self.predict(sample) for sample in seismic_batch])

    # ------------------------------------------------------------------ #
    # loss and gradients
    # ------------------------------------------------------------------ #
    def _pixel_loss_terms(self, outputs: np.ndarray, targets: np.ndarray
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised pixel-decoder loss terms of an output-state stack.

        A pure function of ``(outputs, targets)``: returns per-sample losses
        ``(B,)``, the co-state stack ``dL_b/d(psi_b*)`` of shape
        ``(B, 2**n)``, and the per-sample read-out-scale gradients ``(B,)``
        — the scale gradient is an explicit return value, never a closure
        side effect, so probing these terms repeatedly (finite differences,
        parameter-shift sweeps) cannot clobber it.
        """
        depth, width = self.config.output_shape
        scale = float(self.output_scale.data[0])
        probs = marginal_probabilities_batched(outputs, self.readout_qubits,
                                               self.n_qubits)
        amplitudes = np.sqrt(probs[:, :depth * width] + _EPS)
        predictions = (scale * amplitudes).reshape(-1, depth, width)
        diffs = predictions - targets
        flat_diffs = diffs.reshape(diffs.shape[0], -1)
        losses = np.mean(flat_diffs**2, axis=1)
        dloss_dpred = 2.0 * flat_diffs / flat_diffs.shape[1]
        scale_grads = np.sum(dloss_dpred * amplitudes, axis=1)
        dloss_dprob = np.zeros_like(probs)
        dloss_dprob[:, :depth * width] = dloss_dpred * scale * 0.5 / amplitudes
        lams = marginal_probabilities_backward_batched(
            outputs, self.readout_qubits, self.n_qubits, dloss_dprob)
        return losses, lams, scale_grads

    def _layer_loss_terms(self, outputs: np.ndarray, targets: np.ndarray
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised layer-decoder loss terms of an output-state stack."""
        depth, width = self.config.output_shape
        z = z_expectations_batched(outputs, self.readout_qubits, self.n_qubits)
        rows = (z + 1.0) / 2.0
        diffs = rows[:, :, None] - targets
        losses = np.mean(diffs.reshape(diffs.shape[0], -1)**2, axis=1)
        dloss_dpred = 2.0 * diffs / (depth * width)
        dloss_dz = 0.5 * dloss_dpred.sum(axis=2)
        lams = z_expectations_backward_batched(outputs, self.readout_qubits,
                                               self.n_qubits, dloss_dz)
        return losses, lams, np.zeros(outputs.shape[0])

    def _loss_terms(self, outputs: np.ndarray, targets: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-decoder ``(losses, co-states, scale gradients)`` of a stack."""
        if self.config.decoder == "pixel":
            return self._pixel_loss_terms(outputs, targets)
        return self._layer_loss_terms(outputs, targets)

    def _validate_targets(self, targets, batch: int) -> np.ndarray:
        depth, width = self.config.output_shape
        targets = np.stack([np.asarray(t, dtype=np.float64) for t in targets])
        if targets.shape != (batch, depth, width):
            raise ValueError(
                f"target shape {targets.shape[1:]} != {(depth, width)}")
        return targets

    def loss_and_gradients_batch(self, seismic_batch: Sequence[np.ndarray],
                                 targets: Sequence[np.ndarray]
                                 ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Per-sample losses and gradients of a whole mini-batch.

        Runs one stacked forward pass and one stacked adjoint sweep
        (:func:`repro.quantum.autodiff.circuit_gradients_batched`) instead of
        a Python loop over samples; on a backend without native
        ``batched_adjoint`` support the engine falls back to per-sample
        loops and stays correct.

        Returns the ``(B,)`` loss vector and a dict with a ``(B, n_params)``
        ``"theta"`` gradient matrix and (for the trainable pixel decoder) a
        ``(B,)`` ``"output_scale"`` gradient vector.
        """
        if len(seismic_batch) == 0:
            raise ValueError("empty batch")
        target_array = self._validate_targets(targets, len(seismic_batch))
        states = np.stack([self.encode(sample) for sample in seismic_batch])
        extras: Dict[str, np.ndarray] = {}

        def loss_head(outputs: np.ndarray):
            losses, lams, scale_grads = self._loss_terms(outputs, target_array)
            # circuit_gradients_batched invokes the head exactly once, on the
            # full batch, so this capture is single-assignment by contract.
            extras["output_scale"] = scale_grads
            return losses, lams

        losses, theta_grads = circuit_gradients_batched(
            self.circuit, self.theta.data, states, loss_head,
            backend=self.backend)
        gradients = {"theta": theta_grads}
        if self.config.decoder == "pixel" and self.config.trainable_output_scale:
            gradients["output_scale"] = extras["output_scale"]
        return losses, gradients

    def loss_and_gradients(self, seismic: np.ndarray,
                           target: np.ndarray) -> Tuple[float, Dict[str, np.ndarray]]:
        """Loss and parameter gradients for one (seismic, velocity) pair.

        Returns the scalar loss and a dict with gradients for ``"theta"`` and
        (for the pixel decoder) ``"output_scale"``.  Implemented as a batch
        of one through the stacked gradient path.
        """
        losses, batch_gradients = self.loss_and_gradients_batch([seismic],
                                                                [target])
        gradients = {"theta": batch_gradients["theta"][0]}
        if "output_scale" in batch_gradients:
            gradients["output_scale"] = batch_gradients["output_scale"].copy()
        return float(losses[0]), gradients

    def accumulate_gradients(self, seismic: np.ndarray,
                             target: np.ndarray, weight: float = 1.0) -> float:
        """Add ``weight``-scaled gradients of one sample into the parameter tensors."""
        loss, gradients = self.loss_and_gradients(seismic, target)
        theta_grad = weight * gradients["theta"]
        if self.theta.grad is None:
            self.theta.grad = theta_grad
        else:
            self.theta.grad = self.theta.grad + theta_grad
        if "output_scale" in gradients:
            scale_grad = weight * gradients["output_scale"]
            if self.output_scale.grad is None:
                self.output_scale.grad = scale_grad
            else:
                self.output_scale.grad = self.output_scale.grad + scale_grad
        return loss

    def accumulate_gradients_batch(self, seismic_batch: Sequence[np.ndarray],
                                   targets: Sequence[np.ndarray]) -> float:
        """Accumulate the batch-mean gradients into the parameter tensors.

        Equivalent to calling :meth:`accumulate_gradients` on every sample
        with ``weight = 1 / B``, but computed with one stacked
        forward/backward sweep.  Returns the mean loss over the batch.
        """
        losses, gradients = self.loss_and_gradients_batch(seismic_batch,
                                                          targets)
        theta_grad = gradients["theta"].mean(axis=0)
        if self.theta.grad is None:
            self.theta.grad = theta_grad
        else:
            self.theta.grad = self.theta.grad + theta_grad
        if "output_scale" in gradients:
            scale_grad = np.array([gradients["output_scale"].mean()])
            if self.output_scale.grad is None:
                self.output_scale.grad = scale_grad
            else:
                self.output_scale.grad = self.output_scale.grad + scale_grad
        return float(losses.mean())

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of the trainable arrays."""
        return {"theta": self.theta.data.copy(),
                "output_scale": self.output_scale.data.copy()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict`."""
        theta = np.asarray(state["theta"], dtype=np.float64)
        if theta.shape != self.theta.data.shape:
            raise ValueError("theta shape mismatch")
        self.theta.data = theta.copy()
        if "output_scale" in state:
            scale = np.asarray(state["output_scale"], dtype=np.float64)
            if scale.shape != self.output_scale.data.shape:
                raise ValueError("output_scale shape mismatch")
            self.output_scale.data = scale.copy()
