"""Configuration dataclasses for the QuGeo framework.

The defaults reproduce the paper's experimental setup: seismic data scaled to
256 values, velocity maps scaled to 8x8, an 8-qubit / 12-block U3+CU3 ansatz
(576 parameters), Adam with initial learning rate 0.1 and cosine annealing
over 500 epochs, and a qubit budget of 16 (the constraint the paper imposes
to match today's superconducting / ion-trap devices).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np


@dataclass
class QuGeoDataConfig:
    """QuGeoData scaling targets.

    Parameters
    ----------
    scaled_seismic_shape:
        ``(n_sources, n_time, n_receivers)`` of the scaled seismic data; the
        product is the number of values encoded on the quantum register (256
        in the paper).
    scaled_velocity_shape:
        ``(depth, width)`` of the scaled velocity map (8x8 in the paper).
    original_peak_frequency:
        Dominant source frequency of the full-resolution dataset in Hz.
    scaled_peak_frequency:
        Source frequency used when re-simulating on the scaled velocity map;
        ``None`` derives it from the time-axis compression (the paper lowers
        15 Hz to 8 Hz).
    velocity_range:
        ``(min, max)`` velocities in m/s used for normalisation.
    """

    scaled_seismic_shape: Tuple[int, int, int] = (4, 8, 8)
    scaled_velocity_shape: Tuple[int, int] = (8, 8)
    original_peak_frequency: float = 15.0
    scaled_peak_frequency: Optional[float] = 8.0
    velocity_range: Tuple[float, float] = (1500.0, 4500.0)
    dx: float = 10.0

    def __post_init__(self) -> None:
        if len(self.scaled_seismic_shape) != 3:
            raise ValueError("scaled_seismic_shape must be (sources, time, receivers)")
        if any(s <= 0 for s in self.scaled_seismic_shape):
            raise ValueError("scaled_seismic_shape entries must be positive")
        if len(self.scaled_velocity_shape) != 2:
            raise ValueError("scaled_velocity_shape must be 2-D")
        if any(s <= 0 for s in self.scaled_velocity_shape):
            raise ValueError("scaled_velocity_shape entries must be positive")
        low, high = self.velocity_range
        if high <= low:
            raise ValueError("velocity_range must be increasing")

    @property
    def scaled_seismic_size(self) -> int:
        """Number of classical values presented to the encoder."""
        return int(np.prod(self.scaled_seismic_shape))

    @property
    def scaled_velocity_size(self) -> int:
        return int(np.prod(self.scaled_velocity_shape))


@dataclass
class QuGeoVQCConfig:
    """QuGeoVQC circuit configuration.

    Parameters
    ----------
    n_groups, qubits_per_group:
        ST-encoder layout; the register has ``n_groups * qubits_per_group``
        data qubits encoding ``n_groups * 2**qubits_per_group`` values.
    n_blocks:
        Number of U3+CU3 ansatz blocks (12 in the paper, giving 576
        parameters on 8 qubits).
    decoder:
        ``"pixel"`` (Q-M-PX, Eq. 2) or ``"layer"`` (Q-M-LY, Eq. 3).
    output_shape:
        Velocity-map shape the decoder regresses.
    n_batch_qubits:
        QuBatch batch qubits per group (0 disables batching).
    max_qubits:
        Hardware qubit budget; construction fails if exceeded (the paper uses
        16 to match near-term devices).
    backend:
        Name of the simulation backend the model executes on (a key of
        :func:`repro.backends.available_backends`, e.g. ``"numpy"`` or
        ``"einsum"``).  ``None`` defers to the ``QUGEO_BACKEND`` environment
        variable and then the registry default.
    """

    n_groups: int = 1
    qubits_per_group: int = 8
    n_blocks: int = 12
    decoder: str = "layer"
    output_shape: Tuple[int, int] = (8, 8)
    n_batch_qubits: int = 0
    inter_group_blocks: int = 1
    max_qubits: int = 16
    trainable_output_scale: bool = True
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.decoder not in ("pixel", "layer"):
            raise ValueError("decoder must be 'pixel' or 'layer'")
        if self.backend is not None and not isinstance(self.backend, str):
            raise ValueError("backend must be None or a backend name string")
        if self.n_groups <= 0 or self.qubits_per_group <= 0:
            raise ValueError("group layout must be positive")
        if self.n_blocks <= 0:
            raise ValueError("n_blocks must be positive")
        if self.n_batch_qubits < 0:
            raise ValueError("n_batch_qubits must be non-negative")
        if len(self.output_shape) != 2 or any(s <= 0 for s in self.output_shape):
            raise ValueError("output_shape must be a positive 2-D shape")
        if self.total_qubits > self.max_qubits:
            raise ValueError(
                f"configuration needs {self.total_qubits} qubits which exceeds "
                f"the budget of {self.max_qubits}")
        if self.decoder == "pixel":
            outputs = int(np.prod(self.output_shape))
            if self.readout_qubits_needed > self.data_qubits:
                raise ValueError(
                    "pixel decoder needs enough data qubits to read "
                    f"{outputs} amplitudes")
        else:
            if self.output_shape[0] > self.data_qubits:
                raise ValueError(
                    "layer decoder needs one data qubit per velocity-map row")

    @property
    def data_qubits(self) -> int:
        """Number of qubits carrying seismic data."""
        return self.n_groups * self.qubits_per_group

    @property
    def total_qubits(self) -> int:
        """Register size including QuBatch batch qubits."""
        return self.data_qubits + self.n_batch_qubits * self.n_groups

    @property
    def input_size(self) -> int:
        """Number of classical values the encoder accepts."""
        return self.n_groups * 2**self.qubits_per_group

    @property
    def readout_qubits_needed(self) -> int:
        """Data qubits read by the pixel decoder."""
        outputs = int(np.prod(self.output_shape))
        return int(np.ceil(np.log2(outputs)))

    @property
    def batch_size(self) -> int:
        """QuBatch batch capacity."""
        return 2**self.n_batch_qubits


@dataclass
class TrainingConfig:
    """Optimiser settings shared by quantum and classical trainers.

    The paper trains every model for 500 epochs with Adam, an initial
    learning rate of 0.1 and cosine annealing.  The reproduction exposes all
    of it so tests and benches can run shorter schedules.

    ``eval_batch_size`` bounds how many samples run through the model at
    once during test-set evaluation (peak-memory control for large test
    sets); ``None`` evaluates in a single pass.

    ``dtype`` names the compute precision policy (a key accepted by
    :func:`repro.xm.get_dtype_policy`, e.g. ``"float64"`` or ``"float32"``);
    ``None`` defers to the ``QUGEO_DTYPE`` environment variable and then the
    process default (float64).

    ``nan_policy`` decides what a non-finite mini-batch loss does:
    ``"stop"`` (default) halts the run before the poisoned optimiser update
    is applied and records a ``nan_loss`` flag in the metric history;
    ``"raise"`` raises :class:`FloatingPointError` instead.
    """

    epochs: int = 500
    learning_rate: float = 0.1
    batch_size: int = 8
    eta_min: float = 1e-4
    seed: int = 0
    verbose: bool = False
    eval_every: int = 10
    eval_batch_size: Optional[int] = 256
    dtype: Optional[str] = None
    nan_policy: str = "stop"

    def __post_init__(self) -> None:
        if self.dtype is not None:
            if not isinstance(self.dtype, str):
                raise ValueError("dtype must be None or a policy name string")
            from repro.xm import available_policies
            if self.dtype not in available_policies():
                raise ValueError(
                    f"unknown dtype policy '{self.dtype}'; "
                    f"choose from {available_policies()}")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.eval_every <= 0:
            raise ValueError("eval_every must be positive")
        if self.eval_batch_size is not None and self.eval_batch_size <= 0:
            raise ValueError("eval_batch_size must be positive or None")
        if self.nan_policy not in ("stop", "raise"):
            raise ValueError("nan_policy must be 'stop' or 'raise'")


@dataclass
class QuGeoConfig:
    """End-to-end framework configuration bundling the three components."""

    data: QuGeoDataConfig = field(default_factory=QuGeoDataConfig)
    vqc: QuGeoVQCConfig = field(default_factory=QuGeoVQCConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    scaling_method: str = "forward_modeling"

    def __post_init__(self) -> None:
        if self.scaling_method not in ("d_sample", "forward_modeling", "cnn"):
            raise ValueError(
                "scaling_method must be 'd_sample', 'forward_modeling' or 'cnn'")
        if self.data.scaled_seismic_size > self.vqc.input_size:
            raise ValueError(
                f"scaled seismic size {self.data.scaled_seismic_size} exceeds the "
                f"encoder capacity {self.vqc.input_size}")
        if tuple(self.data.scaled_velocity_shape) != tuple(self.vqc.output_shape):
            raise ValueError("data and VQC disagree on the velocity-map shape")


# --------------------------------------------------------------------------- #
# (de)serialisation — saved pipelines and checkpoints embed their config
# --------------------------------------------------------------------------- #
def config_to_dict(config: QuGeoConfig) -> dict:
    """Plain-dict form of a :class:`QuGeoConfig` (for checkpoints/pipelines)."""
    from dataclasses import asdict
    return asdict(config)


def config_from_dict(payload: dict) -> QuGeoConfig:
    """Rebuild a :class:`QuGeoConfig` from :func:`config_to_dict` output."""
    def _clean(section: dict) -> dict:
        return {key: (tuple(value) if isinstance(value, list) else value)
                for key, value in section.items()}

    return QuGeoConfig(
        data=QuGeoDataConfig(**_clean(payload["data"])),
        vqc=QuGeoVQCConfig(**_clean(payload["vqc"])),
        training=TrainingConfig(**_clean(payload["training"])),
        scaling_method=str(payload["scaling_method"]),
    )
