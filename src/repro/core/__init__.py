"""QuGeo core: the paper's contribution assembled from the substrates.

* :mod:`repro.core.config` — configuration dataclasses for every component,
* :mod:`repro.core.data_scaling` — QuGeoData: ``D-Sample``, ``Q-D-FW`` and
  ``Q-D-CNN`` data-scaling pipelines,
* :mod:`repro.core.vqc_model` — the QuGeoVQC model (ST encoder, U3+CU3
  ansatz, pixel-wise / layer-wise decoders) with analytic gradients,
* :mod:`repro.core.qubatch` — QuBatch batched forward/backward passes,
* :mod:`repro.core.classical_models` — parameter-matched CNN baselines
  (CNN-PX / CNN-LY) and the Q-D-CNN compressor,
* :mod:`repro.core.training` — the unified callback-driven training engine
  (one :class:`Trainer`, pluggable step strategies, checkpoint/resume),
* :mod:`repro.core.experiment` — per-figure / per-table experiment harness,
* :mod:`repro.core.framework` — the end-to-end :class:`QuGeo` pipeline.
"""

from repro.core.config import (
    QuGeoDataConfig,
    QuGeoVQCConfig,
    TrainingConfig,
    QuGeoConfig,
)
from repro.core.data_scaling import (
    ScaledSample,
    DSampleScaler,
    ForwardModelingScaler,
    CNNScaler,
    scale_dataset,
)
from repro.core.vqc_model import QuGeoVQC
from repro.core.qubatch import QuBatchVQC
from repro.core.classical_models import (
    build_cnn_px,
    build_cnn_ly,
    CompressionCNN,
    ClassicalFWIModel,
)
from repro.core.training import (
    ArrayDataSource,
    BestModelTracker,
    Callback,
    Checkpoint,
    ClassicalTrainer,
    DataSource,
    EarlyStopping,
    EvalCallback,
    Model,
    QuantumTrainer,
    StepStrategy,
    TelemetryCallback,
    Trainer,
    TrainingResult,
    evaluate_data_source,
    predict_in_batches,
    select_step_strategy,
)
from repro.core.framework import QuGeo
from repro.core.experiment import (
    ExperimentResult,
    evaluate_model,
    prepare_dataset,
    train_model,
)

__all__ = [
    "Trainer",
    "Model",
    "DataSource",
    "StepStrategy",
    "select_step_strategy",
    "predict_in_batches",
    "Callback",
    "EvalCallback",
    "EarlyStopping",
    "BestModelTracker",
    "Checkpoint",
    "TelemetryCallback",
    "train_model",
    "QuGeoDataConfig",
    "QuGeoVQCConfig",
    "TrainingConfig",
    "QuGeoConfig",
    "ScaledSample",
    "DSampleScaler",
    "ForwardModelingScaler",
    "CNNScaler",
    "scale_dataset",
    "QuGeoVQC",
    "QuBatchVQC",
    "build_cnn_px",
    "build_cnn_ly",
    "CompressionCNN",
    "ClassicalFWIModel",
    "QuantumTrainer",
    "ClassicalTrainer",
    "TrainingResult",
    "QuGeo",
    "ExperimentResult",
    "evaluate_model",
    "prepare_dataset",
    "ArrayDataSource",
    "evaluate_data_source",
]
