"""Experiment harness: the comparisons behind the paper's figures and tables.

Each function prepares scaled datasets, trains the relevant models and
returns :class:`ExperimentResult` rows that the benchmark scripts render next
to the paper's published values.  The helpers are deliberately configuration
driven so unit tests can run them at a tiny scale while the benchmarks use a
larger (still laptop-sized) budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.classical_models import ClassicalFWIModel, build_cnn_ly, build_cnn_px
from repro.core.config import QuGeoDataConfig, QuGeoVQCConfig, TrainingConfig
from repro.core.data_scaling import (
    BaseScaler,
    CNNScaler,
    DSampleScaler,
    ForwardModelingScaler,
)
from repro.core.qubatch import QuBatchVQC
from repro.core.training import (
    Callback,
    Trainer,
    TrainingResult,
    evaluate_data_source,
    evaluate_predictions,
    predict_in_batches,
)
from repro.core.vqc_model import QuGeoVQC
from repro.data.dataset import FWIDataset
from repro.metrics import mse, ssim
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.tables import format_table


@dataclass
class ExperimentResult:
    """One row of an experiment table.

    Attributes
    ----------
    model:
        Model label (``Q-M-PX``, ``Q-M-LY``, ``CNN-PX`` ...).
    dataset:
        Data-scaling label (``D-Sample``, ``Q-D-FW``, ``Q-D-CNN``).
    metrics:
        Metric name to value (``ssim``, ``mse``, ``parameters`` ...).
    extras:
        Anything else worth keeping (training history, predictions ...).
    """

    model: str
    dataset: str
    metrics: Dict[str, float] = field(default_factory=dict)
    extras: Dict[str, object] = field(default_factory=dict)

    def metric(self, key: str, default: float = float("nan")) -> float:
        return float(self.metrics.get(key, default))


def final_metric(outcome: TrainingResult, key: str) -> float:
    """Final-evaluation metric of a run, regardless of the split label.

    Trainers prefix ``final_metrics`` keys with the split they evaluated on
    (``test_`` normally, ``train_`` when no test set was given); experiment
    tables only care about the value.
    """
    for prefix in ("test", "train"):
        name = f"{prefix}_{key}"
        if name in outcome.final_metrics:
            return float(outcome.final_metrics[name])
    raise KeyError(f"no final metric {key!r} in {sorted(outcome.final_metrics)}")


def evaluate_model(model: Union[QuGeoVQC, QuBatchVQC, ClassicalFWIModel],
                   dataset: FWIDataset,
                   batch_size: Optional[int] = 256) -> Dict[str, float]:
    """SSIM / MSE of ``model`` on a scaled dataset.

    Every model family satisfies the Model protocol's ``predict_batch``, so
    the evaluation is one chunked pass regardless of the family.  The
    default ``batch_size`` matches ``TrainingConfig.eval_batch_size`` so
    peak memory stays bounded on large datasets; ``None`` evaluates in a
    single pass.  A streaming source (``gather`` protocol, e.g. a
    :class:`repro.data.store.ShardLoader`) is evaluated without stacking
    its seismic data — one gather pass through :func:`evaluate_data_source`.
    """
    if hasattr(dataset, "gather"):
        metrics = evaluate_data_source(model, dataset, split="eval",
                                       batch_size=batch_size)
        return {"ssim": metrics["eval_ssim"], "mse": metrics["eval_mse"]}
    seismic = np.stack([sample.seismic.reshape(-1) for sample in dataset])
    velocity = np.stack([sample.velocity for sample in dataset])
    predictions = predict_in_batches(model, seismic, batch_size=batch_size)
    return evaluate_predictions(predictions, velocity)


def train_model(model, train_set: FWIDataset, test_set: Optional[FWIDataset],
                training: TrainingConfig,
                callbacks: Sequence[Callback] = ()) -> TrainingResult:
    """Train any Model through the unified engine (one call site for all)."""
    return Trainer(training).train(model, train_set, test_set,
                                   callbacks=callbacks)


def _result_row(model, dataset_label: str, outcome: TrainingResult,
                extra_metrics: Optional[Dict[str, float]] = None,
                keep_history: bool = False) -> ExperimentResult:
    """Standard table row: final SSIM/MSE plus whatever a study adds."""
    metrics = {"ssim": final_metric(outcome, "ssim"),
               "mse": final_metric(outcome, "mse")}
    if hasattr(model, "num_parameters"):
        metrics["parameters"] = model.num_parameters()
    if extra_metrics:
        metrics.update(extra_metrics)
    extras: Dict[str, object] = {"result": outcome}
    if keep_history:
        extras.update({"history_ssim": outcome.history("test_ssim"),
                       "history_mse": outcome.history("test_mse"),
                       "history_loss": outcome.history("train_loss")})
    return ExperimentResult(model=getattr(model, "name", str(model)),
                            dataset=dataset_label, metrics=metrics,
                            extras=extras)


# --------------------------------------------------------------------------- #
# dataset preparation
# --------------------------------------------------------------------------- #
def prepare_dataset(config, seed: int = 0,
                    cache_dir=None,
                    workers: Optional[int] = None,
                    count: Optional[int] = None,
                    progress: bool = False,
                    stream: bool = False) -> FWIDataset:
    """Build (or load) the full-resolution dataset an experiment trains on.

    This is the ``--cache-dir`` entry point of the experiment drivers and
    benchmarks: with ``cache_dir`` the dataset is served from the sharded
    store (:func:`repro.data.store.open_or_build`) — a repeated run with the
    same ``(config, seed)`` performs zero forward-modelling calls — and a
    partial previous build is resumed.  ``workers`` fans generation over a
    process pool with bit-identical output; ``stream=True`` returns a
    :class:`repro.data.store.ShardLoader` instead of materializing.
    """
    from repro.data.openfwi import SyntheticOpenFWI
    from repro.data.store import open_or_build

    if cache_dir is not None:
        return open_or_build(config, seed=seed, cache_dir=cache_dir,
                             count=count, workers=workers, progress=progress,
                             stream=stream)
    return SyntheticOpenFWI(config, rng=int(seed)).build(
        count=count, workers=workers, progress=progress)


def build_scalers(methods: Sequence[str],
                  data_config: QuGeoDataConfig,
                  compressor_dataset: Optional[FWIDataset] = None,
                  compressor_epochs: int = 40,
                  rng: RngLike = None) -> Dict[str, BaseScaler]:
    """Instantiate the requested QuGeoData scalers.

    ``methods`` entries are ``"D-Sample"``, ``"Q-D-FW"`` and ``"Q-D-CNN"``.
    The CNN scaler is trained on ``compressor_dataset`` (the paper uses 500
    samples disjoint from the FWI train/test split).
    """
    rng = ensure_rng(rng)
    scalers: Dict[str, BaseScaler] = {}
    for method in methods:
        if method == "D-Sample":
            scalers[method] = DSampleScaler(data_config)
        elif method == "Q-D-FW":
            scalers[method] = ForwardModelingScaler(data_config)
        elif method == "Q-D-CNN":
            if compressor_dataset is None or not len(compressor_dataset):
                raise ValueError("Q-D-CNN needs a compressor training dataset")
            scalers[method] = CNNScaler.train(compressor_dataset,
                                              config=data_config,
                                              epochs=compressor_epochs,
                                              rng=rng)
        else:
            raise ValueError(f"unknown scaling method {method!r}")
    return scalers


def prepare_scaled_datasets(scalers: Dict[str, BaseScaler],
                            train: FWIDataset,
                            test: FWIDataset) -> Dict[str, Tuple[FWIDataset, FWIDataset]]:
    """Scale the train/test splits with every scaler."""
    return {name: (scaler.scale_dataset(train), scaler.scale_dataset(test))
            for name, scaler in scalers.items()}


# --------------------------------------------------------------------------- #
# experiments
# --------------------------------------------------------------------------- #
def compare_scaling_methods(scaled: Dict[str, Tuple[FWIDataset, FWIDataset]],
                            vqc_config: QuGeoVQCConfig,
                            training: TrainingConfig,
                            rng: RngLike = None) -> List[ExperimentResult]:
    """Figure 5: train the same VQC on each scaled dataset and compare.

    Returns one result per scaling method, carrying the final SSIM/MSE and
    the per-epoch convergence history used for Figures 5(b)-(c).
    """
    rng = ensure_rng(rng)
    results = []
    for method, (train_set, test_set) in scaled.items():
        model = QuGeoVQC(vqc_config, rng=rng)
        outcome = train_model(model, train_set, test_set, training)
        results.append(_result_row(model, method, outcome, keep_history=True))
    return results


def compare_decoders(scaled: Dict[str, Tuple[FWIDataset, FWIDataset]],
                     base_config: QuGeoVQCConfig,
                     training: TrainingConfig,
                     rng: RngLike = None) -> List[ExperimentResult]:
    """Figure 8: Q-M-PX vs Q-M-LY on every scaled dataset."""
    rng = ensure_rng(rng)
    results = []
    for decoder in ("pixel", "layer"):
        config = replace(base_config, decoder=decoder, n_batch_qubits=0)
        for method, (train_set, test_set) in scaled.items():
            model = QuGeoVQC(config, rng=rng)
            outcome = train_model(model, train_set, test_set, training)
            results.append(_result_row(model, method, outcome))
    return results


def qubatch_study(train_set: FWIDataset, test_set: FWIDataset,
                  base_config: QuGeoVQCConfig,
                  training: TrainingConfig,
                  batch_qubit_counts: Sequence[int] = (0, 1, 2),
                  rng: RngLike = None) -> List[ExperimentResult]:
    """Table 1: train Q-M-LY with increasing QuBatch batch sizes."""
    rng = ensure_rng(rng)
    results = []
    for n_batch_qubits in batch_qubit_counts:
        config = replace(base_config, n_batch_qubits=n_batch_qubits)
        if n_batch_qubits == 0:
            model: Union[QuGeoVQC, QuBatchVQC] = QuGeoVQC(config, rng=rng)
        else:
            model = QuBatchVQC(config, rng=rng)
        outcome = train_model(model, train_set, test_set, training)
        results.append(_result_row(
            model, "Q-D-FW", outcome,
            extra_metrics={"batch": 2**n_batch_qubits if n_batch_qubits else 0,
                           "extra_qubits": n_batch_qubits}))
    return results


def quantum_vs_classical(scaled: Dict[str, Tuple[FWIDataset, FWIDataset]],
                         vqc_config: QuGeoVQCConfig,
                         training: TrainingConfig,
                         rng: RngLike = None) -> List[ExperimentResult]:
    """Table 2: CNN-PX / CNN-LY vs Q-M-PX / Q-M-LY at matched parameter budgets."""
    rng = ensure_rng(rng)
    results: List[ExperimentResult] = []
    input_size = vqc_config.input_size
    output_shape = vqc_config.output_shape

    builders = {
        "CNN-PX": lambda: build_cnn_px(input_size, output_shape, rng=rng),
        "CNN-LY": lambda: build_cnn_ly(input_size, output_shape, rng=rng),
    }
    for name, builder in builders.items():
        for method, (train_set, test_set) in scaled.items():
            model = builder()
            outcome = train_model(model, train_set, test_set, training)
            results.append(_result_row(model, method, outcome))

    for decoder in ("pixel", "layer"):
        config = replace(vqc_config, decoder=decoder, n_batch_qubits=0)
        for method, (train_set, test_set) in scaled.items():
            model = QuGeoVQC(config, rng=rng)
            outcome = train_model(model, train_set, test_set, training)
            results.append(_result_row(model, method, outcome))
    return results


# --------------------------------------------------------------------------- #
# analysis helpers
# --------------------------------------------------------------------------- #
def vertical_profile(velocity_map: np.ndarray, column: Optional[int] = None) -> np.ndarray:
    """Vertical velocity profile at ``column`` (centre column by default).

    This is the quantity plotted in Figures 7(b) and 9(b) of the paper (the
    paper uses the profile at x = 400 m, roughly the centre of the model).
    """
    velocity_map = np.asarray(velocity_map, dtype=np.float64)
    if velocity_map.ndim != 2:
        raise ValueError("velocity_map must be 2-D")
    if column is None:
        column = velocity_map.shape[1] // 2
    if not 0 <= column < velocity_map.shape[1]:
        raise ValueError("column outside the map")
    return velocity_map[:, column]


def count_interface_matches(prediction_profile: np.ndarray,
                            truth_profile: np.ndarray,
                            tolerance: float = 0.05) -> Tuple[int, int]:
    """Count layer interfaces of the truth profile recovered by the prediction.

    An interface is a depth index where the ground-truth profile jumps by
    more than ``tolerance`` (in normalised velocity units); it counts as
    recovered when the prediction also jumps by more than half the truth's
    jump, in the same direction, at the same depth (+-1 row).

    Returns ``(matched, total)`` as used in the Figure 7/9 discussion.
    """
    prediction_profile = np.asarray(prediction_profile, dtype=np.float64).reshape(-1)
    truth_profile = np.asarray(truth_profile, dtype=np.float64).reshape(-1)
    if prediction_profile.shape != truth_profile.shape:
        raise ValueError("profiles must have the same length")
    truth_jumps = np.diff(truth_profile)
    pred_jumps = np.diff(prediction_profile)
    matched = 0
    total = 0
    for index, jump in enumerate(truth_jumps):
        if abs(jump) < tolerance:
            continue
        total += 1
        window = pred_jumps[max(0, index - 1):index + 2]
        if np.any(np.sign(window) == np.sign(jump)):
            if np.max(np.abs(window)) >= 0.5 * abs(jump):
                matched += 1
    return matched, total


def results_table(results: Iterable[ExperimentResult],
                  metrics: Sequence[str] = ("ssim", "mse"),
                  title: str = "") -> str:
    """Render experiment results as an aligned text table."""
    headers = ["model", "dataset"] + list(metrics)
    rows = []
    for result in results:
        rows.append([result.model, result.dataset] +
                    [result.metric(metric) for metric in metrics])
    return format_table(headers, rows, title=title)
