"""QuBatch: processing several samples in one circuit execution.

Section 3.3 of the paper observes that, because the ansatz unitary acting on
the data qubits tensors with an identity on any extra qubits, the same
``U(theta)`` is implicitly replicated along the diagonal of the full-register
unitary.  Encoding ``2**b`` samples into the amplitudes of ``b`` extra
("batch") qubits therefore evaluates the circuit on all samples at once — a
SIMD execution whose price is a joint normalisation of the batched data
(lower per-sample precision) and ``b`` extra qubits per encoder group.

:class:`QuBatchVQC` implements the batched model: it shares the
:class:`~repro.core.config.QuGeoVQCConfig` interface of
:class:`~repro.core.vqc_model.QuGeoVQC`, but its forward/backward pass
encodes a *list* of samples, decodes per-sample predictions by conditioning
on the batch-qubit value, and returns the gradient of the summed (averaged)
loss of the whole batch from a single adjoint sweep.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.backends import get_backend
from repro.core.config import QuGeoVQCConfig
from repro.nn.tensor import Tensor
from repro.quantum.ansatz import u3_cu3_ansatz
from repro.quantum.autodiff import circuit_gradients_batched
from repro.quantum.circuit import ParameterizedCircuit
from repro.quantum.encoding import QuBatchEncoder, STEncoder
from repro.quantum.measurement import (
    marginal_probabilities_backward_batched,
    marginal_probabilities_batched,
    z_expectations_backward_batched,
    z_expectations_batched,
)
from repro.utils.rng import RngLike, ensure_rng

_EPS = 1e-12


class QuBatchVQC:
    """QuGeoVQC with QuBatch parallel data batching (single encoder group).

    Parameters
    ----------
    config:
        Must have ``n_groups == 1`` and ``n_batch_qubits >= 1``.  The batch
        capacity is ``2**n_batch_qubits`` samples per circuit execution.
    rng:
        Seed / generator for parameter initialisation.
    backend:
        Simulation engine (name, instance or ``None``).  ``None`` resolves
        ``config.backend`` and then the process default.
    """

    def __init__(self, config: QuGeoVQCConfig, rng: RngLike = None,
                 backend=None) -> None:
        if config.n_batch_qubits < 1:
            raise ValueError("QuBatchVQC needs at least one batch qubit")
        if config.n_groups != 1:
            raise ValueError("QuBatchVQC currently supports a single encoder group")
        self.config = config
        self.backend = get_backend(backend if backend is not None
                                   else config.backend)
        rng = ensure_rng(rng)
        st_encoder = STEncoder(n_groups=1,
                               qubits_per_group=config.qubits_per_group)
        self.encoder = QuBatchEncoder(st_encoder,
                                      n_batch_qubits=config.n_batch_qubits)
        self.n_qubits = self.encoder.n_qubits
        self.data_qubits = self.encoder.data_qubits_of_group(0)
        self.circuit = self._build_circuit()
        self.theta = Tensor(rng.normal(0.0, 0.3, size=self.circuit.n_params),
                            requires_grad=True)
        initial_scale = float(np.sqrt(np.prod(config.output_shape)) * 0.5)
        self.output_scale = Tensor(np.array([initial_scale]),
                                   requires_grad=config.trainable_output_scale)
        suffix = "PX" if config.decoder == "pixel" else "LY"
        self.name = f"Q-M-{suffix}+QuBatch{self.batch_capacity}"

    def _build_circuit(self) -> ParameterizedCircuit:
        # The ansatz touches only the data qubits; the batch qubits carry the
        # implicit identity that replicates U(theta) along the diagonal.
        return u3_cu3_ansatz(self.n_qubits, n_blocks=self.config.n_blocks,
                             qubits=self.data_qubits)

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def batch_capacity(self) -> int:
        """Number of samples processed per circuit execution."""
        return self.encoder.batch_size

    @property
    def extra_qubits(self) -> int:
        """Qubits added on top of the unbatched model (Table 1's column)."""
        return self.config.n_batch_qubits

    def parameter_tensors(self) -> Tuple[Tensor, ...]:
        """Tensors updated by the optimiser."""
        if self.config.decoder == "pixel" and self.config.trainable_output_scale:
            return (self.theta, self.output_scale)
        return (self.theta,)

    def num_parameters(self, include_readout: bool = False) -> int:
        """Circuit parameter count (identical to the unbatched model)."""
        count = self.circuit.n_params
        if include_readout and self.config.decoder == "pixel" \
                and self.config.trainable_output_scale:
            count += 1
        return count

    def _readout_qubits(self) -> Tuple[int, ...]:
        if self.config.decoder == "pixel":
            needed = self.config.readout_qubits_needed
            return tuple(self.data_qubits[:needed])
        return tuple(self.data_qubits[:self.config.output_shape[0]])

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #
    def encode(self, seismic_batch: Sequence[np.ndarray]) -> np.ndarray:
        """Encode up to ``batch_capacity`` flattened seismic samples."""
        flat = [np.asarray(s, dtype=np.float64).reshape(-1) for s in seismic_batch]
        return self.encoder.encode(flat)

    def _block_view(self, state: np.ndarray) -> np.ndarray:
        """Reshape the register state into per-sample amplitude blocks."""
        return state.reshape(self.batch_capacity, -1)

    def _decode_blocks(self, state: np.ndarray, n_samples: int) -> np.ndarray:
        """Decode per-sample velocity maps from the batched output state."""
        blocks = self._block_view(state)
        return self.decode_block_probabilities(np.abs(blocks) ** 2, n_samples)

    def decode_block_probabilities(self, block_probs: np.ndarray,
                                   n_samples: int) -> np.ndarray:
        """Decode velocity maps from per-block probability rows.

        ``block_probs`` is the ``(batch_capacity, 2**qubits_per_group)``
        matrix of basis-state probabilities, exact or shot-noise estimated —
        the finite-shot readout policy in :mod:`repro.robustness` reshapes a
        sampled full-register probability vector into blocks and decodes it
        here, so ideal and sampled QuBatch prediction share one decoder.
        Each block is normalised by its own total probability, which is what
        makes the conditional decode work on unnormalised sampled blocks too.
        """
        depth, width = self.config.output_shape
        block_probs = np.asarray(block_probs, dtype=np.float64)
        if block_probs.shape != (self.batch_capacity,
                                 2**self.config.qubits_per_group):
            raise ValueError("block_probs shape does not match the register")
        predictions = np.zeros((n_samples, depth, width))
        readout_local = self._local_readout_indices()
        for b in range(n_samples):
            probs = block_probs[b]
            total = probs.sum()
            if total <= _EPS:
                continue
            if self.config.decoder == "pixel":
                marg = self._marginalise(probs, readout_local) / total
                amplitudes = np.sqrt(marg[:depth * width] + _EPS)
                scale = float(self.output_scale.data[0])
                predictions[b] = (scale * amplitudes).reshape(depth, width)
            else:
                z = self._block_z(probs, total)
                rows = (z + 1.0) / 2.0
                predictions[b] = np.repeat(rows[:, None], width, axis=1)
        return predictions

    def _local_readout_indices(self) -> Tuple[int, ...]:
        """Read-out qubits expressed relative to the data block."""
        offset = self.config.n_batch_qubits
        return tuple(q - offset for q in self._readout_qubits())

    def _marginalise(self, block_probs: np.ndarray,
                     local_qubits: Sequence[int]) -> np.ndarray:
        """Marginal outcome probabilities of ``local_qubits`` inside one block."""
        n_data = self.config.qubits_per_group
        probs = block_probs.reshape((2,) * n_data)
        others = tuple(q for q in range(n_data) if q not in local_qubits)
        marginal = probs.sum(axis=others) if others else probs
        order = [q for q in range(n_data) if q in local_qubits]
        permutation = [order.index(q) for q in local_qubits]
        return np.transpose(marginal, permutation).reshape(-1)

    def _block_z(self, block_probs: np.ndarray, total: float) -> np.ndarray:
        """Conditional Z expectations of the read-out qubits inside one block."""
        n_data = self.config.qubits_per_group
        depth = self.config.output_shape[0]
        indices = np.arange(block_probs.size)
        z = np.zeros(depth)
        for row, local_q in enumerate(range(depth)):
            bit = (indices >> (n_data - 1 - local_q)) & 1
            signs = 1.0 - 2.0 * bit
            z[row] = float(np.dot(signs, block_probs) / total)
        return z

    def predict_batch(self, seismic_batch: Sequence[np.ndarray]) -> np.ndarray:
        """Predict normalised velocity maps for a batch of samples.

        Batches larger than ``batch_capacity`` run as several circuit
        executions, one capacity-sized chunk at a time.
        """
        n_samples = len(seismic_batch)
        if n_samples == 0:
            raise ValueError("empty batch")
        if n_samples > self.batch_capacity:
            return np.concatenate(
                [self.predict_batch(seismic_batch[start:start + self.batch_capacity])
                 for start in range(0, n_samples, self.batch_capacity)],
                axis=0)
        state = self.encode(seismic_batch)
        output = self.circuit.run(state, self.theta.data, backend=self.backend)
        return self._decode_blocks(output, n_samples)

    def predict(self, seismic: np.ndarray) -> np.ndarray:
        """Predict a single sample (runs a batch of one)."""
        return self.predict_batch([seismic])[0]

    # ------------------------------------------------------------------ #
    # loss and gradients
    # ------------------------------------------------------------------ #
    def loss_and_gradients(self, seismic_batch: Sequence[np.ndarray],
                           targets: Sequence[np.ndarray]
                           ) -> Tuple[float, Dict[str, np.ndarray]]:
        """Average loss over the batch and its parameter gradients."""
        n_samples = len(seismic_batch)
        if n_samples == 0:
            raise ValueError("empty batch")
        if n_samples != len(targets):
            raise ValueError("seismic batch and targets differ in length")
        if n_samples > self.batch_capacity:
            raise ValueError("batch exceeds QuBatch capacity")
        depth, width = self.config.output_shape
        target_array = np.stack([np.asarray(t, dtype=np.float64) for t in targets])
        if target_array.shape[1:] != (depth, width):
            raise ValueError("target maps have the wrong shape")
        state = self.encode(seismic_batch)
        scale = float(self.output_scale.data[0])
        scale_grad = np.zeros(1)
        readout_local = self._local_readout_indices()
        n_data = self.config.qubits_per_group

        def loss_head(outputs: np.ndarray):
            # The QuBatch register is a single state whose amplitude blocks
            # hold the samples; the per-sample structure is recovered by the
            # reshape, so all blocks run through the vectorised read-out
            # heads together instead of a Python loop over samples.
            blocks = outputs.reshape(-1, 2**n_data)
            probs = np.abs(blocks) ** 2
            totals = probs.sum(axis=1)
            active = np.zeros(self.batch_capacity, dtype=bool)
            active[:n_samples] = totals[:n_samples] > _EPS
            safe_totals = np.where(active, totals, 1.0)[:, None]
            if self.config.decoder == "pixel":
                marg = marginal_probabilities_batched(blocks, readout_local,
                                                      n_data)
                norm_marg = marg / safe_totals
                amplitudes = np.sqrt(norm_marg[:, :depth * width] + _EPS)
                predictions = scale * amplitudes
                diffs = (predictions.reshape(-1, depth, width)
                         - target_array_padded)
                flat_diffs = diffs.reshape(diffs.shape[0], -1)
                per_block_loss = np.mean(flat_diffs**2, axis=1)
                dpred = 2.0 * flat_diffs / flat_diffs.shape[1] / n_samples
                dpred[~active] = 0.0
                scale_grad[0] = float(np.sum(dpred * amplitudes))
                dnorm = np.zeros_like(norm_marg)
                dnorm[:, :depth * width] = dpred * scale * 0.5 / amplitudes
                # Back through normalisation p_o = q_o / total and through
                # the marginalisation q_o = sum over block entries.
                g_per_entry = marginal_probabilities_backward_batched(
                    blocks, readout_local, n_data, dnorm)
                weighted = np.sum(dnorm * norm_marg, axis=1)[:, None]
                lam = (g_per_entry - weighted * blocks) / safe_totals
            else:
                z_qubits = tuple(range(depth))
                z = z_expectations_batched(blocks, z_qubits,
                                           n_data) / safe_totals
                rows = (z + 1.0) / 2.0
                diffs = rows[:, :, None] - target_array_padded
                flat_diffs = diffs.reshape(diffs.shape[0], -1)
                per_block_loss = np.mean(flat_diffs**2, axis=1)
                dpred = 2.0 * diffs / (depth * width) / n_samples
                dpred[~active] = 0.0
                dz = 0.5 * dpred.sum(axis=2)
                weighted = np.sum(dz * z, axis=1)[:, None]
                lam = (z_expectations_backward_batched(blocks, z_qubits,
                                                       n_data, dz)
                       - weighted * blocks) / safe_totals
            lam[~active] = 0.0
            total_loss = float(per_block_loss[active].sum()) / n_samples
            return np.array([total_loss]), lam.reshape(1, -1)

        target_array_padded = np.zeros((self.batch_capacity, depth, width))
        target_array_padded[:n_samples] = target_array
        losses, theta_grads = circuit_gradients_batched(
            self.circuit, self.theta.data, state.reshape(1, -1), loss_head,
            backend=self.backend)
        gradients = {"theta": theta_grads[0]}
        if self.config.decoder == "pixel" and self.config.trainable_output_scale:
            gradients["output_scale"] = scale_grad / n_samples
        return float(losses[0]), gradients

    def accumulate_gradients(self, seismic_batch: Sequence[np.ndarray],
                             targets: Sequence[np.ndarray],
                             weight: float = 1.0) -> float:
        """Accumulate batch gradients into the parameter tensors."""
        loss, gradients = self.loss_and_gradients(seismic_batch, targets)
        theta_grad = weight * gradients["theta"]
        if self.theta.grad is None:
            self.theta.grad = theta_grad
        else:
            self.theta.grad = self.theta.grad + theta_grad
        if "output_scale" in gradients:
            scale_grad = weight * gradients["output_scale"]
            if self.output_scale.grad is None:
                self.output_scale.grad = scale_grad
            else:
                self.output_scale.grad = self.output_scale.grad + scale_grad
        return loss

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of the trainable arrays."""
        return {"theta": self.theta.data.copy(),
                "output_scale": self.output_scale.data.copy()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict`."""
        theta = np.asarray(state["theta"], dtype=np.float64)
        if theta.shape != self.theta.data.shape:
            raise ValueError("theta shape mismatch")
        self.theta.data = theta.copy()
        if "output_scale" in state:
            scale = np.asarray(state["output_scale"], dtype=np.float64)
            if scale.shape != self.output_scale.data.shape:
                raise ValueError("output_scale shape mismatch")
            self.output_scale.data = scale.copy()
