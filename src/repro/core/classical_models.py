"""Classical CNN models: baselines and the Q-D-CNN data compressor.

Three models are defined, all built on :mod:`repro.nn`:

* :func:`build_cnn_px` / :func:`build_cnn_ly` — the LeNet-like baselines of
  Table 2 (pixel-wise and layer-wise decoding heads).  Their parameter counts
  are kept at the same level as the 576-parameter QuGeoVQC, as the paper does
  (it reports 634 and 616 parameters).
* :class:`CompressionCNN` — the Q-D-CNN data compressor of Section 3.1.2: two
  convolutional layers (each followed by ReLU) and a fully connected layer
  that maps raw seismic data to the physics-guided scaled representation.

:class:`ClassicalFWIModel` wraps a network together with its input/output
shapes so the trainers and the experiment harness can treat classical and
quantum models uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.nn import (
    AvgPool2d,
    Conv2d,
    Flatten,
    Linear,
    Module,
    ReLU,
    Sequential,
    Tensor,
)
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class ClassicalFWIModel:
    """A classical seismic-to-velocity regressor.

    Parameters
    ----------
    network:
        The underlying :class:`~repro.nn.layers.Module`.
    input_shape:
        Shape of one seismic input presented as an image ``(channels, H, W)``.
    output_shape:
        Velocity-map shape ``(depth, width)`` for pixel-wise models, or
        ``(depth,)`` broadcast across rows for layer-wise models.
    decoder:
        ``"pixel"`` or ``"layer"`` — how the network output maps onto the
        velocity map.
    name:
        Display name used in result tables (e.g. ``"CNN-PX"``).
    """

    network: Module
    input_shape: Tuple[int, ...]
    output_shape: Tuple[int, ...]
    decoder: str
    name: str

    def __post_init__(self) -> None:
        if self.decoder not in ("pixel", "layer"):
            raise ValueError("decoder must be 'pixel' or 'layer'")

    def num_parameters(self) -> int:
        """Number of trainable parameters of the wrapped network."""
        return self.network.num_parameters()

    # -- Model protocol (shared with the quantum models) ----------------- #
    def parameter_tensors(self) -> Tuple[Tensor, ...]:
        """Tensors the optimiser updates."""
        return tuple(self.network.parameters())

    def predict_batch(self, seismic_batch) -> np.ndarray:
        """Alias of :meth:`predict_velocity` under the common Model protocol."""
        return self.predict_velocity(np.asarray(seismic_batch, dtype=np.float64))

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of the wrapped network's tensors."""
        return self.network.state_dict()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict`."""
        self.network.load_state_dict(state)

    def prepare_input(self, seismic: np.ndarray) -> np.ndarray:
        """Reshape one (or a batch of) flat seismic vectors to the input image."""
        seismic = np.asarray(seismic, dtype=np.float64)
        expected = int(np.prod(self.input_shape))
        if seismic.ndim == 1 or seismic.shape == tuple(self.input_shape):
            if seismic.size != expected:
                raise ValueError(f"seismic has {seismic.size} values, expected {expected}")
            return seismic.reshape((1,) + tuple(self.input_shape))
        flat = seismic.reshape(seismic.shape[0], -1)
        if flat.shape[1] != expected:
            raise ValueError(f"seismic has {flat.shape[1]} values, expected {expected}")
        return flat.reshape((seismic.shape[0],) + tuple(self.input_shape))

    def forward(self, seismic: np.ndarray) -> Tensor:
        """Run the network on a batch of seismic inputs (returns a Tensor)."""
        return self.network(Tensor(self.prepare_input(seismic)))

    def predict_velocity(self, seismic: np.ndarray) -> np.ndarray:
        """Predict normalised velocity maps for a batch of seismic inputs."""
        output = self.forward(seismic).numpy()
        batch = output.shape[0]
        depth, width = self._map_shape()
        if self.decoder == "pixel":
            return output.reshape(batch, depth, width)
        rows = output.reshape(batch, depth, 1)
        return np.broadcast_to(rows, (batch, depth, width)).copy()

    def expand_prediction(self, output: Tensor) -> Tensor:
        """Expand a layer-wise prediction across columns inside the graph."""
        if self.decoder == "pixel":
            return output
        depth, width = self._map_shape()
        batch = output.shape[0]
        rows = output.reshape(batch, depth, 1)
        ones = Tensor(np.ones((1, 1, width)))
        return rows * ones

    def _map_shape(self) -> Tuple[int, int]:
        if self.decoder == "pixel":
            size = int(np.prod(self.output_shape))
            side = int(np.sqrt(size))
            if side * side == size:
                return side, side
            return tuple(self.output_shape)  # type: ignore[return-value]
        depth = int(self.output_shape[0])
        width = int(self.output_shape[1]) if len(self.output_shape) > 1 else depth
        return depth, width


def _infer_image_shape(input_size: int,
                       n_channels: int = 1) -> Tuple[int, int, int]:
    """Arrange ``input_size`` values into a near-square single-channel image."""
    side = int(np.sqrt(input_size // n_channels))
    while side > 1 and (input_size % (n_channels * side)) != 0:
        side -= 1
    height = side
    width = input_size // (n_channels * side)
    return n_channels, height, width


def build_cnn_px(input_size: int = 256, output_shape: Tuple[int, int] = (8, 8),
                 rng: RngLike = None) -> ClassicalFWIModel:
    """Build the CNN-PX baseline: pixel-wise prediction of the velocity map.

    With the default 256-value input (arranged as a 16x16 image) and an 8x8
    output this network has 634 parameters, matching Table 2 of the paper:
    ``Conv2d(1->2, 3x3)`` (20) + ``Conv2d(2->2, 3x3)`` (38) +
    ``Linear(8 -> 64)`` (576).
    """
    rng = ensure_rng(rng)
    channels, height, width = _infer_image_shape(input_size)
    outputs = int(np.prod(output_shape))
    network = Sequential(
        Conv2d(channels, 2, 3, padding=1, rng=rng),
        ReLU(),
        AvgPool2d(4),
        Conv2d(2, 2, 3, padding=1, rng=rng),
        ReLU(),
        AvgPool2d(2),
        Flatten(),
        Linear(2 * (height // 8) * (width // 8), outputs, rng=rng),
    )
    return ClassicalFWIModel(network=network,
                             input_shape=(channels, height, width),
                             output_shape=tuple(output_shape),
                             decoder="pixel", name="CNN-PX")


def build_cnn_ly(input_size: int = 256, output_shape: Tuple[int, int] = (8, 8),
                 rng: RngLike = None) -> ClassicalFWIModel:
    """Build the CNN-LY baseline: one velocity per velocity-map row.

    With the default 256-value input and 8 output rows the network has 648
    parameters (the paper reports 616; both sit at the same "hundreds of
    parameters" level as the 576-parameter QuGeoVQC):
    ``Conv2d(1->2, 5x5)`` (52) + ``Conv2d(2->4, 3x3)`` (76) +
    ``Linear(64 -> 8)`` (520).
    """
    rng = ensure_rng(rng)
    channels, height, width = _infer_image_shape(input_size)
    depth = int(output_shape[0])
    network = Sequential(
        Conv2d(channels, 2, 5, padding=2, rng=rng),
        ReLU(),
        AvgPool2d(2),
        Conv2d(2, 4, 3, padding=1, rng=rng),
        ReLU(),
        AvgPool2d(2),
        Flatten(),
        Linear(4 * (height // 4) * (width // 4), depth, rng=rng),
    )
    return ClassicalFWIModel(network=network,
                             input_shape=(channels, height, width),
                             output_shape=tuple(output_shape),
                             decoder="layer", name="CNN-LY")


class CompressionCNN(Module):
    """The Q-D-CNN data compressor (Section 3.1.2).

    A LeNet-like network with two convolutional layers (each followed by a
    ReLU) and one fully connected layer.  It learns the mapping from raw
    seismic data ``D`` to the physics-guided scaled data ``phyD`` so that, at
    inference time, data can be scaled for the quantum circuit without
    knowing the subsurface velocity.

    Parameters
    ----------
    input_shape:
        Raw seismic shape ``(n_sources, n_time, n_receivers)`` treated as a
        multi-channel image (one channel per source).
    output_size:
        Number of scaled values to produce (256 in the paper's experiments).
    hidden_channels:
        Channel counts of the two convolutional layers.
    """

    def __init__(self, input_shape: Tuple[int, int, int], output_size: int,
                 hidden_channels: Tuple[int, int] = (4, 8),
                 rng: RngLike = None) -> None:
        rng = ensure_rng(rng)
        n_sources, n_time, n_receivers = input_shape
        if n_sources <= 0 or n_time <= 0 or n_receivers <= 0:
            raise ValueError("input_shape entries must be positive")
        if output_size <= 0:
            raise ValueError("output_size must be positive")
        self.input_shape = (int(n_sources), int(n_time), int(n_receivers))
        self.output_size = int(output_size)
        c1, c2 = hidden_channels
        self.hidden_channels = (int(c1), int(c2))

        pool1 = 2 if min(n_time, n_receivers) >= 8 else 1
        after1 = (n_time // pool1, n_receivers // pool1)
        pool2 = 2 if min(after1) >= 8 else 1
        after2 = (after1[0] // pool2, after1[1] // pool2)

        self.features = Sequential(
            Conv2d(n_sources, c1, 3, padding=1, rng=rng),
            ReLU(),
            AvgPool2d(pool1),
            Conv2d(c1, c2, 3, padding=1, rng=rng),
            ReLU(),
            AvgPool2d(pool2),
            Flatten(),
        )
        flat_features = c2 * after2[0] * after2[1]
        self.head = Linear(flat_features, self.output_size, rng=rng)

    def forward(self, inputs: Tensor) -> Tensor:
        return self.head(self.features(inputs))

    def compress(self, seismic: np.ndarray) -> np.ndarray:
        """Compress one raw seismic cube to ``output_size`` scaled values."""
        seismic = np.asarray(seismic, dtype=np.float64)
        if seismic.shape != self.input_shape:
            raise ValueError(
                f"seismic shape {seismic.shape} does not match {self.input_shape}")
        output = self(Tensor(seismic.reshape((1,) + self.input_shape)))
        return output.numpy().reshape(-1)
