"""Multi-shot forward modelling: velocity map -> seismic shot gathers.

This is the "Forward Modeling" step of QuGeoData (Section 3.1.1 of the
paper): given a velocity map and an acquisition geometry, simulate the
pressure wavefield of every source with the acoustic propagator and record
it at every receiver.  The result has OpenFWI's layout
``(n_sources, n_time_steps, n_receivers)``.

Shots are propagated through the engine selected from the
:mod:`repro.seismic.propagators` registry — by default the batched engine,
which advances every shot (and, on the multi-map path, several velocity
models) in one shared time loop while matching the scalar reference to
machine precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.seismic.acoustic2d import SimulationConfig, stable_time_step
from repro.seismic.propagators import PropagatorSpec, get_propagator
from repro.seismic.survey import SurveyGeometry
from repro.seismic.wavelets import ricker_wavelet
from repro.telemetry import get_telemetry


def normalize_per_shot(data: np.ndarray) -> np.ndarray:
    """Scale every shot gather by its own maximum absolute amplitude.

    Operates on the trailing ``(n_steps, n_receivers)`` axes, so it accepts
    both single-map ``(n_sources, n_steps, n_receivers)`` stacks and batched
    ``(n_models, n_sources, n_steps, n_receivers)`` arrays.  Shots with zero
    amplitude are left untouched instead of dividing by zero.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim < 2:
        raise ValueError("expected gathers with trailing (time, receiver) axes")
    peak = np.max(np.abs(data), axis=(-2, -1), keepdims=True)
    return data / np.where(peak > 0.0, peak, 1.0)


@dataclass
class ForwardModel:
    """Forward-modelling engine binding a survey to a simulation config.

    Parameters
    ----------
    survey:
        Acquisition geometry (sources and receivers on the surface).
    config:
        Finite-difference discretisation.  ``config.n_steps`` sets the number
        of recorded time samples per trace.
    peak_frequency:
        Dominant frequency of the Ricker source wavelet in Hz.
    normalize:
        If ``True``, each shot gather is scaled by its own maximum absolute
        amplitude so gathers from different velocity models (and shots of
        different strengths) are comparable.
    propagator:
        Propagation engine: ``None`` (registry default), a registered name
        (``"scalar"``, ``"batched"``) or a factory callable — see
        :func:`repro.seismic.propagators.get_propagator`.
    kernel:
        Time-loop kernel selection for engines that support one (``None`` =
        ambient ``QUGEO_SEISMIC_KERNEL`` default) — see
        :func:`repro.seismic.kernels.get_kernel`.  Passing an explicit
        kernel to an engine without kernel support raises.
    """

    survey: SurveyGeometry
    config: SimulationConfig = field(default_factory=SimulationConfig)
    peak_frequency: float = 15.0
    normalize: bool = True
    propagator: PropagatorSpec = None
    kernel: object = None

    def source_wavelet(self) -> np.ndarray:
        """Return the Ricker source wavelet used for every shot."""
        return ricker_wavelet(self.config.n_steps, self.config.dt,
                              self.peak_frequency)

    def _check_width(self, velocity: np.ndarray) -> None:
        if velocity.shape[-1] != self.survey.nx:
            raise ValueError(
                f"velocity width {velocity.shape[-1]} does not match survey "
                f"nx {self.survey.nx}")

    def _build_simulator(self, factory, velocity):
        if self.kernel is None:
            return factory(velocity, self.config)
        if not getattr(factory, "supports_kernel", False):
            raise ValueError(
                f"propagator {factory!r} does not accept a kernel selection")
        return factory(velocity, self.config, kernel=self.kernel)

    def model_shots(self, velocity: np.ndarray) -> np.ndarray:
        """Simulate every shot of the survey over ``velocity``.

        Returns an array of shape ``(n_sources, n_steps, n_receivers)``.
        """
        velocity = np.asarray(velocity, dtype=np.float64)
        if velocity.ndim != 2:
            raise ValueError("velocity must be a 2-D map [depth, offset]")
        self._check_width(velocity)
        telemetry = get_telemetry()
        telemetry.counter("forward_model.calls").inc()
        telemetry.counter("forward_model.models").inc()
        with telemetry.span("forward_model.shots"):
            simulator = self._build_simulator(get_propagator(self.propagator),
                                              velocity)
            data = simulator.simulate_shots(self.survey.source_positions(),
                                            self.source_wavelet(),
                                            self.survey.receiver_positions())
            if self.normalize:
                data = normalize_per_shot(data)
            return data

    def model_shots_batch(self, velocities: np.ndarray,
                          chunk_size: Optional[int] = None) -> np.ndarray:
        """Simulate the survey over a stack of velocity maps at once.

        Engines that support a model batch axis (``supports_model_batch``)
        advance ``chunk_size`` maps per shared time loop; other engines fall
        back to one :meth:`model_shots` call per map.

        Parameters
        ----------
        velocities:
            ``(n_models, nz, nx)`` stack of velocity maps sharing the
            survey's geometry.
        chunk_size:
            Maps propagated per batched call (bounds peak memory:
            each chunk holds ``chunk * n_sources`` wavefields).  ``None``
            propagates the whole stack in one call.

        Returns an array of shape
        ``(n_models, n_sources, n_steps, n_receivers)``.
        """
        velocities = np.asarray(velocities, dtype=np.float64)
        if velocities.ndim != 3:
            raise ValueError(
                "velocities must be a 3-D stack [model, depth, offset]")
        if velocities.shape[0] == 0:
            raise ValueError("velocity stack must contain at least one model")
        self._check_width(velocities)
        factory = get_propagator(self.propagator)
        if not getattr(factory, "supports_model_batch", False):
            return np.stack([self.model_shots(v) for v in velocities])

        sources = self.survey.source_positions()
        receivers = self.survey.receiver_positions()
        wavelet = self.source_wavelet()
        n_models = velocities.shape[0]
        chunk = n_models if chunk_size is None else max(1, int(chunk_size))
        telemetry = get_telemetry()
        telemetry.counter("forward_model.calls").inc()
        telemetry.counter("forward_model.models").inc(n_models)
        with telemetry.span("forward_model.shots"):
            blocks = []
            for start in range(0, n_models, chunk):
                simulator = self._build_simulator(
                    factory, velocities[start:start + chunk])
                blocks.append(
                    simulator.simulate_shots(sources, wavelet, receivers))
            data = np.concatenate(blocks, axis=0)
            if self.normalize:
                data = normalize_per_shot(data)
            return data


def forward_model_shot_gather(velocity: np.ndarray,
                              n_sources: int = 5,
                              n_receivers: Optional[int] = None,
                              n_steps: int = 256,
                              dx: float = 10.0,
                              dt: Optional[float] = None,
                              peak_frequency: float = 15.0,
                              boundary_width: int = 8,
                              normalize: bool = True,
                              propagator: PropagatorSpec = None) -> np.ndarray:
    """Convenience wrapper: build a survey + config and model all shots.

    Parameters mirror :class:`ForwardModel`; ``dt`` defaults to a CFL-stable
    value for the given velocity model, and a user-supplied ``dt`` is
    CFL-validated up front so violations surface with the caller's
    parameters instead of deep inside the simulator.  The receiver count
    defaults to the model width.

    Returns an array of shape ``(n_sources, n_steps, n_receivers)``.
    """
    velocity = np.asarray(velocity, dtype=np.float64)
    if velocity.ndim != 2:
        raise ValueError("velocity must be a 2-D map [depth, offset]")
    nz, nx = velocity.shape
    if n_receivers is None:
        n_receivers = nx
    from repro.seismic.boundary import SpongeBoundary

    boundary = SpongeBoundary(width=min(boundary_width, max(1, min(nz, nx) // 3 - 1)))
    max_velocity = float(velocity.max())
    if dt is None:
        dt = stable_time_step(max_velocity, dx=dx, dz=dx, spatial_order=4)
    config = SimulationConfig(dx=dx, dz=dx, dt=dt, n_steps=n_steps,
                              spatial_order=4, boundary=boundary)
    config.validate_cfl(max_velocity)
    survey = SurveyGeometry(n_sources=n_sources, n_receivers=n_receivers, nx=nx)
    model = ForwardModel(survey=survey, config=config,
                         peak_frequency=peak_frequency, normalize=normalize,
                         propagator=propagator)
    return model.model_shots(velocity)
