"""Multi-shot forward modelling: velocity map -> seismic shot gathers.

This is the "Forward Modeling" step of QuGeoData (Section 3.1.1 of the
paper): given a velocity map and an acquisition geometry, simulate the
pressure wavefield of every source with the acoustic propagator and record
it at every receiver.  The result has OpenFWI's layout
``(n_sources, n_time_steps, n_receivers)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.seismic.acoustic2d import AcousticSimulator2D, SimulationConfig
from repro.seismic.survey import SurveyGeometry
from repro.seismic.wavelets import ricker_wavelet


@dataclass
class ForwardModel:
    """Forward-modelling engine binding a survey to a simulation config.

    Parameters
    ----------
    survey:
        Acquisition geometry (sources and receivers on the surface).
    config:
        Finite-difference discretisation.  ``config.n_steps`` sets the number
        of recorded time samples per trace.
    peak_frequency:
        Dominant frequency of the Ricker source wavelet in Hz.
    normalize:
        If ``True``, each shot gather is scaled by its maximum absolute
        amplitude so gathers from different velocity models are comparable.
    """

    survey: SurveyGeometry
    config: SimulationConfig = field(default_factory=SimulationConfig)
    peak_frequency: float = 15.0
    normalize: bool = True

    def source_wavelet(self) -> np.ndarray:
        """Return the Ricker source wavelet used for every shot."""
        return ricker_wavelet(self.config.n_steps, self.config.dt,
                              self.peak_frequency)

    def model_shots(self, velocity: np.ndarray) -> np.ndarray:
        """Simulate every shot of the survey over ``velocity``.

        Returns an array of shape ``(n_sources, n_steps, n_receivers)``.
        """
        velocity = np.asarray(velocity, dtype=np.float64)
        if velocity.shape[1] != self.survey.nx:
            raise ValueError(
                f"velocity width {velocity.shape[1]} does not match survey nx "
                f"{self.survey.nx}")
        simulator = AcousticSimulator2D(velocity, self.config)
        wavelet = self.source_wavelet()
        receivers = self.survey.receiver_positions()
        gathers = []
        for source in self.survey.source_positions():
            gather = simulator.simulate_shot(source, wavelet, receivers)
            gathers.append(gather)
        data = np.stack(gathers)
        if self.normalize:
            peak = np.max(np.abs(data))
            if peak > 0:
                data = data / peak
        return data


def forward_model_shot_gather(velocity: np.ndarray,
                              n_sources: int = 5,
                              n_receivers: Optional[int] = None,
                              n_steps: int = 256,
                              dx: float = 10.0,
                              dt: Optional[float] = None,
                              peak_frequency: float = 15.0,
                              boundary_width: int = 8,
                              normalize: bool = True) -> np.ndarray:
    """Convenience wrapper: build a survey + config and model all shots.

    Parameters mirror :class:`ForwardModel`; ``dt`` defaults to a CFL-stable
    value for the given velocity model.  The receiver count defaults to the
    model width.

    Returns an array of shape ``(n_sources, n_steps, n_receivers)``.
    """
    velocity = np.asarray(velocity, dtype=np.float64)
    if velocity.ndim != 2:
        raise ValueError("velocity must be a 2-D map [depth, offset]")
    nz, nx = velocity.shape
    if n_receivers is None:
        n_receivers = nx
    from repro.seismic.boundary import SpongeBoundary

    boundary = SpongeBoundary(width=min(boundary_width, max(1, min(nz, nx) // 3 - 1)))
    config = SimulationConfig(dx=dx, dz=dx, dt=0.001, n_steps=n_steps,
                              spatial_order=4, boundary=boundary)
    if dt is None:
        dt = config.stable_dt(float(velocity.max()))
    config = SimulationConfig(dx=dx, dz=dx, dt=dt, n_steps=n_steps,
                              spatial_order=4, boundary=boundary)
    survey = SurveyGeometry(n_sources=n_sources, n_receivers=n_receivers, nx=nx)
    model = ForwardModel(survey=survey, config=config,
                         peak_frequency=peak_frequency, normalize=normalize)
    return model.model_shots(velocity)
