"""Seismic source wavelets.

OpenFWI and the QuGeo paper drive the acoustic solver with a Ricker wavelet.
The paper lowers the dominant source frequency from 15 Hz to 8 Hz when the
time axis is down-scaled (Section 4.1 / Figure 6) so that the wavelength
stays resolvable at the coarser sampling rate; :func:`dominant_frequency`
captures that rule.
"""

from __future__ import annotations

import numpy as np


def ricker_wavelet(n_samples: int, dt: float, peak_frequency: float,
                   delay: float = None, amplitude: float = 1.0) -> np.ndarray:
    """Return a Ricker (Mexican-hat) wavelet sampled on ``n_samples`` steps.

    Parameters
    ----------
    n_samples:
        Number of time samples.
    dt:
        Time step in seconds.
    peak_frequency:
        Dominant frequency in Hz.
    delay:
        Time of the wavelet peak in seconds.  Defaults to ``1.5 /
        peak_frequency`` so the wavelet starts near zero amplitude.
    amplitude:
        Peak amplitude.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if dt <= 0:
        raise ValueError("dt must be positive")
    if peak_frequency <= 0:
        raise ValueError("peak_frequency must be positive")
    if delay is None:
        delay = 1.5 / peak_frequency
    t = np.arange(n_samples) * dt - delay
    arg = (np.pi * peak_frequency * t) ** 2
    return amplitude * (1.0 - 2.0 * arg) * np.exp(-arg)


def nyquist_record_stride(dt: float, peak_frequency: float,
                          max_frequency_factor: float = 3.0,
                          oversample: float = 2.0) -> int:
    """Largest receiver-recording stride that keeps the source band sampled.

    A Ricker wavelet of peak frequency ``f`` carries essentially no energy
    above ``max_frequency_factor * f`` (~3f covers >99.9% of the spectrum).
    Recording every ``stride``-th step samples the trace at
    ``1 / (dt * stride)`` Hz; this helper returns the largest stride that
    keeps that rate at least ``oversample`` times the Nyquist rate of the
    band edge, i.e. ``2 * oversample * max_frequency_factor * f``.

    The propagator's time step is CFL-bound far below the signal bandwidth
    (sub-millisecond steps for a 15 Hz source), so strides of 4-10x are
    typical — shrinking stored shot gathers by the same factor with no
    information loss.  Pass the result as ``record_every`` on a
    :class:`~repro.seismic.acoustic2d.SimulationConfig`.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    if peak_frequency <= 0:
        raise ValueError("peak_frequency must be positive")
    if max_frequency_factor <= 0 or oversample <= 0:
        raise ValueError("max_frequency_factor and oversample must be positive")
    required_rate = 2.0 * oversample * max_frequency_factor * peak_frequency
    return max(1, int(np.floor(1.0 / (dt * required_rate))))


def dominant_frequency(original_frequency: float, original_steps: int,
                       scaled_steps: int, minimum: float = 1.0) -> float:
    """Rescale the source dominant frequency for a coarser time axis.

    When QuGeoData shrinks the number of time steps (e.g. 1000 -> 32 as in the
    paper's example) the Nyquist limit of the recorded trace drops.  The
    physics-guided scaling therefore lowers the source frequency
    proportionally (the paper uses 15 Hz -> 8 Hz when halving the usable
    bandwidth) so that no information is irrecoverably aliased.

    Parameters
    ----------
    original_frequency:
        Dominant frequency used for the full-resolution simulation (Hz).
    original_steps, scaled_steps:
        Number of time samples before and after scaling (total duration is
        assumed unchanged).
    minimum:
        Lower bound on the returned frequency (Hz).
    """
    if original_steps <= 0 or scaled_steps <= 0:
        raise ValueError("step counts must be positive")
    if scaled_steps >= original_steps:
        return float(original_frequency)
    ratio = scaled_steps / original_steps
    # The usable bandwidth shrinks with the square root of the decimation so
    # the wavelet stays oscillatory but resolvable (matches the paper's
    # 15 Hz -> 8 Hz choice for a ~4x coarser effective sampling).  For mild
    # decimation (ratio > 0.25) the sqrt law would *exceed* the original
    # frequency, so the result is clamped: scaling never raises the source
    # frequency above the full-resolution one.
    scaled = original_frequency * np.sqrt(ratio) * 2.0
    return float(min(float(original_frequency), max(minimum, scaled)))
