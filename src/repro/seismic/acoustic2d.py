"""2-D acoustic finite-difference wave propagation.

Implements the governing equation of the paper (Eq. 1),

    laplacian(p) - (1/c^2) d^2 p / dt^2 = s,

for an isotropic constant-density medium, discretised with a 2nd-order
leap-frog scheme in time and a 4th-order central stencil in space (the "2-8"
family referenced by the paper; the spatial order is configurable).  Outgoing
energy is absorbed with a :class:`~repro.seismic.boundary.SpongeBoundary`.

The solver records the pressure field at receiver locations every time step,
producing the shot gathers that constitute OpenFWI-style seismic data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.seismic.boundary import SpongeBoundary


# Central finite-difference coefficients for the second derivative.
_LAPLACIAN_COEFFS = {
    2: np.array([1.0, -2.0, 1.0]),
    4: np.array([-1.0 / 12, 4.0 / 3, -5.0 / 2, 4.0 / 3, -1.0 / 12]),
    8: np.array([-1.0 / 560, 8.0 / 315, -1.0 / 5, 8.0 / 5, -205.0 / 72,
                 8.0 / 5, -1.0 / 5, 8.0 / 315, -1.0 / 560]),
}


@dataclass
class SimulationConfig:
    """Discretisation parameters of the acoustic simulation.

    Parameters
    ----------
    dx, dz:
        Grid spacing in metres.
    dt:
        Time step in seconds.  Must satisfy the CFL condition for the chosen
        spatial order and maximum velocity; :meth:`validate_cfl` checks it.
    n_steps:
        Number of time steps to record.
    spatial_order:
        Order of the spatial stencil (2, 4 or 8).
    boundary:
        Absorbing boundary configuration.
    """

    dx: float = 10.0
    dz: float = 10.0
    dt: float = 0.001
    n_steps: int = 1000
    spatial_order: int = 4
    boundary: SpongeBoundary = field(default_factory=SpongeBoundary)

    def __post_init__(self) -> None:
        if self.spatial_order not in _LAPLACIAN_COEFFS:
            raise ValueError(
                f"spatial_order must be one of {sorted(_LAPLACIAN_COEFFS)}")
        if self.dx <= 0 or self.dz <= 0 or self.dt <= 0:
            raise ValueError("dx, dz and dt must be positive")
        if self.n_steps <= 0:
            raise ValueError("n_steps must be positive")

    def cfl_number(self, max_velocity: float) -> float:
        """Return the Courant number for ``max_velocity``."""
        return float(max_velocity * self.dt *
                     np.sqrt(1.0 / self.dx**2 + 1.0 / self.dz**2))

    def validate_cfl(self, max_velocity: float, limit: float = None) -> None:
        """Raise :class:`ValueError` if the CFL condition is violated."""
        if limit is None:
            # Conservative stability limits for the leap-frog scheme.
            limit = {2: 1.0, 4: 0.857, 8: 0.777}[self.spatial_order]
        value = self.cfl_number(max_velocity)
        if value > limit:
            raise ValueError(
                f"CFL number {value:.3f} exceeds stability limit {limit:.3f}; "
                "reduce dt or increase grid spacing")

    def stable_dt(self, max_velocity: float, safety: float = 0.9) -> float:
        """Return a time step satisfying the CFL condition for ``max_velocity``."""
        limit = {2: 1.0, 4: 0.857, 8: 0.777}[self.spatial_order]
        return float(safety * limit /
                     (max_velocity * np.sqrt(1.0 / self.dx**2 + 1.0 / self.dz**2)))


class AcousticSimulator2D:
    """Leap-frog acoustic wave propagator on a regular 2-D grid.

    Parameters
    ----------
    velocity:
        2-D array of wave velocities in m/s, indexed ``[depth, offset]``.
    config:
        Discretisation parameters.  ``config.dt`` is checked against the CFL
        condition on construction.
    """

    def __init__(self, velocity: np.ndarray, config: SimulationConfig = None) -> None:
        self.velocity = np.asarray(velocity, dtype=np.float64)
        if self.velocity.ndim != 2:
            raise ValueError("velocity must be a 2-D array [depth, offset]")
        if np.any(self.velocity <= 0):
            raise ValueError("velocities must be strictly positive")
        self.config = config or SimulationConfig()
        self.config.validate_cfl(float(self.velocity.max()))
        self._mask = self.config.boundary.build_mask(self.velocity.shape)
        self._coeffs = _LAPLACIAN_COEFFS[self.config.spatial_order]
        self._pad = len(self._coeffs) // 2

    # ------------------------------------------------------------------ #
    # numerics
    # ------------------------------------------------------------------ #
    def _laplacian(self, field: np.ndarray) -> np.ndarray:
        """4th/2nd/8th-order Laplacian with edge replication padding."""
        pad = self._pad
        coeffs = self._coeffs
        padded = np.pad(field, pad, mode="edge")
        nz, nx = field.shape
        lap = np.zeros_like(field)
        for k, c in enumerate(coeffs):
            offset = k - pad
            lap += c * padded[pad + offset:pad + offset + nz, pad:pad + nx] / self.config.dz**2
            lap += c * padded[pad:pad + nz, pad + offset:pad + offset + nx] / self.config.dx**2
        return lap

    # ------------------------------------------------------------------ #
    # simulation
    # ------------------------------------------------------------------ #
    def simulate_shot(self, source_position: Tuple[int, int],
                      source_wavelet: Sequence[float],
                      receiver_positions: Iterable[Tuple[int, int]],
                      record_wavefield: bool = False,
                      wavefield_stride: int = 10):
        """Propagate one shot and record traces at the receivers.

        Parameters
        ----------
        source_position:
            ``(row, column)`` grid index where the source injects energy.
        source_wavelet:
            Source time function; padded/truncated to ``config.n_steps``.
        receiver_positions:
            Iterable of ``(row, column)`` receiver grid indices.
        record_wavefield:
            Also return pressure snapshots every ``wavefield_stride`` steps
            (used by visual examples; costs memory).

        Returns
        -------
        numpy.ndarray
            Shot gather of shape ``(n_steps, n_receivers)``.
        list of numpy.ndarray, optional
            Pressure snapshots when ``record_wavefield`` is true.
        """
        nz, nx = self.velocity.shape
        src_z, src_x = source_position
        if not (0 <= src_z < nz and 0 <= src_x < nx):
            raise ValueError(f"source {source_position} outside grid {self.velocity.shape}")
        receivers: List[Tuple[int, int]] = list(receiver_positions)
        for rz, rx in receivers:
            if not (0 <= rz < nz and 0 <= rx < nx):
                raise ValueError(f"receiver ({rz}, {rx}) outside grid")

        n_steps = self.config.n_steps
        wavelet = np.zeros(n_steps, dtype=np.float64)
        src = np.asarray(source_wavelet, dtype=np.float64)
        wavelet[:min(n_steps, src.size)] = src[:n_steps]

        dt2 = self.config.dt**2
        c2 = self.velocity**2

        p_prev = np.zeros((nz, nx), dtype=np.float64)
        p_curr = np.zeros((nz, nx), dtype=np.float64)
        gather = np.zeros((n_steps, len(receivers)), dtype=np.float64)
        snapshots: List[np.ndarray] = []

        rec_rows = np.array([r for r, _ in receivers], dtype=np.intp)
        rec_cols = np.array([c for _, c in receivers], dtype=np.intp)

        # Source scaling: inject s * c^2 * dt^2 at the source cell, normalised
        # by the cell area so amplitudes are grid-independent.
        src_scale = c2[src_z, src_x] * dt2 / (self.config.dx * self.config.dz)

        for step in range(n_steps):
            lap = self._laplacian(p_curr)
            p_next = 2.0 * p_curr - p_prev + dt2 * c2 * lap
            p_next[src_z, src_x] += wavelet[step] * src_scale

            # Sponge damping on both time levels keeps the scheme stable.
            p_next *= self._mask
            p_curr *= self._mask

            gather[step] = p_next[rec_rows, rec_cols]
            if record_wavefield and step % wavefield_stride == 0:
                snapshots.append(p_next.copy())

            p_prev, p_curr = p_curr, p_next

        if record_wavefield:
            return gather, snapshots
        return gather
