"""2-D acoustic finite-difference wave propagation.

Implements the governing equation of the paper (Eq. 1),

    laplacian(p) - (1/c^2) d^2 p / dt^2 = s,

for an isotropic constant-density medium, discretised with a 2nd-order
leap-frog scheme in time and a 4th-order central stencil in space (the "2-8"
family referenced by the paper; the spatial order is configurable).  Outgoing
energy is absorbed with a :class:`~repro.seismic.boundary.SpongeBoundary`.

The solver records the pressure field at receiver locations every
``record_every``-th time step (every step by default), producing the shot
gathers that constitute OpenFWI-style seismic data.

The batched engine delegates its time loop to a kernel resolved from the
:mod:`repro.seismic.kernels` registry (``QUGEO_SEISMIC_KERNEL``): the
``"python"`` kernel is the vectorised numpy loop (bit-identical to the
historical inline loop), the ``"numba"`` kernel fuses the whole update into
one compiled pass per wavefield when numba is installed.  Boundaries may be
a :class:`~repro.seismic.boundary.SpongeBoundary` or a
:class:`~repro.seismic.boundary.PMLBoundary`, optionally padded outside the
velocity model (``pad_grid``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

try:  # SciPy is optional: the batched engine falls back to banded matmuls.
    from scipy.ndimage import correlate1d as _correlate1d
    from scipy.linalg.blas import daxpy as _daxpy
    from scipy.linalg.blas import saxpy as _saxpy
except ImportError:  # pragma: no cover - exercised via the fallback test
    _correlate1d = None
    _daxpy = None
    _saxpy = None

from repro.seismic.boundary import PMLBoundary, SpongeBoundary
from repro.seismic.kernels import resolve_kernel
from repro.seismic.kernels.base import KernelPlan, PMLState
from repro.telemetry import get_telemetry
from repro.xm import get_dtype_policy


# Central finite-difference coefficients for the second derivative.
_LAPLACIAN_COEFFS = {
    2: np.array([1.0, -2.0, 1.0]),
    4: np.array([-1.0 / 12, 4.0 / 3, -5.0 / 2, 4.0 / 3, -1.0 / 12]),
    8: np.array([-1.0 / 560, 8.0 / 315, -1.0 / 5, 8.0 / 5, -205.0 / 72,
                 8.0 / 5, -1.0 / 5, 8.0 / 315, -1.0 / 560]),
}

# Conservative stability limits of the leap-frog scheme per spatial order.
_CFL_LIMITS = {2: 1.0, 4: 0.857, 8: 0.777}


def stable_time_step(max_velocity: float, dx: float, dz: float = None,
                     spatial_order: int = 4, safety: float = 0.9) -> float:
    """Return a CFL-stable ``dt`` for the given grid and maximum velocity.

    Module-level so callers can pick a stable time step *before* building a
    :class:`SimulationConfig` (which validates its ``dt`` on use) instead of
    constructing a throwaway config just to ask it for a stable step.
    """
    if dz is None:
        dz = dx
    if spatial_order not in _CFL_LIMITS:
        raise ValueError(f"spatial_order must be one of {sorted(_CFL_LIMITS)}")
    if max_velocity <= 0 or dx <= 0 or dz <= 0:
        raise ValueError("max_velocity, dx and dz must be positive")
    limit = _CFL_LIMITS[spatial_order]
    return float(safety * limit /
                 (max_velocity * np.sqrt(1.0 / dx**2 + 1.0 / dz**2)))


@dataclass
class SimulationConfig:
    """Discretisation parameters of the acoustic simulation.

    Parameters
    ----------
    dx, dz:
        Grid spacing in metres.
    dt:
        Time step in seconds.  Must satisfy the CFL condition for the chosen
        spatial order and maximum velocity; :meth:`validate_cfl` checks it.
    n_steps:
        Number of time steps to record.
    spatial_order:
        Order of the spatial stencil (2, 4 or 8).
    boundary:
        Absorbing boundary configuration (:class:`SpongeBoundary` or
        :class:`~repro.seismic.boundary.PMLBoundary`; PML requires the
        batched engine).
    record_every:
        Receiver recording stride in time steps.  The default 1 records
        every step (bit-identical to the historical behaviour); larger
        strides decimate the gather to ``ceil(n_steps / record_every)``
        samples at an effective sampling interval of ``dt * record_every``
        — see :func:`repro.seismic.wavelets.nyquist_record_stride` for a
        stride that keeps the source band un-aliased.
    """

    dx: float = 10.0
    dz: float = 10.0
    dt: float = 0.001
    n_steps: int = 1000
    spatial_order: int = 4
    boundary: SpongeBoundary = field(default_factory=SpongeBoundary)
    record_every: int = 1

    def __post_init__(self) -> None:
        if self.spatial_order not in _LAPLACIAN_COEFFS:
            raise ValueError(
                f"spatial_order must be one of {sorted(_LAPLACIAN_COEFFS)}")
        if self.dx <= 0 or self.dz <= 0 or self.dt <= 0:
            raise ValueError("dx, dz and dt must be positive")
        if self.n_steps <= 0:
            raise ValueError("n_steps must be positive")
        if int(self.record_every) != self.record_every or self.record_every < 1:
            raise ValueError("record_every must be a positive integer")
        self.record_every = int(self.record_every)

    @property
    def n_recorded(self) -> int:
        """Recorded time samples per trace: ``ceil(n_steps / record_every)``."""
        return -(-self.n_steps // self.record_every)

    @property
    def effective_dt(self) -> float:
        """Sampling interval of the recorded traces (``dt * record_every``)."""
        return self.dt * self.record_every

    def cfl_number(self, max_velocity: float) -> float:
        """Return the Courant number for ``max_velocity``."""
        return float(max_velocity * self.dt *
                     np.sqrt(1.0 / self.dx**2 + 1.0 / self.dz**2))

    def validate_cfl(self, max_velocity: float, limit: float = None) -> None:
        """Raise :class:`ValueError` if the CFL condition is violated."""
        if limit is None:
            limit = _CFL_LIMITS[self.spatial_order]
        value = self.cfl_number(max_velocity)
        if value > limit:
            raise ValueError(
                f"CFL number {value:.3f} exceeds stability limit {limit:.3f}; "
                "reduce dt or increase grid spacing")

    def stable_dt(self, max_velocity: float, safety: float = 0.9) -> float:
        """Return a time step satisfying the CFL condition for ``max_velocity``."""
        return stable_time_step(max_velocity, dx=self.dx, dz=self.dz,
                                spatial_order=self.spatial_order, safety=safety)


def _check_positions(positions: Iterable[Tuple[int, int]], nz: int, nx: int,
                     kind: str) -> List[Tuple[int, int]]:
    """Validate grid positions and return them as a list."""
    checked: List[Tuple[int, int]] = []
    for row, col in positions:
        if not (0 <= row < nz and 0 <= col < nx):
            raise ValueError(f"{kind} ({row}, {col}) outside grid ({nz}, {nx})")
        checked.append((row, col))
    return checked


def _shot_wavelets(source_wavelet, n_shots: int, n_steps: int) -> np.ndarray:
    """Pad/truncate wavelet(s) to ``(n_shots, n_steps)``.

    Accepts a single 1-D wavelet shared by every shot or a 2-D
    ``(n_shots, n_samples)`` array of per-shot wavelets.
    """
    src = np.asarray(source_wavelet, dtype=np.float64)
    if src.ndim == 1:
        src = np.broadcast_to(src, (n_shots, src.size))
    elif src.ndim != 2 or src.shape[0] != n_shots:
        raise ValueError(
            f"source_wavelet must be 1-D or of shape (n_shots, n_samples); "
            f"got {src.shape} for {n_shots} shots")
    wavelets = np.zeros((n_shots, n_steps), dtype=np.float64)
    n_copy = min(n_steps, src.shape[1])
    wavelets[:, :n_copy] = src[:, :n_steps]
    return wavelets


class AcousticSimulator2D:
    """Leap-frog acoustic wave propagator on a regular 2-D grid.

    Parameters
    ----------
    velocity:
        2-D array of wave velocities in m/s, indexed ``[depth, offset]``.
    config:
        Discretisation parameters.  ``config.dt`` is checked against the CFL
        condition on construction.
    """

    #: Whether instances accept a leading velocity-model batch axis.
    supports_model_batch = False

    def __init__(self, velocity: np.ndarray, config: SimulationConfig = None) -> None:
        self.velocity = np.asarray(velocity, dtype=np.float64)
        if self.velocity.ndim != 2:
            raise ValueError("velocity must be a 2-D array [depth, offset]")
        if np.any(self.velocity <= 0):
            raise ValueError("velocities must be strictly positive")
        self.config = config or SimulationConfig()
        self.config.validate_cfl(float(self.velocity.max()))
        boundary = self.config.boundary
        if not isinstance(boundary, SpongeBoundary):
            raise ValueError(
                "AcousticSimulator2D only supports SpongeBoundary; use the "
                "batched propagator for PML boundaries")
        if boundary.pad_grid:
            raise ValueError(
                "pad_grid boundaries require the batched propagator")
        self._mask = boundary.build_mask(self.velocity.shape)
        self._coeffs = _LAPLACIAN_COEFFS[self.config.spatial_order]
        self._pad = len(self._coeffs) // 2
        # Stencil coefficients pre-scaled per axis (hoists the / dh**2 out
        # of the Laplacian loop) and preallocated scratch: the padded field
        # and the Laplacian accumulator are reused across every time step.
        self._coeffs_z = self._coeffs / self.config.dz**2
        self._coeffs_x = self._coeffs / self.config.dx**2
        nz, nx = self.velocity.shape
        pad = self._pad
        self._padded = np.zeros((nz + 2 * pad, nx + 2 * pad), dtype=np.float64)
        self._lap = np.zeros((nz, nx), dtype=np.float64)

    # ------------------------------------------------------------------ #
    # numerics
    # ------------------------------------------------------------------ #
    def _laplacian(self, field: np.ndarray) -> np.ndarray:
        """4th/2nd/8th-order Laplacian with edge replication padding.

        Returns the preallocated accumulator (valid until the next call).
        """
        pad = self._pad
        nz, nx = field.shape
        padded = self._padded
        # Edge-replicated fill of the scratch buffer, matching
        # ``np.pad(field, pad, mode="edge")`` including the corners.
        padded[pad:pad + nz, pad:pad + nx] = field
        padded[pad:pad + nz, :pad] = field[:, :1]
        padded[pad:pad + nz, pad + nx:] = field[:, -1:]
        padded[:pad, :] = padded[pad:pad + 1, :]
        padded[pad + nz:, :] = padded[pad + nz - 1:pad + nz, :]
        lap = self._lap
        lap[:] = 0.0
        for k in range(len(self._coeffs)):
            offset = k - pad
            lap += self._coeffs_z[k] * padded[pad + offset:pad + offset + nz,
                                              pad:pad + nx]
            lap += self._coeffs_x[k] * padded[pad:pad + nz,
                                              pad + offset:pad + offset + nx]
        return lap

    # ------------------------------------------------------------------ #
    # simulation
    # ------------------------------------------------------------------ #
    def simulate_shot(self, source_position: Tuple[int, int],
                      source_wavelet: Sequence[float],
                      receiver_positions: Iterable[Tuple[int, int]],
                      record_wavefield: bool = False,
                      wavefield_stride: int = 10):
        """Propagate one shot and record traces at the receivers.

        Parameters
        ----------
        source_position:
            ``(row, column)`` grid index where the source injects energy.
        source_wavelet:
            Source time function; padded/truncated to ``config.n_steps``.
        receiver_positions:
            Iterable of ``(row, column)`` receiver grid indices.
        record_wavefield:
            Also return pressure snapshots every ``wavefield_stride`` steps
            (used by visual examples; costs memory).

        Returns
        -------
        numpy.ndarray
            Shot gather of shape ``(config.n_recorded, n_receivers)``
            (``n_steps`` rows at the default ``record_every=1``).
        list of numpy.ndarray, optional
            Pressure snapshots when ``record_wavefield`` is true.
        """
        nz, nx = self.velocity.shape
        (src_z, src_x), = _check_positions([source_position], nz, nx, "source")
        receivers: List[Tuple[int, int]] = _check_positions(
            receiver_positions, nz, nx, "receiver")

        n_steps = self.config.n_steps
        record_every = self.config.record_every
        wavelet = np.zeros(n_steps, dtype=np.float64)
        src = np.asarray(source_wavelet, dtype=np.float64)
        wavelet[:min(n_steps, src.size)] = src[:n_steps]

        dt2 = self.config.dt**2
        c2 = self.velocity**2

        p_prev = np.zeros((nz, nx), dtype=np.float64)
        p_curr = np.zeros((nz, nx), dtype=np.float64)
        gather = np.zeros((self.config.n_recorded, len(receivers)),
                          dtype=np.float64)
        snapshots: List[np.ndarray] = []

        rec_rows = np.array([r for r, _ in receivers], dtype=np.intp)
        rec_cols = np.array([c for _, c in receivers], dtype=np.intp)

        # Source scaling: inject s * c^2 * dt^2 at the source cell, normalised
        # by the cell area so amplitudes are grid-independent.
        src_scale = c2[src_z, src_x] * dt2 / (self.config.dx * self.config.dz)

        for step in range(n_steps):
            lap = self._laplacian(p_curr)
            p_next = 2.0 * p_curr - p_prev + dt2 * c2 * lap
            p_next[src_z, src_x] += wavelet[step] * src_scale

            # Sponge damping on both time levels keeps the scheme stable.
            p_next *= self._mask
            p_curr *= self._mask

            if step % record_every == 0:
                gather[step // record_every] = p_next[rec_rows, rec_cols]
            if record_wavefield and step % wavefield_stride == 0:
                snapshots.append(p_next.copy())

            p_prev, p_curr = p_curr, p_next

        if record_wavefield:
            return gather, snapshots
        return gather

    def simulate_shots(self, source_positions: Iterable[Tuple[int, int]],
                       source_wavelet,
                       receiver_positions: Iterable[Tuple[int, int]],
                       record_wavefield: bool = False,
                       wavefield_stride: int = 10):
        """Propagate every shot independently (reference multi-shot path).

        This is the bit-exact baseline the batched propagator is verified
        against: each source is simulated with :meth:`simulate_shot` and the
        gathers stacked along a leading shot axis.

        Returns
        -------
        numpy.ndarray
            Shot gathers of shape ``(n_shots, n_steps, n_receivers)``.
        list of numpy.ndarray, optional
            When ``record_wavefield`` is true, snapshots every
            ``wavefield_stride`` steps, each of shape ``(n_shots, nz, nx)``.
        """
        sources = list(source_positions)
        if not sources:
            raise ValueError("need at least one source position")
        receivers = list(receiver_positions)
        wavelets = _shot_wavelets(source_wavelet, len(sources),
                                  self.config.n_steps)
        gathers = []
        per_shot_snapshots = []
        for source, wavelet in zip(sources, wavelets):
            result = self.simulate_shot(source, wavelet, receivers,
                                        record_wavefield=record_wavefield,
                                        wavefield_stride=wavefield_stride)
            if record_wavefield:
                gather, snapshots = result
                per_shot_snapshots.append(snapshots)
            else:
                gather = result
            gathers.append(gather)
        stacked = np.stack(gathers)
        if record_wavefield:
            snapshots = [np.stack([shot[i] for shot in per_shot_snapshots])
                         for i in range(len(per_shot_snapshots[0]))]
            return stacked, snapshots
        return stacked


def _stencil_matrix(n: int, coeffs: np.ndarray) -> np.ndarray:
    """Dense 1-D second-derivative operator with edge-replicated boundaries.

    Row ``i`` holds the central-difference coefficients for grid point ``i``;
    out-of-range taps are clamped to the border point, which is exactly the
    ``np.pad(..., mode="edge")`` boundary treatment of the scalar reference
    (clamped taps accumulate onto the border column).
    """
    pad = len(coeffs) // 2
    matrix = np.zeros((n, n), dtype=np.float64)
    rows = np.arange(n)
    for k, c in enumerate(coeffs):
        cols = np.clip(rows + k - pad, 0, n - 1)
        np.add.at(matrix, (rows, cols), c)
    return matrix


def _dilate_bool(mask: np.ndarray) -> np.ndarray:
    """1-D boolean dilation by one cell (marks the pad halo)."""
    out = mask.copy()
    out[:-1] |= mask[1:]
    out[1:] |= mask[:-1]
    return out


def _bool_runs(mask: np.ndarray) -> List[slice]:
    """Contiguous ``True`` runs of a 1-D boolean array, as slices."""
    runs: List[slice] = []
    start = None
    for index, value in enumerate(mask):
        if value and start is None:
            start = index
        elif not value and start is not None:
            runs.append(slice(start, index))
            start = None
    if start is not None:
        runs.append(slice(start, mask.size))
    return runs


class BatchedAcousticSimulator2D:
    """Leap-frog propagator advancing a batch of wavefields per time step.

    One time loop carries a leading batch axis over shots — and optionally
    over velocity models sharing the same grid, geometry and config — so the
    Laplacian, the leap-frog update and the sponge damping are evaluated as
    whole-batch array operations instead of one Python loop per shot.

    The Laplacian is evaluated in one pass per axis instead of ~5 numpy
    temporaries per stencil tap: through ``scipy.ndimage.correlate1d``
    (whose ``mode="nearest"`` boundary is exactly the scalar reference's
    edge-replicated padding) when SciPy is available, otherwise through two
    dense banded-operator matmuls (``D_z @ p`` and ``p @ D_x^T``) whose
    rows encode the same clamped stencil.  Both paths differ from the
    scalar loop only in floating-point summation order (~1e-16 per step),
    so gathers agree with :class:`AcousticSimulator2D` to well inside 1e-10
    rather than bit-for-bit.

    Parameters
    ----------
    velocity:
        ``(nz, nx)`` velocity map shared by every shot, or a
        ``(n_models, nz, nx)`` stack of maps with shared geometry (each shot
        is then fired over every model).
    config:
        Discretisation parameters.  ``config.dt`` is checked against the CFL
        condition of the fastest cell across the whole batch.
    policy:
        Dtype policy (name, instance or ``None`` for the ambient
        ``QUGEO_DTYPE`` / ``float64`` default).  The wavefield buffers,
        stencil material and sponge mask are carried in ``policy.real``
        (halving memory traffic under ``float32``); receiver gathers are
        always accumulated in ``policy.accum_real`` (float64).
    """

    #: Instances accept a leading velocity-model batch axis.
    supports_model_batch = True
    #: Instances accept a time-loop kernel selection.
    supports_kernel = True

    def __init__(self, velocity: np.ndarray, config: SimulationConfig = None,
                 policy=None, kernel=None) -> None:
        self.velocity = np.asarray(velocity, dtype=np.float64)
        if self.velocity.ndim not in (2, 3):
            raise ValueError(
                "velocity must be [depth, offset] or [model, depth, offset]")
        if self.velocity.ndim == 3 and self.velocity.shape[0] == 0:
            raise ValueError("velocity batch must contain at least one model")
        if np.any(self.velocity <= 0):
            raise ValueError("velocities must be strictly positive")
        self.config = config or SimulationConfig()
        self.config.validate_cfl(float(self.velocity.max()))
        self.policy = get_dtype_policy(policy)
        real = self.policy.real
        self._kernel_spec = kernel

        # Optionally extend the grid so the absorbing band lives outside
        # the velocity model: edge-replicated velocity pad, no pad above a
        # free surface.  Sources/receivers stay in model coordinates and
        # are shifted on use.
        boundary = self.config.boundary
        self._is_pml = isinstance(boundary, PMLBoundary)
        pad = int(boundary.width) if getattr(boundary, "pad_grid", False) else 0
        free_surface = bool(getattr(boundary, "free_surface", True))
        self._pad_top = 0 if free_surface else pad
        self._pad_side = pad
        if pad:
            spec = ([(0, 0)] * (self.velocity.ndim - 2)
                    + [(self._pad_top, pad), (pad, pad)])
            self._grid_velocity = np.pad(self.velocity, spec, mode="edge")
        else:
            self._grid_velocity = self.velocity
        nz, nx = self._grid_velocity.shape[-2:]
        self._grid_nz, self._grid_nx = nz, nx

        if self._is_pml:
            boundary.validate_grid((nz, nx))
            self._mask = None
            self._pml_profiles = boundary.profiles(
                (nz, nx), self.config.dx, self.config.dz, self.config.dt,
                float(self.velocity.max()))
        else:
            self._mask = boundary.build_mask((nz, nx)).astype(real, copy=False)
            self._pml_profiles = None
        self._telemetry = get_telemetry()
        coeffs = _LAPLACIAN_COEFFS[self.config.spatial_order]
        self._coeffs_z = (coeffs / self.config.dz**2).astype(real, copy=False)
        self._coeffs_x = (coeffs / self.config.dx**2).astype(real, copy=False)
        # ndimage.correlate1d accumulates in double precision internally, so
        # under float32 it saves nothing; the BLAS matmul path (sgemm) runs
        # ~2x faster at reduced precision and holds the same stencil, so the
        # float32 policy prefers it even when SciPy is present.
        self._use_ndimage = (_correlate1d is not None
                             and real == np.dtype(np.float64))
        if self._use_ndimage:
            self._dz_op = self._dx_op_t = None
        else:
            # Dense banded operators: the fallback without SciPy, and the
            # primary engine at reduced precision.
            self._dz_op = (_stencil_matrix(nz, coeffs)
                           / self.config.dz**2).astype(real, copy=False)
            self._dx_op_t = ((_stencil_matrix(nx, coeffs)
                              / self.config.dx**2)
                             .astype(real, copy=False).T)
        if self._is_pml:
            # Centred first-derivative operators for the PML memory-variable
            # recursions (same clamped-edge treatment as the Laplacian).
            d1 = np.array([-0.5, 0.0, 0.5])
            self._d1_z = (d1 / self.config.dz).astype(real, copy=False)
            self._d1_x = (d1 / self.config.dx).astype(real, copy=False)
            if not self._use_ndimage:
                self._d1z_op = (_stencil_matrix(nz, d1)
                                / self.config.dz).astype(real, copy=False)
                self._d1x_op_t = ((_stencil_matrix(nx, d1) / self.config.dx)
                                  .astype(real, copy=False).T)

    @property
    def grid_shape(self) -> Tuple[int, int]:
        """``(nz, nx)`` of the velocity model (source/receiver coordinates)."""
        return self.velocity.shape[-2:]

    @property
    def padded_grid_shape(self) -> Tuple[int, int]:
        """``(nz, nx)`` of the propagation grid including ``pad_grid`` pads."""
        return (self._grid_nz, self._grid_nx)

    @property
    def padded_cells(self) -> int:
        """Cell count of the propagation grid (every pass scales with it)."""
        return self._grid_nz * self._grid_nx

    @property
    def n_models(self) -> Optional[int]:
        """Number of stacked velocity models, or ``None`` for a single map."""
        return None if self.velocity.ndim == 2 else self.velocity.shape[0]

    # ------------------------------------------------------------------ #
    # numerics
    # ------------------------------------------------------------------ #
    def _lap_z_into(self, field: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Second z-derivative of ``field`` written into ``out``."""
        if self._use_ndimage:
            _correlate1d(field, self._coeffs_z, axis=-2, mode="nearest",
                         output=out)
        else:
            np.matmul(self._dz_op, field, out=out)  # qugeo-lint: disable=QG003 -- out= stencil into preallocated scratch, host-numpy hot loop
        return out

    def _lap_x_into(self, field: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Second x-derivative of ``field`` written into ``out``."""
        if self._use_ndimage:
            _correlate1d(field, self._coeffs_x, axis=-1, mode="nearest",
                         output=out)
        else:
            np.matmul(field, self._dx_op_t, out=out)  # qugeo-lint: disable=QG003 -- out= stencil into preallocated scratch, host-numpy hot loop
        return out

    def _laplacian_into(self, field: np.ndarray, out: np.ndarray,
                        scratch: np.ndarray) -> np.ndarray:
        """Batched Laplacian of ``field`` written into ``out`` (one pass per axis)."""
        self._lap_z_into(field, out)
        self._lap_x_into(field, scratch)
        out += scratch
        return out

    def _d1z_into(self, field: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Centred first z-derivative (PML recursions only)."""
        if self._use_ndimage:
            _correlate1d(field, self._d1_z, axis=-2, mode="nearest",
                         output=out)
        else:
            np.matmul(self._d1z_op, field, out=out)  # qugeo-lint: disable=QG003 -- out= stencil into preallocated scratch, host-numpy hot loop
        return out

    def _d1x_into(self, field: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Centred first x-derivative (PML recursions only)."""
        if self._use_ndimage:
            _correlate1d(field, self._d1_x, axis=-1, mode="nearest",
                         output=out)
        else:
            np.matmul(field, self._d1x_op_t, out=out)  # qugeo-lint: disable=QG003 -- out= stencil into preallocated scratch, host-numpy hot loop
        return out

    # ------------------------------------------------------------------ #
    # simulation
    # ------------------------------------------------------------------ #
    def simulate_shots(self, source_positions: Iterable[Tuple[int, int]],
                       source_wavelet,
                       receiver_positions: Iterable[Tuple[int, int]],
                       record_wavefield: bool = False,
                       wavefield_stride: int = 10):
        """Propagate every shot of the batch with one shared time loop.

        Parameters
        ----------
        source_positions:
            ``(row, column)`` grid index of every shot.
        source_wavelet:
            One wavelet shared by every shot, or a ``(n_shots, n_samples)``
            array of per-shot wavelets; padded/truncated to
            ``config.n_steps``.
        receiver_positions:
            Iterable of ``(row, column)`` receiver grid indices (shared by
            every shot).
        record_wavefield:
            Also return pressure snapshots every ``wavefield_stride`` steps.

        Returns
        -------
        numpy.ndarray
            ``(n_shots, config.n_recorded, n_receivers)`` gathers for a 2-D
            velocity, or ``(n_models, n_shots, n_recorded, n_receivers)``
            for a stacked velocity batch.
        list of numpy.ndarray, optional
            When ``record_wavefield`` is true, snapshots with the same
            leading batch axes and trailing (model) grid shape.
        """
        model_nz, model_nx = self.grid_shape
        nz, nx = self._grid_nz, self._grid_nx
        row_off, col_off = self._pad_top, self._pad_side
        sources = list(source_positions)
        if not sources:
            raise ValueError("need at least one source position")
        sources = _check_positions(sources, model_nz, model_nx, "source")
        receivers = _check_positions(receiver_positions, model_nz, model_nx,
                                     "receiver")

        n_shots = len(sources)
        n_steps = self.config.n_steps
        record_every = self.config.record_every
        n_recorded = self.config.n_recorded
        wavelets = _shot_wavelets(source_wavelet, n_shots, n_steps)

        dt2 = self.config.dt**2
        c2 = self._grid_velocity**2
        src_rows = np.array([r + row_off for r, _ in sources], dtype=np.intp)
        src_cols = np.array([c + col_off for _, c in sources], dtype=np.intp)
        # Flattened-grid indices: single-axis fancy indexing on a reshaped
        # view is measurably cheaper per step than a (row, col) index pair.
        src_flat = src_rows * nx + src_cols
        rec_rows = np.array([r + row_off for r, _ in receivers], dtype=np.intp)
        rec_cols = np.array([c + col_off for _, c in receivers], dtype=np.intp)
        rec_flat = rec_rows * nx + rec_cols

        cell_area = self.config.dx * self.config.dz
        real = self.policy.real
        if self.velocity.ndim == 2:
            batch_shape: Tuple[int, ...] = (n_shots,)
            c2dt2 = (dt2 * c2).astype(real, copy=False)   # (nz, nx)
            src_scale = c2[src_rows, src_cols] * dt2 / cell_area       # (S,)
        else:
            batch_shape = (self.velocity.shape[0], n_shots)
            c2dt2 = (dt2 * c2[:, None]).astype(real, copy=False)
            src_scale = c2[:, src_rows, src_cols] * dt2 / cell_area    # (M, S)
        # Injection amplitudes for every step, scaled once up front:
        # (S, n_steps) or (M, S, n_steps).  Scaling happens in float64 and
        # only the result is cast, so the float32 path loses precision once
        # rather than per factor.
        scaled_wavelets = (src_scale[..., None] * wavelets).astype(
            real, copy=False)
        if real != np.dtype(np.float64):
            # A band-limited wavelet's far skirt (the Ricker's Gaussian
            # envelope) injects amplitudes tens of orders below the peak.
            # At reduced precision those seeds underflow into subnormals as
            # they spread, and subnormal microcode assists then dominate the
            # time loop.  Amplitudes below eps^2 of the per-shot peak are far
            # outside measurable range, so flush them to exact zeros.
            scaled_wavelets = scaled_wavelets.copy()
            peak = np.abs(scaled_wavelets).max(axis=-1, keepdims=True)
            cutoff = (np.finfo(real).eps ** 2) * peak
            scaled_wavelets[np.abs(scaled_wavelets) < cutoff] = 0.0

        # Three rotating wavefield buffers plus two scratch arrays: every
        # whole-batch operation of the time loop writes into preallocated
        # storage, so the per-step cost is a fixed number of memory passes
        # with no allocations.  Injection and trace recording run on
        # flattened ``(total_batch, nz*nx)`` views — single-axis fancy
        # indexing is measurably cheaper per step than an N-d index tuple.
        p_prev = np.zeros(batch_shape + (nz, nx), dtype=real)
        p_curr = np.zeros_like(p_prev)
        p_next = np.zeros_like(p_prev)
        # Scratch buffers are fully overwritten before first read.
        lap = np.empty_like(p_prev)
        lap_x = np.empty_like(p_prev)
        flat_views = {id(buf): buf.reshape(-1, nz * nx)
                      for buf in (p_prev, p_curr, p_next)}
        line_views = {id(buf): buf.reshape(-1)
                      for buf in (p_prev, p_curr, p_next)}

        total_batch = int(np.prod(batch_shape))
        # Every (step, receiver) entry is assigned exactly once in the loop.
        # Gathers accumulate in float64 under every policy: recorded traces
        # are the caller-facing result, and keeping them at accumulation
        # precision costs nothing on the per-step hot path.
        gather = np.empty(batch_shape + (n_recorded, len(receivers)),
                          dtype=self.policy.accum_real)
        gather_flat = gather.reshape(total_batch, n_recorded, len(receivers))
        inject_rows = np.arange(total_batch)
        inject_cols = np.tile(src_flat, total_batch // n_shots)
        inject_amps = scaled_wavelets.reshape(total_batch, n_steps)

        # Hoist per-step lookups out of the hot loop.  BLAS axpy is picked to
        # match the buffer precision (daxpy for float64, saxpy for float32);
        # other precisions fall back to the three-pass in-place update.
        mask = self._mask
        if real == np.dtype(np.float64):
            axpy = _daxpy
        elif real == np.dtype(np.float32):
            axpy = _saxpy
        else:  # pragma: no cover - no such policy today
            axpy = None

        # The causal edge of the discrete wavefront decays super-exponentially
        # through every representable magnitude, so at reduced precision a
        # band of cells is always sitting in subnormal range — and subnormal
        # microcode assists would dominate the whole time loop.  Periodically
        # flushing magnitudes below ~1e-24 (fifteen orders under any signal
        # the float32 gather could resolve) to exact zero keeps that band
        # empty at a cost of two vectorised passes every 16 steps.
        if real != np.dtype(np.float64):
            flush_cutoff = float(np.finfo(real).tiny / np.finfo(real).eps ** 2)
        else:
            flush_cutoff = None

        pml_state = None
        if self._is_pml:
            a_x, b_x, a_z, b_z = self._pml_profiles
            pad_x = a_x != 0.0
            pad_z = a_z != 0.0
            halo_x = _dilate_bool(pad_x)
            halo_z = _dilate_bool(pad_z)
            pml_state = PMLState(
                a_x=a_x, b_x=b_x, a_z=a_z, b_z=b_z,
                x_active=halo_x, z_active=halo_z,
                half_dx_inv=0.5 / self.config.dx,
                half_dz_inv=0.5 / self.config.dz,
                psi_x=np.zeros_like(p_prev), psi_z=np.zeros_like(p_prev),
                zeta_x=np.zeros_like(p_prev), zeta_z=np.zeros_like(p_prev),
                x_strips=_bool_runs(pad_x), z_strips=_bool_runs(pad_z),
                x_halo=_bool_runs(halo_x), z_halo=_bool_runs(halo_z))

        plan = KernelPlan(
            ops=self, telemetry=self._telemetry,
            n_steps=n_steps, record_every=record_every,
            record_wavefield=record_wavefield,
            wavefield_stride=wavefield_stride,
            grid=(nz, nx), batch_shape=batch_shape,
            total_batch=total_batch, n_shots=n_shots,
            real=real, flush_cutoff=flush_cutoff,
            p_prev=p_prev, p_curr=p_curr, p_next=p_next,
            lap=lap, lap_x=lap_x, c2dt2=c2dt2, mask=mask, pml=pml_state,
            src_rows=src_rows, src_cols=src_cols,
            rec_rows=rec_rows, rec_cols=rec_cols, rec_flat=rec_flat,
            inject_rows=inject_rows, inject_cols=inject_cols,
            inject_amps=inject_amps,
            flat_views=flat_views, line_views=line_views, axpy=axpy,
            gather=gather, gather_flat=gather_flat)

        kernel, fallback_reason = resolve_kernel(
            self._kernel_spec, need_snapshots=record_wavefield)
        telemetry = self._telemetry
        timing = telemetry.enabled
        if timing:
            telemetry.counter(f"propagator.kernel.{kernel.name}").inc()
            if fallback_reason is not None:
                telemetry.counter("propagator.kernel.fallbacks").inc()

        loop_start = perf_counter()
        kernel.run(plan)
        elapsed = perf_counter() - loop_start

        if timing:
            telemetry.counter("propagator.steps").inc(n_steps)
            telemetry.counter("propagator.shots").inc(n_shots)
            telemetry.counter("propagator.wavefields").inc(total_batch)
            if elapsed > 0:
                telemetry.gauge("propagator.steps_per_sec").set(
                    n_steps / elapsed)
                telemetry.gauge("propagator.wavefield_steps_per_sec").set(
                    n_steps * total_batch / elapsed)

        if record_wavefield:
            snapshots = plan.snapshots
            if row_off or col_off:
                # Crop padded-grid snapshots back to model coordinates.
                snapshots = [snap[..., row_off:row_off + model_nz,
                                  col_off:col_off + model_nx]
                             for snap in snapshots]
            return gather, snapshots
        return gather
