"""String-keyed registry of acoustic propagator engines.

The seismic side mirrors the :mod:`repro.backends` subsystem: propagation
engines register a factory under a short name (``"scalar"``, ``"batched"``,
...) and callers resolve them with :func:`get_propagator`.  A factory is a
callable ``factory(velocity, config) -> simulator`` returning an object with
the ``simulate_shots`` interface of
:class:`~repro.seismic.acoustic2d.AcousticSimulator2D`; unlike the quantum
backends, instances are bound to a velocity model and therefore not cached.

Resolution order for the default engine:

1. an explicit name (or ready factory) passed by the caller — e.g. from
   :attr:`repro.seismic.forward_modeling.ForwardModel.propagator`;
2. the ``QUGEO_PROPAGATOR`` environment variable;
3. the process-wide default set with :func:`set_default_propagator`
   (``"batched"`` out of the box — it matches the ``"scalar"`` reference to
   machine precision while advancing every shot in one time loop).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from repro.seismic.acoustic2d import (
    AcousticSimulator2D,
    BatchedAcousticSimulator2D,
)
from repro.utils import env

#: Environment variable consulted when no explicit propagator is requested.
PROPAGATOR_ENV_VAR = env.PROPAGATOR

PropagatorFactory = Callable[..., object]
PropagatorSpec = Union[None, str, PropagatorFactory]

_FACTORIES: Dict[str, PropagatorFactory] = {}
_DEFAULT_NAME = "batched"


class PropagatorError(RuntimeError):
    """Base class for propagator registry failures."""


class UnknownPropagatorError(PropagatorError, KeyError):
    """Raised when resolving a name no engine was registered under."""

    def __init__(self, name: str) -> None:
        self.name = name
        available = ", ".join(sorted(_FACTORIES)) or "<none>"
        super().__init__(
            f"unknown acoustic propagator {name!r}; registered propagators: "
            f"{available}")

    def __str__(self) -> str:  # KeyError would quote the repr of args[0]
        return self.args[0]


class DuplicatePropagatorError(PropagatorError, ValueError):
    """Raised when registering a name that is already taken."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(
            f"acoustic propagator {name!r} is already registered; pass "
            f"replace=True to override it")


def register_propagator(name: str, factory: PropagatorFactory,
                        *, replace: bool = False) -> None:
    """Register ``factory(velocity, config)`` under ``name``.

    Registering an existing name raises :class:`DuplicatePropagatorError`
    unless ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise ValueError("propagator name must be a non-empty string")
    if not callable(factory):
        raise TypeError("propagator factory must be callable")
    if name in _FACTORIES and not replace:
        raise DuplicatePropagatorError(name)
    _FACTORIES[name] = factory


def unregister_propagator(name: str) -> None:
    """Remove ``name`` from the registry (mainly for tests)."""
    if name not in _FACTORIES:
        raise UnknownPropagatorError(name)
    del _FACTORIES[name]


def available_propagators() -> List[str]:
    """Sorted names of every registered engine."""
    return sorted(_FACTORIES)


def default_propagator_name() -> str:
    """The name :func:`get_propagator` resolves when given ``None``."""
    return env.get_str(env.PROPAGATOR, _DEFAULT_NAME)


def set_default_propagator(name: str) -> None:
    """Set the process-wide default engine (must already be registered)."""
    global _DEFAULT_NAME
    if name not in _FACTORIES:
        raise UnknownPropagatorError(name)
    _DEFAULT_NAME = name


def get_propagator(spec: PropagatorSpec = None) -> PropagatorFactory:
    """Resolve ``spec`` to a propagator factory.

    ``spec`` may be ``None`` (use the environment / process default), a
    registered name, or a callable factory (returned as-is, so callers can
    thread a custom engine through without registering it).
    """
    if callable(spec):
        return spec
    if spec is None:
        spec = default_propagator_name()
    if not isinstance(spec, str):
        raise TypeError(
            f"propagator spec must be None, a name or a factory, got "
            f"{type(spec).__name__}")
    if spec not in _FACTORIES:
        raise UnknownPropagatorError(spec)
    return _FACTORIES[spec]


register_propagator("scalar", AcousticSimulator2D)
register_propagator("batched", BatchedAcousticSimulator2D)
