"""Acquisition geometry: where sources fire and receivers record.

OpenFWI's FlatVelA surveys place 5 sources and 70 receivers evenly along the
surface of a 700 m wide model.  :class:`SurveyGeometry` captures that layout
in grid coordinates and provides helpers for building scaled-down surveys
used after QuGeoData compression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np


@dataclass
class SurveyGeometry:
    """Surface acquisition geometry on a regular 2-D grid.

    Parameters
    ----------
    n_sources:
        Number of shot locations.
    n_receivers:
        Number of receivers recording every shot.
    nx:
        Number of horizontal grid points of the velocity model.
    source_depth, receiver_depth:
        Depth (grid rows) at which sources/receivers sit; 0 or 1 keeps them at
        the surface as in OpenFWI.
    """

    n_sources: int = 5
    n_receivers: int = 70
    nx: int = 70
    source_depth: int = 1
    receiver_depth: int = 1
    source_columns: List[int] = field(default_factory=list)
    receiver_columns: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_sources <= 0 or self.n_receivers <= 0:
            raise ValueError("surveys need at least one source and one receiver")
        if self.nx < max(self.n_sources, self.n_receivers):
            raise ValueError(
                "grid width must be at least the number of sources/receivers")
        # Remember whether the caller supplied an explicit layout: scaled()
        # must rescale explicit columns rather than regenerate the default
        # even spread.
        self.explicit_source_columns = bool(self.source_columns)
        self.explicit_receiver_columns = bool(self.receiver_columns)
        if not self.source_columns:
            self.source_columns = [int(c) for c in
                                   np.linspace(0, self.nx - 1, self.n_sources)]
        if not self.receiver_columns:
            self.receiver_columns = [int(c) for c in
                                     np.linspace(0, self.nx - 1, self.n_receivers)]
        if len(self.source_columns) != self.n_sources:
            raise ValueError("source_columns length must equal n_sources")
        if len(self.receiver_columns) != self.n_receivers:
            raise ValueError("receiver_columns length must equal n_receivers")

    def source_positions(self) -> List[Tuple[int, int]]:
        """Return ``(row, column)`` grid positions of every source."""
        return [(self.source_depth, col) for col in self.source_columns]

    def receiver_positions(self) -> List[Tuple[int, int]]:
        """Return ``(row, column)`` grid positions of every receiver."""
        return [(self.receiver_depth, col) for col in self.receiver_columns]

    def _scale_columns(self, columns: List[int], nx: int) -> List[int]:
        """Rescale explicit grid columns proportionally onto a width-``nx`` grid."""
        if self.nx == 1:
            return [0 for _ in columns]
        factor = (nx - 1) / (self.nx - 1)
        return [int(np.clip(round(col * factor), 0, nx - 1)) for col in columns]

    def _scale_depth(self, depth: int, nx: int) -> int:
        """Rescale a depth (grid rows) proportionally onto the new grid.

        Rows 0 and 1 are the surface convention and are preserved as-is; a
        buried position keeps its relative depth (assuming the grid aspect
        ratio is preserved, as in QuGeoData's square maps) and stays buried —
        it is never clamped back to the surface.
        """
        if depth <= 1 or nx == self.nx:
            return int(depth)
        scaled = round(depth * nx / self.nx)
        return int(np.clip(scaled, 1, nx - 1))

    def scaled(self, nx: int, n_sources: int = None,
               n_receivers: int = None) -> "SurveyGeometry":
        """Return a survey with the same layout on a grid of width ``nx``.

        Used by QuGeoData when forward modelling on a downsampled velocity
        map: the number of sources is preserved (each source is an
        independent physical event) while receivers are re-spread over the
        coarser grid.  Explicit ``source_columns`` / ``receiver_columns``
        layouts are rescaled proportionally (unless the requested count
        changes, which forces a fresh even spread), and source/receiver
        depths are preserved — scaled to the new grid — so a buried-source
        survey stays buried after scaling.
        """
        new_n_sources = n_sources or self.n_sources
        new_n_receivers = n_receivers or min(self.n_receivers, nx)
        source_columns: List[int] = []
        if self.explicit_source_columns and new_n_sources == self.n_sources:
            source_columns = self._scale_columns(self.source_columns, nx)
        receiver_columns: List[int] = []
        if (self.explicit_receiver_columns
                and new_n_receivers == self.n_receivers):
            receiver_columns = self._scale_columns(self.receiver_columns, nx)
        return SurveyGeometry(
            n_sources=new_n_sources,
            n_receivers=new_n_receivers,
            nx=nx,
            source_depth=self._scale_depth(self.source_depth, nx),
            receiver_depth=self._scale_depth(self.receiver_depth, nx),
            source_columns=source_columns,
            receiver_columns=receiver_columns,
        )
