"""Seismic forward-modelling substrate.

This package implements the physics layer the paper's QuGeoData relies on:
the 2-D isotropic constant-density acoustic wave equation (Eq. 1 of the
paper) solved with finite differences and an absorbing boundary, a Ricker
source wavelet, acquisition geometry (surface sources and receivers), and
generators for OpenFWI-style velocity models (FlatVel / CurveVel / FlatFault
families).
"""

from repro.seismic.wavelets import (
    ricker_wavelet,
    dominant_frequency,
    nyquist_record_stride,
)
from repro.seismic.boundary import (
    BOUNDARY_ENV_VAR,
    BOUNDARY_KINDS,
    PMLBoundary,
    SpongeBoundary,
    default_boundary_name,
    make_boundary,
    pml_profiles,
    resolve_boundary_name,
    sponge_profile,
)
from repro.seismic.survey import SurveyGeometry
from repro.seismic.acoustic2d import (
    AcousticSimulator2D,
    BatchedAcousticSimulator2D,
    SimulationConfig,
    stable_time_step,
)
from repro.seismic.propagators import (
    PROPAGATOR_ENV_VAR,
    DuplicatePropagatorError,
    PropagatorError,
    UnknownPropagatorError,
    available_propagators,
    default_propagator_name,
    get_propagator,
    register_propagator,
    set_default_propagator,
    unregister_propagator,
)
from repro.seismic.kernels import (
    KERNEL_ENV_VAR,
    DuplicateKernelError,
    KernelError,
    KernelUnavailableError,
    UnknownKernelError,
    available_kernels,
    default_kernel_name,
    get_kernel,
    kernel_available,
    register_kernel,
    resolve_kernel,
    unregister_kernel,
)
from repro.seismic.diagnostics import edge_reflection_energy
from repro.seismic.forward_modeling import (
    ForwardModel,
    forward_model_shot_gather,
    normalize_per_shot,
)
from repro.seismic.velocity_models import (
    VelocityModelConfig,
    flat_layer_model,
    curved_layer_model,
    flat_fault_model,
    random_velocity_models,
    layer_profile,
)

__all__ = [
    "ricker_wavelet",
    "dominant_frequency",
    "nyquist_record_stride",
    "sponge_profile",
    "pml_profiles",
    "SpongeBoundary",
    "PMLBoundary",
    "BOUNDARY_ENV_VAR",
    "BOUNDARY_KINDS",
    "default_boundary_name",
    "resolve_boundary_name",
    "make_boundary",
    "KERNEL_ENV_VAR",
    "DuplicateKernelError",
    "KernelError",
    "KernelUnavailableError",
    "UnknownKernelError",
    "available_kernels",
    "default_kernel_name",
    "get_kernel",
    "kernel_available",
    "register_kernel",
    "resolve_kernel",
    "unregister_kernel",
    "edge_reflection_energy",
    "SurveyGeometry",
    "AcousticSimulator2D",
    "BatchedAcousticSimulator2D",
    "SimulationConfig",
    "stable_time_step",
    "PROPAGATOR_ENV_VAR",
    "DuplicatePropagatorError",
    "PropagatorError",
    "UnknownPropagatorError",
    "available_propagators",
    "default_propagator_name",
    "get_propagator",
    "register_propagator",
    "set_default_propagator",
    "unregister_propagator",
    "ForwardModel",
    "forward_model_shot_gather",
    "normalize_per_shot",
    "VelocityModelConfig",
    "flat_layer_model",
    "curved_layer_model",
    "flat_fault_model",
    "random_velocity_models",
    "layer_profile",
]
