"""Absorbing boundary conditions for the acoustic propagator.

The QuGeo paper follows the KAUST 2-8 finite-difference modelling lab, which
uses a sponge (damping) layer to absorb outgoing energy at the model edges.
:class:`SpongeBoundary` implements the classic Cerjan et al. (1985)
exponential taper applied to the pressure wavefields after every time step.
The free surface at the top of the model is preserved by default, mirroring
land-acquisition geometry where receivers sit on the surface.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def sponge_profile(width: int, strength: float = 0.0053) -> np.ndarray:
    """Return the 1-D damping taper for a sponge layer of ``width`` cells.

    Values decay from 1.0 at the interior edge of the sponge to
    ``exp(-(strength*width)^2)`` at the outer model edge, following Cerjan's
    formulation ``exp(-(strength * distance)^2)``.
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    if width == 0:
        return np.ones(0)
    distance = np.arange(1, width + 1, dtype=np.float64)
    return np.exp(-((strength * distance) ** 2))


@dataclass
class SpongeBoundary:
    """Exponential damping sponge applied on the model edges.

    Parameters
    ----------
    width:
        Sponge thickness in grid cells on each absorbing edge.
    strength:
        Cerjan damping coefficient; larger values damp faster.
    free_surface:
        If ``True`` the top edge is a free surface (no damping there), which
        matches surface seismic acquisition.
    """

    width: int = 20
    strength: float = 0.0053
    free_surface: bool = True

    def build_mask(self, shape) -> np.ndarray:
        """Return the 2-D multiplicative damping mask for a ``shape`` grid.

        ``shape`` may carry leading batch axes (e.g. ``(n_shots, nz, nx)``
        from the batched propagator); the mask is built on the trailing two
        grid axes and returned as a 2-D array, so multiplying a batched
        wavefield by it broadcasts the damping over every batch element.
        """
        if len(shape) < 2:
            raise ValueError(
                f"grid shape needs at least 2 dimensions, got {tuple(shape)}")
        nz, nx = shape[-2], shape[-1]
        if self.width * 2 >= nx or (self.width >= nz if self.free_surface
                                    else self.width * 2 >= nz):
            raise ValueError(
                f"sponge width {self.width} too large for grid {shape}")
        mask = np.ones((nz, nx), dtype=np.float64)
        taper = sponge_profile(self.width, self.strength)
        for i, damping in enumerate(taper):
            # distance i+1 from the interior edge of the sponge
            left = self.width - 1 - i
            right = nx - self.width + i
            bottom = nz - self.width + i
            mask[:, left] *= damping
            mask[:, right] *= damping
            mask[bottom, :] *= damping
            if not self.free_surface:
                top = self.width - 1 - i
                mask[top, :] *= damping
        return mask

    def apply(self, wavefield: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Damp ``wavefield`` in place with a precomputed ``mask``.

        The mask broadcasts over any leading batch axes of ``wavefield``
        (``(..., nz, nx)``), so one 2-D mask damps a whole shot batch.
        """
        wavefield *= mask
        return wavefield
