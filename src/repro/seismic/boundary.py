"""Absorbing boundary conditions for the acoustic propagator.

The QuGeo paper follows the KAUST 2-8 finite-difference modelling lab, which
uses a sponge (damping) layer to absorb outgoing energy at the model edges.
:class:`SpongeBoundary` implements the classic Cerjan et al. (1985)
exponential taper applied to the pressure wavefields after every time step.
The free surface at the top of the model is preserved by default, mirroring
land-acquisition geometry where receivers sit on the surface.

:class:`PMLBoundary` implements a convolutional perfectly-matched layer
(CFS-PML) for the second-order wave equation, following Pasalic & McGarry
(SEG 2010): two auxiliary memory fields per axis turn the absorbing pad into
an analytically reflectionless medium, so 10-15 PML cells absorb as well as
a sponge several times wider.  Both boundaries support ``pad_grid``, which
moves the absorbing band *outside* the velocity model (edge-replicated pad)
instead of damping interior model cells.

The default boundary kind is resolved through ``QUGEO_SEISMIC_BOUNDARY``
(:func:`default_boundary_name`), mirroring the propagator/kernel registries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils import env

#: Environment variable consulted when no explicit boundary is requested.
BOUNDARY_ENV_VAR = env.SEISMIC_BOUNDARY

#: Boundary kinds constructable through :func:`make_boundary`.
BOUNDARY_KINDS = ("sponge", "pml")


def sponge_profile(width: int, strength: float = 0.0053) -> np.ndarray:
    """Return the 1-D damping taper for a sponge layer of ``width`` cells.

    Values decay from 1.0 at the interior edge of the sponge to
    ``exp(-(strength*width)^2)`` at the outer model edge, following Cerjan's
    formulation ``exp(-(strength * distance)^2)``.
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    if width == 0:
        return np.ones(0)
    distance = np.arange(1, width + 1, dtype=np.float64)
    return np.exp(-((strength * distance) ** 2))


@dataclass
class SpongeBoundary:
    """Exponential damping sponge applied on the model edges.

    Parameters
    ----------
    width:
        Sponge thickness in grid cells on each absorbing edge.
    strength:
        Cerjan damping coefficient; larger values damp faster.
    free_surface:
        If ``True`` the top edge is a free surface (no damping there), which
        matches surface seismic acquisition.
    pad_grid:
        If ``True`` the batched propagator extends the grid by ``width``
        edge-replicated cells on each absorbing edge so the sponge damps
        pad cells instead of interior model cells (sources, receivers and
        returned snapshots stay in model coordinates).
    """

    width: int = 20
    strength: float = 0.0053
    free_surface: bool = True
    pad_grid: bool = False

    def build_mask(self, shape) -> np.ndarray:
        """Return the 2-D multiplicative damping mask for a ``shape`` grid.

        ``shape`` may carry leading batch axes (e.g. ``(n_shots, nz, nx)``
        from the batched propagator); the mask is built on the trailing two
        grid axes and returned as a 2-D array, so multiplying a batched
        wavefield by it broadcasts the damping over every batch element.
        """
        if len(shape) < 2:
            raise ValueError(
                f"grid shape needs at least 2 dimensions, got {tuple(shape)}")
        nz, nx = shape[-2], shape[-1]
        if self.width * 2 >= nx or (self.width >= nz if self.free_surface
                                    else self.width * 2 >= nz):
            raise ValueError(
                f"sponge width {self.width} too large for grid {shape}")
        mask = np.ones((nz, nx), dtype=np.float64)
        taper = sponge_profile(self.width, self.strength)
        for i, damping in enumerate(taper):
            # distance i+1 from the interior edge of the sponge
            left = self.width - 1 - i
            right = nx - self.width + i
            bottom = nz - self.width + i
            mask[:, left] *= damping
            mask[:, right] *= damping
            mask[bottom, :] *= damping
            if not self.free_surface:
                top = self.width - 1 - i
                mask[top, :] *= damping
        return mask

    def apply(self, wavefield: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Damp ``wavefield`` in place with a precomputed ``mask``.

        The mask broadcasts over any leading batch axes of ``wavefield``
        (``(..., nz, nx)``), so one 2-D mask damps a whole shot batch.
        """
        wavefield *= mask
        return wavefield


def pml_profiles(n: int, width: int, dh: float, dt: float,
                 max_velocity: float, *, exponent: float = 2.0,
                 target_reflection: float = 1e-6, alpha_max: float = 47.12,
                 damp_start: bool = True,
                 damp_end: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """Return the 1-D CFS-PML recursion coefficients ``(a, b)`` for one axis.

    The memory-variable update of Pasalic & McGarry (2010) is, per cell and
    per time step, ``psi = b * psi + a * d(p)`` with

        ``b = exp(-(sigma + alpha) * dt)``
        ``a = sigma / (sigma + alpha) * (b - 1)``

    where ``sigma`` ramps polynomially from 0 at the interior edge of the
    pad to ``sigma_max`` at the outer grid edge, and the frequency-shift
    ``alpha`` ramps the opposite way (``alpha_max`` at the interior edge,
    0 at the outer edge) to keep grazing-incidence energy absorbed.
    ``sigma_max`` follows the classic reflection-coefficient choice
    ``-(m+1) * c * ln(R0) / (2 * L)`` for a pad of physical thickness
    ``L = width * dh``.  Outside the pad ``a == b == 0`` exactly, so memory
    variables stay zero there and the interior scheme is untouched.
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    if n < 1:
        raise ValueError("axis length must be positive")
    if dh <= 0 or dt <= 0 or max_velocity <= 0:
        raise ValueError("dh, dt and max_velocity must be positive")
    if not (0 < target_reflection < 1):
        raise ValueError("target_reflection must be in (0, 1)")
    sigma = np.zeros(n, dtype=np.float64)
    alpha = np.zeros(n, dtype=np.float64)
    if width > 0:
        thickness = width * dh
        sigma_max = (-(exponent + 1.0) * max_velocity
                     * np.log(target_reflection) / (2.0 * thickness))
        # depth = 1 at the outer grid edge, -> 1/width at the interior edge.
        depth = (width - np.arange(width, dtype=np.float64)) / width
        ramp_sigma = sigma_max * depth ** exponent
        ramp_alpha = alpha_max * (1.0 - depth)
        if damp_start:
            sigma[:width] = ramp_sigma
            alpha[:width] = ramp_alpha
        if damp_end:
            sigma[n - width:] = ramp_sigma[::-1]
            alpha[n - width:] = ramp_alpha[::-1]
    b = np.exp(-(sigma + alpha) * dt)
    total = sigma + alpha
    a = np.where(sigma > 0.0, sigma / np.where(total > 0.0, total, 1.0)
                 * (b - 1.0), 0.0)
    b = np.where(sigma > 0.0, b, 0.0)
    return a, b


@dataclass
class PMLBoundary:
    """Convolutional perfectly-matched layer (CFS-PML) absorbing boundary.

    A PML pad is analytically reflectionless at the interior interface, so
    10-15 cells absorb outgoing energy as well as (or better than) a sponge
    layer several times wider — shrinking every full-grid pass of the
    propagator when used with ``pad_grid=True``.

    Only the batched propagator implements the memory-variable updates; the
    scalar reference engine rejects PML configs.

    Parameters
    ----------
    width:
        PML thickness in grid cells on each absorbing edge.
    exponent:
        Polynomial order of the damping ramp (2 is standard).
    target_reflection:
        Theoretical normal-incidence reflection coefficient the ramp is
        tuned for.
    alpha_max:
        Peak CFS frequency shift (rad/s) at the interior edge of the pad;
        ``pi * f_peak`` is the usual choice (the default assumes ~15 Hz).
    free_surface:
        If ``True`` the top edge is a free surface (no absorbing pad there).
    pad_grid:
        If ``True`` the batched propagator extends the grid by ``width``
        edge-replicated cells per absorbing edge so the PML lives outside
        the velocity model.
    """

    width: int = 12
    exponent: float = 2.0
    target_reflection: float = 1e-6
    alpha_max: float = 47.12
    free_surface: bool = True
    pad_grid: bool = False

    def __post_init__(self) -> None:
        if self.width < 2:
            raise ValueError("PML width must be at least 2 cells")
        if self.exponent <= 0:
            raise ValueError("exponent must be positive")
        if not (0 < self.target_reflection < 1):
            raise ValueError("target_reflection must be in (0, 1)")
        if self.alpha_max < 0:
            raise ValueError("alpha_max must be non-negative")

    def validate_grid(self, shape) -> None:
        """Raise :class:`ValueError` when the pad overruns the grid."""
        if len(shape) < 2:
            raise ValueError(
                f"grid shape needs at least 2 dimensions, got {tuple(shape)}")
        nz, nx = shape[-2], shape[-1]
        if self.width * 2 >= nx or (self.width >= nz if self.free_surface
                                    else self.width * 2 >= nz):
            raise ValueError(
                f"PML width {self.width} too large for grid {tuple(shape)}")

    def profiles(self, shape, dx: float, dz: float, dt: float,
                 max_velocity: float) -> Tuple[np.ndarray, np.ndarray,
                                               np.ndarray, np.ndarray]:
        """Per-axis recursion coefficients ``(a_x, b_x, a_z, b_z)``.

        ``shape`` may carry leading batch axes; coefficients are built for
        the trailing ``(nz, nx)`` grid.  The top edge carries no pad when
        ``free_surface`` is set.
        """
        self.validate_grid(shape)
        nz, nx = shape[-2], shape[-1]
        a_x, b_x = pml_profiles(
            nx, self.width, dx, dt, max_velocity, exponent=self.exponent,
            target_reflection=self.target_reflection, alpha_max=self.alpha_max)
        a_z, b_z = pml_profiles(
            nz, self.width, dz, dt, max_velocity, exponent=self.exponent,
            target_reflection=self.target_reflection, alpha_max=self.alpha_max,
            damp_start=not self.free_surface)
        return a_x, b_x, a_z, b_z


def default_boundary_name() -> str:
    """The boundary kind selected by ``QUGEO_SEISMIC_BOUNDARY`` (``sponge``)."""
    return env.get_choice(env.SEISMIC_BOUNDARY, "sponge", BOUNDARY_KINDS)


def resolve_boundary_name(name=None) -> str:
    """``name`` when given, else the environment/default boundary kind."""
    if name is None:
        return default_boundary_name()
    value = str(name).strip().lower()
    if value not in BOUNDARY_KINDS:
        raise ValueError(
            f"unknown boundary kind {name!r}; expected one of {BOUNDARY_KINDS}")
    return value


def make_boundary(name=None, *, width: int, free_surface: bool = True,
                  pad_grid: bool = False):
    """Build a boundary of kind ``name`` (``None`` = environment default)."""
    kind = resolve_boundary_name(name)
    if kind == "pml":
        return PMLBoundary(width=max(2, int(width)), free_surface=free_surface,
                           pad_grid=pad_grid)
    return SpongeBoundary(width=int(width), free_surface=free_surface,
                          pad_grid=pad_grid)
