"""OpenFWI-style velocity-model generators.

The paper evaluates on OpenFWI's FlatVelA family: 70x70 velocity maps made of
a handful of flat layers with velocities that increase (on average) with
depth.  The public dataset cannot be bundled offline, so this module rebuilds
statistically equivalent models:

* :func:`flat_layer_model` — FlatVel-style flat layered subsurfaces,
* :func:`curved_layer_model` — CurveVel-style gently folded layers (used by
  the paper's discussion of generalising the layer-wise decoder),
* :func:`flat_fault_model` — FlatFault-style layered models offset by a
  normal fault (an extension family for robustness experiments).

All generators honour OpenFWI's velocity range (1500-4500 m/s) and layer
count statistics (2-5 layers for the "A" difficulty tier).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


@dataclass
class VelocityModelConfig:
    """Statistical description of a velocity-model family.

    Parameters
    ----------
    shape:
        ``(depth, width)`` of the generated maps (OpenFWI uses 70x70).
    min_velocity, max_velocity:
        Velocity range in m/s (OpenFWI uses 1500-4500).
    min_layers, max_layers:
        Inclusive range of layer counts ("A" tier uses 2-5).
    increasing_velocity:
        If ``True``, layer velocities are sorted so they increase with depth,
        as is typical of compacting sedimentary basins.
    """

    shape: tuple = (70, 70)
    min_velocity: float = 1500.0
    max_velocity: float = 4500.0
    min_layers: int = 2
    max_layers: int = 5
    increasing_velocity: bool = True

    def __post_init__(self) -> None:
        if len(self.shape) != 2 or min(self.shape) < 2:
            raise ValueError("shape must be a 2-D size of at least 2x2")
        if self.min_velocity <= 0 or self.max_velocity <= self.min_velocity:
            raise ValueError("velocity range must be positive and increasing")
        if self.min_layers < 1 or self.max_layers < self.min_layers:
            raise ValueError("invalid layer-count range")
        if self.max_layers > self.shape[0]:
            raise ValueError("cannot fit more layers than depth samples")


def _sample_layer_structure(config: VelocityModelConfig,
                            rng: np.random.Generator):
    """Sample layer boundaries (row indices) and per-layer velocities."""
    depth = config.shape[0]
    n_layers = int(rng.integers(config.min_layers, config.max_layers + 1))
    # Interface depths: distinct interior rows, sorted.
    if n_layers > 1:
        interfaces = np.sort(rng.choice(np.arange(2, depth - 1),
                                        size=n_layers - 1, replace=False))
    else:
        interfaces = np.array([], dtype=int)
    velocities = rng.uniform(config.min_velocity, config.max_velocity,
                             size=n_layers)
    if config.increasing_velocity:
        velocities = np.sort(velocities)
    return interfaces, velocities


def flat_layer_model(config: VelocityModelConfig = None,
                     rng: RngLike = None) -> np.ndarray:
    """Generate one FlatVel-style velocity map (flat horizontal layers)."""
    config = config or VelocityModelConfig()
    rng = ensure_rng(rng)
    depth, width = config.shape
    interfaces, velocities = _sample_layer_structure(config, rng)
    model = np.empty((depth, width), dtype=np.float64)
    boundaries = np.concatenate([[0], interfaces, [depth]])
    for layer, velocity in enumerate(velocities):
        model[boundaries[layer]:boundaries[layer + 1], :] = velocity
    return model


def curved_layer_model(config: VelocityModelConfig = None,
                       rng: RngLike = None,
                       max_fold_amplitude: float = 0.12) -> np.ndarray:
    """Generate a CurveVel-style map: layers folded by a smooth sinusoid.

    Parameters
    ----------
    max_fold_amplitude:
        Maximum vertical displacement of an interface as a fraction of the
        model depth.
    """
    config = config or VelocityModelConfig()
    rng = ensure_rng(rng)
    depth, width = config.shape
    interfaces, velocities = _sample_layer_structure(config, rng)
    x = np.linspace(0.0, 1.0, width)
    model = np.full((depth, width), velocities[0], dtype=np.float64)
    for layer in range(1, len(velocities)):
        base_depth = interfaces[layer - 1]
        amplitude = rng.uniform(0.0, max_fold_amplitude) * depth
        phase = rng.uniform(0.0, 2 * np.pi)
        cycles = rng.uniform(0.5, 2.0)
        curve = base_depth + amplitude * np.sin(2 * np.pi * cycles * x + phase)
        curve = np.clip(np.round(curve).astype(int), 1, depth - 1)
        for col in range(width):
            model[curve[col]:, col] = velocities[layer]
    return model


def flat_fault_model(config: VelocityModelConfig = None,
                     rng: RngLike = None,
                     max_throw_fraction: float = 0.2) -> np.ndarray:
    """Generate a FlatFault-style map: flat layers cut by one normal fault.

    Parameters
    ----------
    max_throw_fraction:
        Maximum vertical offset across the fault as a fraction of depth.
    """
    config = config or VelocityModelConfig()
    rng = ensure_rng(rng)
    depth, width = config.shape
    base = flat_layer_model(config, rng)
    fault_column = int(rng.integers(width // 4, 3 * width // 4))
    throw = int(rng.integers(1, max(2, int(max_throw_fraction * depth))))
    faulted = base.copy()
    # The hanging wall (right of the fault) drops by `throw` rows.
    shifted = np.roll(base[:, fault_column:], throw, axis=0)
    shifted[:throw, :] = base[0, 0]
    faulted[:, fault_column:] = shifted
    return faulted


_FAMILIES = {
    "flat": flat_layer_model,
    "curve": curved_layer_model,
    "fault": flat_fault_model,
}


def random_velocity_models(count: int, config: VelocityModelConfig = None,
                           family: str = "flat",
                           rng: RngLike = None) -> np.ndarray:
    """Generate ``count`` velocity maps of the requested ``family``.

    Returns an array of shape ``(count, depth, width)``.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if family not in _FAMILIES:
        raise ValueError(f"unknown family {family!r}; choose from {sorted(_FAMILIES)}")
    config = config or VelocityModelConfig()
    rng = ensure_rng(rng)
    generator = _FAMILIES[family]
    return np.stack([generator(config, rng) for _ in range(count)])


def layer_profile(model: np.ndarray) -> np.ndarray:
    """Return the per-row mean velocity of ``model`` (a depth profile).

    For flat layered models this is the exact layer velocity of each row; for
    curved/faulted models it is the lateral average, matching the quantity the
    layer-wise decoder (Q-M-LY) regresses.
    """
    model = np.asarray(model, dtype=np.float64)
    if model.ndim != 2:
        raise ValueError("model must be 2-D")
    return model.mean(axis=1)
