"""Fused leap-frog time loops: one cache-friendly pass per wavefield.

The vectorised numpy kernel makes 5+ full-grid memory passes per time step
(two stencil passes, update, mask, record).  The loops below fuse the
clamped-edge Laplacian, the two-step time update, source injection, the
boundary treatment and decimated receiver recording into per-cell
arithmetic over ``(batch, nz, nx)`` wavefields — one read-mostly pass for
the update plus one cheap damping/record pass — parallelised over the
batch axis.

When numba is installed the loops are compiled with
``@njit(parallel=True, fastmath=False)`` (``fastmath`` stays off so the
summation semantics match the scalar reference to ~1e-13 in float64).
Without numba the same source runs as plain Python (``prange`` degrades to
``range``), which is far too slow for production but lets the parity tests
exercise the exact loop bodies on tiny grids in environments that cannot
install numba.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.seismic.kernels.base import KernelPlan, PropagatorKernel

try:  # numba is optional; the registry gates the "numba" kernel on it.
    from numba import njit, prange

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - exercised where numba is absent
    HAVE_NUMBA = False
    prange = range

    def njit(*args, **kwargs):
        """No-op decorator: the loop bodies run as plain Python."""
        if args and callable(args[0]):
            return args[0]

        def wrap(func):
            return func

        return wrap


@njit(parallel=True, fastmath=False, cache=True)
def leapfrog_sponge(p_prev, p_curr, p_next, c2dt2, model_of, mask,
                    coeffs_z, coeffs_x, pad, src_z, src_x, inject_amps,
                    rec_rows, rec_cols, gather, n_steps, record_every):
    """Advance ``n_steps`` sponge-damped leap-frog steps, fused per cell."""
    n_batch, nz, nx = p_curr.shape
    n_taps = coeffs_z.shape[0]
    n_rec = rec_rows.shape[0]
    for step in range(n_steps):
        for b in prange(n_batch):
            pp = p_prev[b]
            pc = p_curr[b]
            pn = p_next[b]
            cd = c2dt2[model_of[b]]
            for z in range(nz):
                for x in range(nx):
                    d2 = 0.0
                    for k in range(n_taps):
                        off = k - pad
                        zz = z + off
                        if zz < 0:
                            zz = 0
                        elif zz >= nz:
                            zz = nz - 1
                        xx = x + off
                        if xx < 0:
                            xx = 0
                        elif xx >= nx:
                            xx = nx - 1
                        d2 += coeffs_z[k] * pc[zz, x] + coeffs_x[k] * pc[z, xx]
                    pn[z, x] = 2.0 * pc[z, x] - pp[z, x] + cd[z, x] * d2
            pn[src_z[b], src_x[b]] += inject_amps[b, step]
            # Sponge damping on both time levels keeps the scheme stable.
            for z in range(nz):
                for x in range(nx):
                    m = mask[z, x]
                    pn[z, x] *= m
                    pc[z, x] *= m
            if step % record_every == 0:
                t = step // record_every
                for r in range(n_rec):
                    gather[b, t, r] = pn[rec_rows[r], rec_cols[r]]
        tmp = p_prev
        p_prev = p_curr
        p_curr = p_next
        p_next = tmp


@njit(parallel=True, fastmath=False, cache=True)
def leapfrog_pml(p_prev, p_curr, p_next, c2dt2, model_of,
                 coeffs_z, coeffs_x, pad,
                 a_x, b_x, a_z, b_z, x_active, z_active,
                 half_dx_inv, half_dz_inv,
                 psi_x, psi_z, zeta_x, zeta_z,
                 src_z, src_x, inject_amps,
                 rec_rows, rec_cols, gather, n_steps, record_every):
    """Advance ``n_steps`` CFS-PML leap-frog steps, fused per cell.

    Two passes per step: the psi recursions need the *previous* psi of
    neighbouring cells, so they complete over the whole grid before the
    update pass reads their spatial derivative.
    """
    n_batch, nz, nx = p_curr.shape
    n_taps = coeffs_z.shape[0]
    n_rec = rec_rows.shape[0]
    for step in range(n_steps):
        # Pass 1: psi recursions (first-derivative memory variables).
        for b in prange(n_batch):
            pc = p_curr[b]
            for z in range(nz):
                for x in range(nx):
                    if a_x[x] != 0.0:
                        xm = x - 1 if x > 0 else 0
                        xp = x + 1 if x < nx - 1 else nx - 1
                        dpx = (pc[z, xp] - pc[z, xm]) * half_dx_inv
                        psi_x[b, z, x] = (b_x[x] * psi_x[b, z, x]
                                          + a_x[x] * dpx)
                    if a_z[z] != 0.0:
                        zm = z - 1 if z > 0 else 0
                        zp = z + 1 if z < nz - 1 else nz - 1
                        dpz = (pc[zp, x] - pc[zm, x]) * half_dz_inv
                        psi_z[b, z, x] = (b_z[z] * psi_z[b, z, x]
                                          + a_z[z] * dpz)
        # Pass 2: zeta recursions + corrected laplacian + time update.
        for b in prange(n_batch):
            pp = p_prev[b]
            pc = p_curr[b]
            pn = p_next[b]
            cd = c2dt2[model_of[b]]
            for z in range(nz):
                for x in range(nx):
                    d2x = 0.0
                    d2z = 0.0
                    for k in range(n_taps):
                        off = k - pad
                        zz = z + off
                        if zz < 0:
                            zz = 0
                        elif zz >= nz:
                            zz = nz - 1
                        xx = x + off
                        if xx < 0:
                            xx = 0
                        elif xx >= nx:
                            xx = nx - 1
                        d2z += coeffs_z[k] * pc[zz, x]
                        d2x += coeffs_x[k] * pc[z, xx]
                    lap = d2x + d2z
                    if x_active[x]:
                        xm = x - 1 if x > 0 else 0
                        xp = x + 1 if x < nx - 1 else nx - 1
                        dpsx = (psi_x[b, z, xp] - psi_x[b, z, xm]) * half_dx_inv
                        zx = zeta_x[b, z, x]
                        if a_x[x] != 0.0:
                            zx = b_x[x] * zx + a_x[x] * (d2x + dpsx)
                            zeta_x[b, z, x] = zx
                        lap += dpsx + zx
                    if z_active[z]:
                        zm = z - 1 if z > 0 else 0
                        zp = z + 1 if z < nz - 1 else nz - 1
                        dpsz = (psi_z[b, zp, x] - psi_z[b, zm, x]) * half_dz_inv
                        zz_mem = zeta_z[b, z, x]
                        if a_z[z] != 0.0:
                            zz_mem = b_z[z] * zz_mem + a_z[z] * (d2z + dpsz)
                            zeta_z[b, z, x] = zz_mem
                        lap += dpsz + zz_mem
                    pn[z, x] = 2.0 * pc[z, x] - pp[z, x] + cd[z, x] * lap
            pn[src_z[b], src_x[b]] += inject_amps[b, step]
            if step % record_every == 0:
                t = step // record_every
                for r in range(n_rec):
                    gather[b, t, r] = pn[rec_rows[r], rec_cols[r]]
        tmp = p_prev
        p_prev = p_curr
        p_curr = p_next
        p_next = tmp


class FusedLoopKernel(PropagatorKernel):
    """Kernel driving the fused loops above.

    Registered as ``"numba"`` when numba is importable.  The class itself
    works without numba (the loops degrade to plain Python), which is how
    the parity tests pin the loop bodies on machines without numba —
    instantiate it directly and pass it as the ``kernel`` of a
    :class:`~repro.seismic.acoustic2d.BatchedAcousticSimulator2D`.
    """

    supports_snapshots = False

    def __init__(self, name: str = "numba") -> None:
        self.name = name

    def run(self, plan: KernelPlan) -> None:
        nz, nx = plan.grid
        n_batch = plan.total_batch
        n_shots = plan.n_shots
        p_prev = plan.p_prev.reshape(n_batch, nz, nx)
        p_curr = plan.p_curr.reshape(n_batch, nz, nx)
        p_next = plan.p_next.reshape(n_batch, nz, nx)
        c2dt2 = np.ascontiguousarray(plan.c2dt2).reshape(-1, nz, nx)
        model_of = np.repeat(np.arange(c2dt2.shape[0], dtype=np.int64),
                             n_batch // c2dt2.shape[0])
        gather = plan.gather_flat
        coeffs = plan.ops._coeffs_z
        pad = coeffs.shape[0] // 2
        src_z = np.ascontiguousarray(
            np.tile(plan.src_rows, n_batch // n_shots))
        src_x = np.ascontiguousarray(
            np.tile(plan.src_cols, n_batch // n_shots))
        inject_amps = plan.inject_amps
        rec_rows = np.ascontiguousarray(plan.rec_rows)
        rec_cols = np.ascontiguousarray(plan.rec_cols)

        telemetry = plan.telemetry
        start = perf_counter()
        if plan.pml is not None:
            pml = plan.pml
            leapfrog_pml(
                p_prev, p_curr, p_next, c2dt2, model_of,
                plan.ops._coeffs_z, plan.ops._coeffs_x, pad,
                pml.a_x, pml.b_x, pml.a_z, pml.b_z,
                pml.x_active, pml.z_active,
                pml.half_dx_inv, pml.half_dz_inv,
                pml.psi_x.reshape(n_batch, nz, nx),
                pml.psi_z.reshape(n_batch, nz, nx),
                pml.zeta_x.reshape(n_batch, nz, nx),
                pml.zeta_z.reshape(n_batch, nz, nx),
                src_z, src_x, inject_amps,
                rec_rows, rec_cols, gather,
                plan.n_steps, plan.record_every)
        else:
            leapfrog_sponge(
                p_prev, p_curr, p_next, c2dt2, model_of, plan.mask,
                plan.ops._coeffs_z, plan.ops._coeffs_x, pad,
                src_z, src_x, inject_amps,
                rec_rows, rec_cols, gather,
                plan.n_steps, plan.record_every)
        if telemetry.enabled:
            telemetry.record_timer("propagator.fused_loop",
                                   perf_counter() - start,
                                   count=plan.n_steps)
