"""Vectorised numpy time loop — the always-available reference kernel.

This is the hot loop that used to live inline in
:class:`~repro.seismic.acoustic2d.BatchedAcousticSimulator2D.simulate_shots`,
moved behind the kernel seam *without changing a single array operation*:
the sponge path below executes the identical op sequence (laplacian pass,
``np.multiply`` + axpy update, flattened-view injection, mask damping,
flattened-view recording, subnormal flushing), so gathers — and therefore
every dataset fingerprint — are bit-identical to the pre-kernel code.

The PML path replaces the mask multiply with the CFS-PML memory-variable
recursions of Pasalic & McGarry (2010): per axis, ``psi`` convolves the
first spatial derivative and ``zeta`` the corrected second derivative, and
``lap + d(psi) + zeta`` stands in for the plain laplacian inside the pads.
Elementwise recursion updates run on the pad strips only; the derivative
passes reuse the simulator's stencil operators (ndimage or banded matmul).
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.seismic.kernels.base import KernelPlan, PropagatorKernel


class PythonKernel(PropagatorKernel):
    """Whole-batch numpy loop; bit-identical to the historical inline loop."""

    name = "python"
    supports_snapshots = True

    def run(self, plan: KernelPlan) -> None:
        if plan.pml is not None:
            self._run_pml(plan)
        else:
            self._run_sponge(plan)

    # ------------------------------------------------------------------ #
    # sponge (historical) path
    # ------------------------------------------------------------------ #
    def _run_sponge(self, plan: KernelPlan) -> None:
        p_prev, p_curr, p_next = plan.p_prev, plan.p_curr, plan.p_next
        lap, lap_x = plan.lap, plan.lap_x
        c2dt2 = plan.c2dt2
        mask = plan.mask
        flat_views, line_views = plan.flat_views, plan.line_views
        inject_rows, inject_cols = plan.inject_rows, plan.inject_cols
        inject_amps = plan.inject_amps
        rec_flat = plan.rec_flat
        gather_flat = plan.gather_flat
        n_steps = plan.n_steps
        record_every = plan.record_every
        record_wavefield = plan.record_wavefield
        wavefield_stride = plan.wavefield_stride
        snapshots = plan.snapshots
        axpy = plan.axpy
        use_axpy = axpy is not None
        laplacian_into = plan.ops._laplacian_into
        flush_cutoff = plan.flush_cutoff
        flush_tiny = flush_cutoff is not None

        # Per-phase profiling accumulates into plain local floats and is
        # flushed to the registry once after the loop; when telemetry is off
        # the loop pays one local-bool check per phase and nothing else.
        telemetry = plan.telemetry
        timing = telemetry.enabled
        t_laplacian = t_update = t_inject = t_boundary = t_record = 0.0

        for step in range(n_steps):
            if timing:
                t0 = perf_counter()
            # p_next = 2 p_curr - p_prev + dt^2 c^2 laplacian(p_curr)
            laplacian_into(p_curr, lap, lap_x)
            if timing:
                t1 = perf_counter()
                t_laplacian += t1 - t0
            np.multiply(lap, c2dt2, out=p_next)
            if use_axpy:
                # One fused pass per term (y += a*x); 2*p is bit-identical
                # to p + p, so this only reorders the summation.
                next_line = line_views[id(p_next)]
                axpy(line_views[id(p_prev)], next_line, a=-1.0)
                axpy(line_views[id(p_curr)], next_line, a=2.0)
            else:
                p_next -= p_prev
                p_next += p_curr
                p_next += p_curr
            if timing:
                t2 = perf_counter()
                t_update += t2 - t1
            p_flat = flat_views[id(p_next)]
            p_flat[inject_rows, inject_cols] += inject_amps[:, step]
            if timing:
                t3 = perf_counter()
                t_inject += t3 - t2

            # Sponge damping on both time levels keeps the scheme stable;
            # the 2-D mask broadcasts over the leading batch axes.
            p_next *= mask
            p_curr *= mask
            if timing:
                t4 = perf_counter()
                t_boundary += t4 - t3

            if step % record_every == 0:
                gather_flat[:, step // record_every, :] = p_flat[:, rec_flat]
            if record_wavefield and step % wavefield_stride == 0:
                snapshots.append(p_next.copy())
            if timing:
                t_record += perf_counter() - t4

            if flush_tiny and step % 16 == 15:
                np.copyto(p_next, 0.0, where=np.abs(p_next) < flush_cutoff)
                np.copyto(p_curr, 0.0, where=np.abs(p_curr) < flush_cutoff)

            p_prev, p_curr, p_next = p_curr, p_next, p_prev

        if timing:
            telemetry.record_timer("propagator.laplacian", t_laplacian,
                                   count=n_steps)
            telemetry.record_timer("propagator.update", t_update,
                                   count=n_steps)
            telemetry.record_timer("propagator.inject", t_inject,
                                   count=n_steps)
            telemetry.record_timer("propagator.boundary", t_boundary,
                                   count=n_steps)
            telemetry.record_timer("propagator.record", t_record,
                                   count=n_steps)

    # ------------------------------------------------------------------ #
    # CFS-PML path
    # ------------------------------------------------------------------ #
    def _run_pml(self, plan: KernelPlan) -> None:
        p_prev, p_curr, p_next = plan.p_prev, plan.p_curr, plan.p_next
        lap, lap_x = plan.lap, plan.lap_x
        c2dt2 = plan.c2dt2
        flat_views, line_views = plan.flat_views, plan.line_views
        inject_rows, inject_cols = plan.inject_rows, plan.inject_cols
        inject_amps = plan.inject_amps
        rec_flat = plan.rec_flat
        gather_flat = plan.gather_flat
        n_steps = plan.n_steps
        record_every = plan.record_every
        record_wavefield = plan.record_wavefield
        wavefield_stride = plan.wavefield_stride
        snapshots = plan.snapshots
        axpy = plan.axpy
        use_axpy = axpy is not None
        ops = plan.ops
        flush_cutoff = plan.flush_cutoff
        flush_tiny = flush_cutoff is not None

        pml = plan.pml
        a_x, b_x = pml.a_x, pml.b_x
        a_z, b_z = pml.a_z, pml.b_z
        psi_x, psi_z = pml.psi_x, pml.psi_z
        zeta_x, zeta_z = pml.zeta_x, pml.zeta_z
        x_strips, z_strips = pml.x_strips, pml.z_strips
        x_halo, z_halo = pml.x_halo, pml.z_halo
        # First-derivative scratch (two buffers reused per axis phase).
        d1 = np.empty_like(p_curr)
        d1_psi = np.empty_like(p_curr)

        telemetry = plan.telemetry
        timing = telemetry.enabled
        t_laplacian = t_update = t_inject = t_boundary = t_record = 0.0

        for step in range(n_steps):
            if timing:
                t0 = perf_counter()
            # Split-axis second derivatives: d2z in lap, d2x in lap_x.
            ops._lap_z_into(p_curr, lap)
            ops._lap_x_into(p_curr, lap_x)
            if timing:
                t1 = perf_counter()
                t_laplacian += t1 - t0

            # Memory-variable recursions, x axis then z axis.  psi convolves
            # the first derivative; zeta convolves the corrected second
            # derivative; both recursions touch only the pad strips, where
            # a/b are non-zero.
            ops._d1x_into(p_curr, d1)
            for sl in x_strips:
                psi_x[..., :, sl] *= b_x[sl]
                psi_x[..., :, sl] += a_x[sl] * d1[..., :, sl]
            ops._d1x_into(psi_x, d1_psi)
            for sl in x_strips:
                zeta_x[..., :, sl] *= b_x[sl]
                zeta_x[..., :, sl] += a_x[sl] * (lap_x[..., :, sl]
                                                 + d1_psi[..., :, sl])
            for sl in x_halo:
                lap_x[..., :, sl] += d1_psi[..., :, sl] + zeta_x[..., :, sl]

            ops._d1z_into(p_curr, d1)
            for sl in z_strips:
                psi_z[..., sl, :] *= b_z[sl, None]
                psi_z[..., sl, :] += a_z[sl, None] * d1[..., sl, :]
            ops._d1z_into(psi_z, d1_psi)
            for sl in z_strips:
                zeta_z[..., sl, :] *= b_z[sl, None]
                zeta_z[..., sl, :] += a_z[sl, None] * (lap[..., sl, :]
                                                       + d1_psi[..., sl, :])
            for sl in z_halo:
                lap[..., sl, :] += d1_psi[..., sl, :] + zeta_z[..., sl, :]
            lap += lap_x
            if timing:
                t2 = perf_counter()
                t_boundary += t2 - t1

            np.multiply(lap, c2dt2, out=p_next)
            if use_axpy:
                next_line = line_views[id(p_next)]
                axpy(line_views[id(p_prev)], next_line, a=-1.0)
                axpy(line_views[id(p_curr)], next_line, a=2.0)
            else:
                p_next -= p_prev
                p_next += p_curr
                p_next += p_curr
            if timing:
                t3 = perf_counter()
                t_update += t3 - t2
            p_flat = flat_views[id(p_next)]
            p_flat[inject_rows, inject_cols] += inject_amps[:, step]
            if timing:
                t4 = perf_counter()
                t_inject += t4 - t3

            if step % record_every == 0:
                gather_flat[:, step // record_every, :] = p_flat[:, rec_flat]
            if record_wavefield and step % wavefield_stride == 0:
                snapshots.append(p_next.copy())
            if timing:
                t_record += perf_counter() - t4

            if flush_tiny and step % 16 == 15:
                np.copyto(p_next, 0.0, where=np.abs(p_next) < flush_cutoff)
                np.copyto(p_curr, 0.0, where=np.abs(p_curr) < flush_cutoff)

            p_prev, p_curr, p_next = p_curr, p_next, p_prev

        if timing:
            telemetry.record_timer("propagator.laplacian", t_laplacian,
                                   count=n_steps)
            telemetry.record_timer("propagator.update", t_update,
                                   count=n_steps)
            telemetry.record_timer("propagator.inject", t_inject,
                                   count=n_steps)
            telemetry.record_timer("propagator.boundary", t_boundary,
                                   count=n_steps)
            telemetry.record_timer("propagator.record", t_record,
                                   count=n_steps)
