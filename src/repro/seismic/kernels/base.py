"""Shared state handed from the batched propagator to a time-loop kernel.

:class:`~repro.seismic.acoustic2d.BatchedAcousticSimulator2D` owns all the
validation, geometry and buffer setup of a simulation; a *kernel* owns only
the time loop.  The simulator packs everything a loop needs into a
:class:`KernelPlan` — preallocated rotating wavefield buffers, scratch
arrays, injection/recording index tables, the boundary state — and hands it
to ``kernel.run(plan)``, which advances ``plan.n_steps`` steps and fills
``plan.gather`` (and ``plan.snapshots`` when requested).

Kernels mutate the plan's arrays in place and return nothing; the arrays in
the plan stay owned by the caller, so the python reference kernel and the
fused compiled kernels are interchangeable behind the same seam.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np


@dataclass
class PMLState:
    """Per-run CFS-PML coefficient tables and memory fields.

    The recursion coefficients (``a_*``, ``b_*``) are 1-D per-axis tables
    from :func:`repro.seismic.boundary.pml_profiles`; both are exactly zero
    outside the absorbing pads, so the memory fields — allocated over the
    full batched grid for kernel simplicity — stay zero in the interior.
    ``x_active`` / ``z_active`` mark pad columns/rows *dilated by one cell*:
    the derivative-of-psi correction reaches one cell past the pad.
    """

    a_x: np.ndarray
    b_x: np.ndarray
    a_z: np.ndarray
    b_z: np.ndarray
    x_active: np.ndarray
    z_active: np.ndarray
    #: 1 / (2*dx) and 1 / (2*dz): centred first-derivative scales.
    half_dx_inv: float
    half_dz_inv: float
    #: psi = convolved first derivative, zeta = convolved second derivative.
    psi_x: np.ndarray
    psi_z: np.ndarray
    zeta_x: np.ndarray
    zeta_z: np.ndarray
    #: Column/row slices of the pads (where ``a`` is non-zero) and the
    #: one-cell-dilated halo slices (where corrections are non-zero), for
    #: the vectorised python path.
    x_strips: List[slice] = field(default_factory=list)
    z_strips: List[slice] = field(default_factory=list)
    x_halo: List[slice] = field(default_factory=list)
    z_halo: List[slice] = field(default_factory=list)


@dataclass
class KernelPlan:
    """Everything a time-loop kernel needs, preassembled by the simulator."""

    #: The owning simulator; exposes the vectorised stencil operators
    #: (``_laplacian_into`` / ``_lap_z_into`` / ``_lap_x_into`` /
    #: ``_d1x_into`` / ``_d1z_into``) the python kernel calls per step.
    ops: object
    telemetry: object
    n_steps: int
    record_every: int
    record_wavefield: bool
    wavefield_stride: int
    grid: Tuple[int, int]
    batch_shape: Tuple[int, ...]
    total_batch: int
    n_shots: int
    real: np.dtype
    #: Magnitudes below this are periodically flushed to exact zero on the
    #: reduced-precision path (``None`` = no flushing, the float64 path).
    flush_cutoff: Optional[float]
    #: Rotating wavefield buffers and scratch arrays, shaped
    #: ``batch_shape + (nz, nx)``.
    p_prev: np.ndarray
    p_curr: np.ndarray
    p_next: np.ndarray
    lap: np.ndarray
    lap_x: np.ndarray
    #: ``dt^2 c^2`` broadcastable against the wavefield buffers.
    c2dt2: np.ndarray
    #: Sponge damping mask (``None`` under PML).
    mask: Optional[np.ndarray]
    pml: Optional[PMLState]
    src_rows: np.ndarray
    src_cols: np.ndarray
    rec_rows: np.ndarray
    rec_cols: np.ndarray
    rec_flat: np.ndarray
    inject_rows: np.ndarray
    inject_cols: np.ndarray
    inject_amps: np.ndarray
    flat_views: Dict[int, np.ndarray]
    line_views: Dict[int, np.ndarray]
    #: BLAS axpy matched to the buffer precision, or ``None`` for the
    #: three-pass in-place update.
    axpy: Optional[Callable]
    gather: np.ndarray
    gather_flat: np.ndarray
    snapshots: List[np.ndarray] = field(default_factory=list)

    @property
    def n_recorded(self) -> int:
        """Recorded time samples: ``ceil(n_steps / record_every)``."""
        return -(-self.n_steps // self.record_every)


class PropagatorKernel:
    """Interface of a propagator time-loop engine.

    Subclasses advance ``plan.n_steps`` leap-frog steps, filling
    ``plan.gather`` (decimated by ``plan.record_every``) and appending to
    ``plan.snapshots`` when ``plan.record_wavefield`` is set and the kernel
    supports it (``supports_snapshots``).
    """

    #: Registry name (set per instance/class).
    name: str = "kernel"
    #: Whether :meth:`run` honours ``plan.record_wavefield``.
    supports_snapshots: bool = False

    def run(self, plan: KernelPlan) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r}>"
