"""String-keyed registry of propagator time-loop kernels.

Mirrors :mod:`repro.backends` and :mod:`repro.seismic.propagators`: kernel
engines register a factory under a short name and the batched propagator
resolves one with :func:`get_kernel`.  A factory is a zero-argument
callable returning a :class:`~repro.seismic.kernels.base.PropagatorKernel`;
it raises :class:`KernelUnavailableError` when an optional dependency is
missing, so registration never imports heavy packages eagerly.

Resolution order for the default engine:

1. an explicit name (or ready kernel instance) passed by the caller — e.g.
   the ``kernel`` argument of
   :class:`~repro.seismic.acoustic2d.BatchedAcousticSimulator2D` or
   :attr:`repro.seismic.forward_modeling.ForwardModel.kernel`;
2. the ``QUGEO_SEISMIC_KERNEL`` environment variable;
3. ``"python"`` — the vectorised numpy loop, always available and
   bit-identical to the historical inline loop.

:func:`resolve_kernel` additionally falls back to ``"python"`` (reporting
why) when the requested kernel is unavailable or cannot serve the request
(e.g. wavefield snapshots from a fused kernel), so a missing optional
dependency degrades instead of failing mid-run.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.seismic.kernels.base import KernelPlan, PMLState, PropagatorKernel
from repro.seismic.kernels.python_kernel import PythonKernel
from repro.utils import env

#: Environment variable consulted when no explicit kernel is requested.
KERNEL_ENV_VAR = env.SEISMIC_KERNEL

KernelFactory = Callable[[], PropagatorKernel]
KernelSpec = Union[None, str, PropagatorKernel]

_FACTORIES: Dict[str, KernelFactory] = {}
_INSTANCES: Dict[str, PropagatorKernel] = {}
_DEFAULT_NAME = "python"


class KernelError(RuntimeError):
    """Base class for kernel registry failures."""


class UnknownKernelError(KernelError, KeyError):
    """Raised when resolving a name no kernel was registered under."""

    def __init__(self, name: str) -> None:
        self.name = name
        available = ", ".join(sorted(_FACTORIES)) or "<none>"
        super().__init__(
            f"unknown propagator kernel {name!r}; registered kernels: "
            f"{available}")

    def __str__(self) -> str:  # KeyError would quote the repr of args[0]
        return self.args[0]


class DuplicateKernelError(KernelError, ValueError):
    """Raised when registering a name that is already taken."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(
            f"propagator kernel {name!r} is already registered; pass "
            f"replace=True to override it")


class KernelUnavailableError(KernelError, ImportError):
    """Raised by a factory whose optional dependency is missing."""

    def __init__(self, name: str, reason: str) -> None:
        self.name = name
        super().__init__(f"propagator kernel {name!r} is unavailable: {reason}")


def register_kernel(name: str, factory: KernelFactory,
                    *, replace: bool = False) -> None:
    """Register a zero-argument kernel ``factory`` under ``name``."""
    if not name or not isinstance(name, str):
        raise ValueError("kernel name must be a non-empty string")
    if not callable(factory):
        raise TypeError("kernel factory must be callable")
    if name in _FACTORIES and not replace:
        raise DuplicateKernelError(name)
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def unregister_kernel(name: str) -> None:
    """Remove ``name`` from the registry (mainly for tests)."""
    if name not in _FACTORIES:
        raise UnknownKernelError(name)
    del _FACTORIES[name]
    _INSTANCES.pop(name, None)


def available_kernels() -> List[str]:
    """Sorted names of every registered kernel (available or not)."""
    return sorted(_FACTORIES)


def kernel_available(name: str) -> bool:
    """Whether ``name`` is registered *and* its dependencies import."""
    if name not in _FACTORIES:
        return False
    try:
        get_kernel(name)
    except KernelUnavailableError:
        return False
    return True


def default_kernel_name() -> str:
    """The name :func:`get_kernel` resolves when given ``None``."""
    return env.get_str(env.SEISMIC_KERNEL, _DEFAULT_NAME)


def get_kernel(spec: KernelSpec = None) -> PropagatorKernel:
    """Resolve ``spec`` to a kernel instance (cached per name).

    ``spec`` may be ``None`` (environment / ``"python"`` default), a
    registered name, or a ready :class:`PropagatorKernel` instance
    (returned as-is).  Raises :class:`KernelUnavailableError` when the
    kernel's optional dependency is missing — use :func:`resolve_kernel`
    for the degrading-to-python behaviour.
    """
    if isinstance(spec, PropagatorKernel):
        return spec
    if spec is None:
        spec = default_kernel_name()
    if not isinstance(spec, str):
        raise TypeError(
            f"kernel spec must be None, a name or a PropagatorKernel, got "
            f"{type(spec).__name__}")
    if spec in _INSTANCES:
        return _INSTANCES[spec]
    if spec not in _FACTORIES:
        raise UnknownKernelError(spec)
    kernel = _FACTORIES[spec]()
    _INSTANCES[spec] = kernel
    return kernel


def resolve_kernel(spec: KernelSpec = None, *, need_snapshots: bool = False
                   ) -> Tuple[PropagatorKernel, Optional[str]]:
    """Resolve ``spec``, degrading to ``"python"`` when it cannot serve.

    Returns ``(kernel, fallback_reason)``; ``fallback_reason`` is ``None``
    when the requested kernel was used, else a human-readable sentence the
    caller can log / count.  Unknown names still raise — only *unavailable*
    or *incapable* kernels degrade.
    """
    try:
        kernel = get_kernel(spec)
    except KernelUnavailableError as exc:
        return get_kernel("python"), str(exc)
    if need_snapshots and not kernel.supports_snapshots:
        return (get_kernel("python"),
                f"kernel {kernel.name!r} does not record wavefield snapshots")
    return kernel, None


def _python_factory() -> PropagatorKernel:
    return PythonKernel()


def _numba_factory() -> PropagatorKernel:
    from repro.seismic.kernels import fused

    if not fused.HAVE_NUMBA:
        raise KernelUnavailableError("numba", "numba is not installed")
    return fused.FusedLoopKernel(name="numba")


def _cffi_factory() -> PropagatorKernel:
    # Reserved registration: the env-var contract names "cffi" as a valid
    # choice, but the compiled extension is not shipped yet — selecting it
    # degrades to the python kernel through resolve_kernel().
    raise KernelUnavailableError(
        "cffi", "the cffi kernel requires the optional compiled extension "
        "(not built in this environment)")


register_kernel("python", _python_factory)
register_kernel("numba", _numba_factory)
register_kernel("cffi", _cffi_factory)  # qugeo-lint: placeholder -- declared engine; compiled extension not shipped yet

__all__ = [
    "KERNEL_ENV_VAR",
    "KernelError",
    "KernelPlan",
    "KernelSpec",
    "KernelUnavailableError",
    "DuplicateKernelError",
    "PMLState",
    "PropagatorKernel",
    "PythonKernel",
    "UnknownKernelError",
    "available_kernels",
    "default_kernel_name",
    "get_kernel",
    "kernel_available",
    "register_kernel",
    "resolve_kernel",
    "unregister_kernel",
]
