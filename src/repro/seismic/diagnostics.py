"""Quantitative diagnostics for the seismic propagator.

The headline tool is :func:`edge_reflection_energy`, which measures how much
spurious energy an absorbing boundary reflects back into the model: it
simulates one shot on a homogeneous medium twice — once with the boundary
under test, once on a grid padded so far that no edge reflection can reach
the receivers inside the simulated window — and reports the relative energy
of the difference.  A perfect absorber scores 0; a hard (reflecting) edge
scores O(1).  The score is what the PML-vs-sponge tests and the benchmark
suite use to claim "equal or better absorption from a thinner pad".
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.seismic.acoustic2d import (
    BatchedAcousticSimulator2D,
    SimulationConfig,
    stable_time_step,
)
from repro.seismic.boundary import SpongeBoundary
from repro.seismic.wavelets import ricker_wavelet


def _reference_pad_width(velocity: float, duration: float, dx: float) -> int:
    """Pad width that keeps outer-edge reflections outside the time window.

    The earliest possible contaminating arrival travels from the interior out
    to the reference grid's edge and back, so a pad of ``c * T / (2 * dx)``
    cells (plus a small safety margin) guarantees the reference gather is
    reflection-free for the whole recording.
    """
    return int(np.ceil(velocity * duration / (2.0 * dx))) + 4


def edge_reflection_energy(boundary,
                           grid_shape: Tuple[int, int] = (40, 40),
                           velocity: float = 2000.0,
                           dx: float = 10.0,
                           n_steps: int = 240,
                           peak_frequency: float = 15.0,
                           kernel: Optional[object] = None) -> float:
    """Relative reflected-energy score of an absorbing ``boundary``.

    Parameters
    ----------
    boundary:
        A :class:`~repro.seismic.boundary.SpongeBoundary` or
        :class:`~repro.seismic.boundary.PMLBoundary`.  It is evaluated in
        ``pad_grid`` mode (the absorbing band sits outside the homogeneous
        model) so the interior physics is identical to the reference run and
        any gather difference is attributable to the boundary alone.
    grid_shape:
        Interior model size ``(nz, nx)`` in cells.
    velocity:
        Homogeneous medium velocity in m/s.
    dx:
        Grid spacing (both axes) in metres.
    n_steps:
        Simulated time steps; the default gives the wavefront several
        boundary round trips on the default grid.
    peak_frequency:
        Ricker source peak frequency in Hz.
    kernel:
        Optional time-loop kernel selection forwarded to the propagator.

    Returns
    -------
    float
        ``sum((g - g_ref)**2) / sum(g_ref**2)`` over a surface receiver
        line, where ``g_ref`` comes from a run padded wide enough that no
        edge reflection arrives inside the window.
    """
    nz, nx = int(grid_shape[0]), int(grid_shape[1])
    if nz < 8 or nx < 8:
        raise ValueError("grid_shape must be at least 8x8 cells")
    model = np.full((nz, nx), float(velocity), dtype=np.float64)
    dt = stable_time_step(float(velocity), dx=dx, dz=dx, spatial_order=4)
    duration = n_steps * dt

    test_boundary = dataclasses.replace(boundary, pad_grid=True)
    config = SimulationConfig(dx=dx, dz=dx, dt=dt, n_steps=int(n_steps),
                              spatial_order=4, boundary=test_boundary)

    ref_width = _reference_pad_width(float(velocity), duration, dx)
    ref_boundary = SpongeBoundary(
        width=ref_width, pad_grid=True,
        free_surface=getattr(boundary, "free_surface", True))
    ref_config = dataclasses.replace(config, boundary=ref_boundary)

    sources = np.array([[2, nx // 2]])
    receivers = np.stack([np.ones(nx - 4, dtype=int),
                          np.arange(2, nx - 2)], axis=1)
    wavelet = ricker_wavelet(int(n_steps), dt, float(peak_frequency))

    gather = BatchedAcousticSimulator2D(
        model, config, kernel=kernel).simulate_shots(
            sources, wavelet, receivers)
    reference = BatchedAcousticSimulator2D(
        model, ref_config, kernel=kernel).simulate_shots(
            sources, wavelet, receivers)

    reference_energy = float(np.sum(reference ** 2))
    if reference_energy == 0.0:
        raise RuntimeError("reference gather has zero energy; "
                           "check the source/receiver layout")
    return float(np.sum((gather - reference) ** 2)) / reference_energy
