"""Seed-deterministic measurement-realism perturbations over data sources.

Real surveys are never the clean synthetic gathers the forward model
produces: traces carry band-limited ambient noise, receivers die, shots
misfire, channel gains drift, and static time shifts creep in.  This module
implements those effects as composable perturbations over seismic samples of
shape ``(n_sources, n_time, n_receivers)`` and, through
:class:`PerturbedView`, as a zero-copy *view* over any data source the
training engine consumes (:class:`repro.core.training.ArrayDataSource`, a
streaming :class:`repro.data.store.ShardLoader`, or any other object with
``__len__`` / ``gather`` / ``fingerprint``) — the cached clean dataset is
never regenerated or duplicated on disk.

Determinism contract: each sample's perturbation stream is
``SeedSequence(seed, spawn_key=(base_position,))`` keyed by the sample's
position in the *base* dataset, so the same ``(perturbation configs, seed)``
pair produces bit-identical perturbed samples no matter how the view is
shuffled, subset, or batched.  The view's :meth:`PerturbedView.fingerprint`
extends the clean source's content fingerprint with a digest of the
perturbation recipe, so a checkpoint written against a perturbed view can
never silently resume against the clean data (or a differently-perturbed
one).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.telemetry import get_telemetry
from repro.utils.rng import ensure_rng

#: Bump when perturbation code changes the bits it produces for the same
#: configuration — part of every perturbed-view fingerprint.
PERTURBATION_VERSION = 1


class Perturbation:
    """One measurement-realism effect applied to a single seismic sample.

    Subclasses implement :meth:`apply` as a pure function of ``(sample,
    rng)`` — all randomness must come from the passed generator, never from
    module state, so :class:`PerturbedView` can hand each sample its own
    seeded stream.
    """

    #: Registry key (also the degradation-curve family name).
    family = "base"

    def apply(self, sample: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        """Return the perturbed copy of one ``(sources, time, receivers)``
        sample."""
        raise NotImplementedError

    def config(self) -> Dict[str, object]:
        """JSON-stable description used in fingerprints and bench output."""
        raise NotImplementedError


@dataclass(frozen=True)
class TraceNoise(Perturbation):
    """Band-limited additive noise at a target signal-to-noise ratio.

    White Gaussian noise is filtered to the ``band`` of fractional
    frequencies (fractions of the Nyquist frequency, along the time axis)
    and scaled so the sample-wide ``snr_db`` is met exactly:
    ``noise_power = signal_power / 10**(snr_db / 10)``.  Lower ``snr_db`` is
    more severe.
    """

    snr_db: float = 20.0
    band: Tuple[float, float] = (0.0, 0.5)

    family = "noise"

    def __post_init__(self) -> None:
        low, high = self.band
        if not 0.0 <= low < high <= 1.0:
            raise ValueError("band must satisfy 0 <= low < high <= 1")

    def apply(self, sample: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        noise = rng.standard_normal(sample.shape)
        n_time = sample.shape[1]
        spectrum = np.fft.rfft(noise, axis=1)
        freqs = np.fft.rfftfreq(n_time, d=1.0) / 0.5  # fractions of Nyquist
        low, high = self.band
        mask = (freqs >= low) & (freqs <= high)
        spectrum[:, ~mask, :] = 0.0
        noise = np.fft.irfft(spectrum, n=n_time, axis=1)
        noise_power = float(np.mean(noise**2))
        if noise_power <= 0.0:
            return sample.copy()
        signal_power = float(np.mean(sample**2))
        target_power = signal_power / (10.0 ** (self.snr_db / 10.0))
        return sample + noise * np.sqrt(target_power / noise_power)

    def config(self) -> Dict[str, object]:
        return {"family": self.family, "snr_db": float(self.snr_db),
                "band": [float(self.band[0]), float(self.band[1])]}


@dataclass(frozen=True)
class DeadReceivers(Perturbation):
    """Zero out a random fraction of receiver channels (all sources/times)."""

    fraction: float = 0.1

    family = "dead-receivers"

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

    def apply(self, sample: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        n_receivers = sample.shape[2]
        n_dead = int(round(self.fraction * n_receivers))
        out = sample.copy()
        if n_dead:
            dead = rng.choice(n_receivers, size=n_dead, replace=False)
            out[:, :, dead] = 0.0
        return out

    def config(self) -> Dict[str, object]:
        return {"family": self.family, "fraction": float(self.fraction)}


@dataclass(frozen=True)
class ShotDropout(Perturbation):
    """Zero out a random fraction of whole shots (source gathers)."""

    fraction: float = 0.2

    family = "shot-dropout"

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

    def apply(self, sample: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        n_sources = sample.shape[0]
        n_drop = int(round(self.fraction * n_sources))
        out = sample.copy()
        if n_drop:
            dropped = rng.choice(n_sources, size=n_drop, replace=False)
            out[dropped] = 0.0
        return out

    def config(self) -> Dict[str, object]:
        return {"family": self.family, "fraction": float(self.fraction)}


@dataclass(frozen=True)
class GainJitter(Perturbation):
    """Multiply each receiver channel by ``1 + N(0, sigma)`` gain error."""

    sigma: float = 0.1

    family = "gain-jitter"

    def __post_init__(self) -> None:
        if self.sigma < 0.0:
            raise ValueError("sigma must be non-negative")

    def apply(self, sample: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        gains = 1.0 + self.sigma * rng.standard_normal(sample.shape[2])
        return sample * gains[None, None, :]

    def config(self) -> Dict[str, object]:
        return {"family": self.family, "sigma": float(self.sigma)}


@dataclass(frozen=True)
class TimeShift(Perturbation):
    """Static per-receiver time shifts of up to ``max_shift`` samples.

    Each receiver's traces are shifted by an integer drawn uniformly from
    ``[-max_shift, max_shift]``; vacated samples are zero-filled (no
    wrap-around).
    """

    max_shift: int = 4

    family = "time-shift"

    def __post_init__(self) -> None:
        if self.max_shift < 0:
            raise ValueError("max_shift must be non-negative")

    def apply(self, sample: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        out = sample.copy()
        if self.max_shift == 0:
            return out
        n_time = sample.shape[1]
        shifts = rng.integers(-self.max_shift, self.max_shift + 1,
                              size=sample.shape[2])
        for receiver, shift in enumerate(shifts):
            shift = int(shift)
            if shift == 0:
                continue
            trace = sample[:, :, receiver]
            shifted = np.zeros_like(trace)
            if shift > 0:
                shifted[:, shift:] = trace[:, :n_time - shift]
            else:
                shifted[:, :n_time + shift] = trace[:, -shift:]
            out[:, :, receiver] = shifted
        return out

    def config(self) -> Dict[str, object]:
        return {"family": self.family, "max_shift": int(self.max_shift)}


#: family name -> perturbation class, for config round-trips and the
#: degradation harness's severity axes.
PERTURBATION_FAMILIES = {
    cls.family: cls
    for cls in (TraceNoise, DeadReceivers, ShotDropout, GainJitter, TimeShift)
}


def perturbation_from_config(config: Dict[str, object]) -> Perturbation:
    """Rebuild a perturbation from its :meth:`Perturbation.config` dict."""
    payload = dict(config)
    family = payload.pop("family", None)
    if family not in PERTURBATION_FAMILIES:
        raise ValueError(f"unknown perturbation family {family!r}; "
                         f"choose from {sorted(PERTURBATION_FAMILIES)}")
    if family == "noise" and "band" in payload:
        payload["band"] = tuple(payload["band"])
    return PERTURBATION_FAMILIES[family](**payload)


def perturbation_fingerprint(perturbations: Sequence[Perturbation],
                             seed: int) -> str:
    """Digest of a perturbation recipe (configs + seed + code version)."""
    blob = json.dumps({
        "version": PERTURBATION_VERSION,
        "seed": int(seed),
        "perturbations": [p.config() for p in perturbations],
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class PerturbedView:
    """A perturbed, zero-regeneration view over a clean data source.

    Implements the same data-source protocol it wraps (``__len__`` /
    ``gather`` / ``fingerprint``), so it drops into
    :class:`repro.core.training.Trainer`, ``predict_in_batches`` and
    ``evaluate_data_source`` anywhere the clean source does.  Velocity
    targets pass through untouched; seismic samples are perturbed on the
    fly, per sample, with the deterministic per-position streams described
    in the module docstring.

    Parameters
    ----------
    source:
        The clean data source.  Its ``gather`` may return seismic flattened
        (ShardLoader does) or shaped; the view reshapes through
        ``sample_shape`` either way.
    perturbations:
        The effects to compose, applied in order.
    seed:
        Root seed of the per-sample streams.
    sample_shape:
        The ``(n_sources, n_time, n_receivers)`` shape of one seismic
        sample; defaults to the source's ``seismic_sample_shape`` when it
        has one (ShardLoader, or another PerturbedView).
    """

    def __init__(self, source, perturbations: Sequence[Perturbation],
                 seed: int = 0,
                 sample_shape: Optional[Sequence[int]] = None) -> None:
        perturbations = tuple(perturbations)
        for perturbation in perturbations:
            if not isinstance(perturbation, Perturbation):
                raise TypeError(
                    f"{type(perturbation).__name__} is not a Perturbation")
        if sample_shape is None:
            sample_shape = getattr(source, "seismic_sample_shape", None)
        if sample_shape is None:
            raise ValueError(
                "source has no seismic_sample_shape; pass sample_shape=")
        self._source = source
        self._perturbations = perturbations
        self._seed = int(seed)
        self._sample_shape = tuple(int(s) for s in sample_shape)

    # -- container / data-source protocol -------------------------------- #
    def __len__(self) -> int:
        return len(self._source)

    @property
    def perturbations(self) -> Tuple[Perturbation, ...]:
        return self._perturbations

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def seismic_sample_shape(self) -> Tuple[int, ...]:
        return self._sample_shape

    @property
    def velocity_sample_shape(self):
        return getattr(self._source, "velocity_sample_shape", None)

    def _base_positions(self, positions: np.ndarray) -> np.ndarray:
        """Positions in the underlying *base* dataset.

        A ShardLoader subset/shuffle view carries its base indices in
        ``_indices``; keying the per-sample streams by those makes the
        perturbed bits invariant to how the view was sliced.
        """
        indices = getattr(self._source, "_indices", None)
        if indices is None:
            return positions
        return np.asarray(indices)[positions]

    def gather(self, indices: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        positions = np.asarray(indices, dtype=int).reshape(-1)
        seismic, velocity = self._source.gather(positions)
        seismic = np.array(seismic, dtype=np.float64, copy=True)
        base_positions = self._base_positions(positions)
        telemetry = get_telemetry()
        with telemetry.span("robustness.perturb"):
            for row, base in enumerate(base_positions):
                sample = seismic[row].reshape(self._sample_shape)
                rng = ensure_rng(np.random.SeedSequence(
                    self._seed, spawn_key=(int(base),)))
                for perturbation in self._perturbations:
                    sample = perturbation.apply(sample, rng)
                seismic[row] = sample.reshape(seismic[row].shape)
        if telemetry.enabled:
            telemetry.counter("robustness.perturbed_samples").inc(
                int(positions.size))
        return seismic, velocity

    def fingerprint(self) -> Dict[str, object]:
        """The clean source's fingerprint plus the perturbation digest.

        Keeps every key of the base content fingerprint (so shape-based
        diagnostics still work) and adds a ``perturbation`` digest — a
        checkpoint written against this view never matches the clean
        source, and two views only match when configs, seed and
        perturbation-code version all agree.
        """
        fingerprint = dict(self._source.fingerprint())
        fingerprint["perturbation"] = perturbation_fingerprint(
            self._perturbations, self._seed)
        return fingerprint

    def describe(self) -> Dict[str, object]:
        """JSON-stable description (for bench output and logs)."""
        return {"seed": self._seed,
                "sample_shape": list(self._sample_shape),
                "perturbations": [p.config() for p in self._perturbations]}
