"""Fault injection and measurement realism (``repro.robustness``).

Three layers:

* **Perturbations** (:mod:`repro.robustness.perturbations`) — composable,
  seed-deterministic corruptions of seismic data (band-limited noise, dead
  receivers, shot dropout, gain jitter, static time shifts) applied lazily
  through :class:`PerturbedView`, a data-source wrapper: nothing is
  regenerated, and the perturbed fingerprint is distinct from the clean one.
* **Finite-shot readout** (:mod:`repro.robustness.readout`) —
  :class:`FiniteShotReadout` routes quantum prediction through sampled
  measurement probabilities with configurable ``n_shots``.
* **Degradation harness** (:mod:`repro.robustness.evaluate`) —
  :func:`evaluate_robustness` sweeps severity grids and emits per-family
  SSIM/MSE degradation curves (``benchmarks/bench_robustness.py`` in CI).

Fault *tolerance* (shard checksums, chunk retry, checkpoint recovery) lives
with the code it hardens — :mod:`repro.data.store`,
:mod:`repro.utils.serialization`, :mod:`repro.core.training` — and is
configured by the ``QUGEO_ROBUSTNESS_*`` environment variables documented in
:mod:`repro.utils.env`.
"""

from repro.robustness.evaluate import (
    KNOWN_FAMILIES,
    default_axes,
    evaluate_robustness,
    make_perturbation,
)
from repro.robustness.perturbations import (
    PERTURBATION_FAMILIES,
    PERTURBATION_VERSION,
    DeadReceivers,
    GainJitter,
    Perturbation,
    PerturbedView,
    ShotDropout,
    TimeShift,
    TraceNoise,
    perturbation_fingerprint,
    perturbation_from_config,
)
from repro.robustness.readout import FiniteShotReadout

__all__ = [
    "KNOWN_FAMILIES",
    "PERTURBATION_FAMILIES",
    "PERTURBATION_VERSION",
    "DeadReceivers",
    "FiniteShotReadout",
    "GainJitter",
    "Perturbation",
    "PerturbedView",
    "ShotDropout",
    "TimeShift",
    "TraceNoise",
    "default_axes",
    "evaluate_robustness",
    "make_perturbation",
    "perturbation_fingerprint",
    "perturbation_from_config",
]
